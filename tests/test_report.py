"""Unit tests for the report renderers."""

from repro.core.report import (classification_table, formula_dossier,
                               text_table)
from repro.workloads import CATALOGUE, paper_systems


class TestTextTable:
    def test_alignment_and_separator(self):
        table = text_table(["a", "long_header"], [["x", 1], ["yy", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # all rows equally wide
        assert len({len(line.rstrip()) for line in lines[2:]}) >= 1

    def test_cells_stringified(self):
        table = text_table(["n"], [[None], [3]])
        assert "None" in table and "3" in table


class TestClassificationTable:
    def test_one_row_per_formula(self):
        table = classification_table(paper_systems())
        # header + separator + 13 rows
        assert len(table.splitlines()) == 15

    def test_known_cells(self):
        table = classification_table(paper_systems())
        s8_row = next(line for line in table.splitlines()
                      if line.startswith("s8"))
        assert "bounded" in s8_row and "2" in s8_row
        s11_row = next(line for line in table.splitlines()
                       if line.startswith("s11"))
        assert " E " in s11_row


class TestDossier:
    def test_sections_present(self):
        text = formula_dossier("s9", CATALOGUE["s9"].system(),
                               query_forms=("dvv", "vvd"))
        assert "=== s9 ===" in text
        assert "I-graph:" in text
        assert "classification: C" in text
        assert "query P(dvv) [iterative]" in text
        assert "query P(vvd) [iterative]" in text

    def test_stability_counterexample_shown(self):
        text = formula_dossier("thm1", CATALOGUE["thm1"].system())
        assert "counterexample" in text

    def test_bounded_formula_shows_rank(self):
        text = formula_dossier("s8", CATALOGUE["s8"].system())
        assert "rank ≤ 2" in text
