"""Tests for the interactive shell (I/O injected)."""

import io

from repro.shell import Shell


def run_lines(*lines: str) -> str:
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    Shell(stdin=stdin, stdout=stdout).run()
    return stdout.getvalue()


PROGRAM_LINES = (
    "P(x, y) :- A(x, z), P(z, y).",
    "P(x, y) :- E(x, y).",
    "A(a, b).",
    "A(b, c).",
    "E(c, c).",
)


class TestStatements:
    def test_rules_and_facts_acknowledged(self):
        out = run_lines(*PROGRAM_LINES, ".quit")
        assert out.count("ok: rule") == 2
        assert out.count("ok: fact") == 3

    def test_trailing_dot_optional(self):
        out = run_lines("A(a, b)", ".quit")
        assert "ok: fact A(a, b)" in out

    def test_query_prints_answers_and_count(self):
        out = run_lines(*PROGRAM_LINES, "?- P(a, Y).", ".quit")
        assert "P(a, c)" in out
        assert "1 answers" in out

    def test_blank_and_comment_lines_ignored(self):
        out = run_lines("", "% a comment", ".quit")
        assert "error" not in out

    def test_parse_error_does_not_kill_session(self):
        out = run_lines("P(x, :-", "A(a, b).", ".quit")
        assert "error:" in out
        assert "ok: fact A(a, b)" in out


class TestCommands:
    def test_help(self):
        out = run_lines(".help", ".quit")
        assert ".classify" in out and ".prove" in out

    def test_unknown_command(self):
        out = run_lines(".nope", ".quit")
        assert "unknown command" in out

    def test_rules_listing(self):
        out = run_lines(*PROGRAM_LINES, ".rules", ".quit")
        assert "P(x, y) :- A(x, z) ∧ P(z, y)." in out

    def test_facts_listing(self):
        out = run_lines(*PROGRAM_LINES, ".facts", ".quit")
        assert "relation" in out and "A" in out

    def test_empty_session_listings(self):
        out = run_lines(".rules", ".facts", ".quit")
        assert "(no rules)" in out and "(no facts)" in out

    def test_classify(self):
        out = run_lines(*PROGRAM_LINES, ".classify P", ".quit")
        assert "A5" in out and "stable=True" in out

    def test_explain(self):
        out = run_lines(*PROGRAM_LINES, ".explain P(a, Y)", ".quit")
        assert "strategy:   stable" in out

    def test_prove(self):
        out = run_lines(*PROGRAM_LINES, ".prove P(a, Y)", ".quit")
        assert "premise:" in out
        assert "E(c, c)" in out

    def test_advise(self):
        out = run_lines(*PROGRAM_LINES, ".advise P", ".quit")
        assert "pushdown" in out

    def test_usage_messages(self):
        out = run_lines(".classify", ".explain", ".prove", ".advise",
                        ".quit")
        assert out.count("usage:") == 4


class TestFiles:
    def test_load_runs_embedded_queries(self, tmp_path):
        path = tmp_path / "p.dl"
        path.write_text(
            "P(x, y) :- A(x, z), P(z, y).\n"
            "P(x, y) :- E(x, y).\n"
            "A(a, b).\nE(b, b).\n?- P(a, Y).\n", encoding="utf-8")
        out = run_lines(f".load {path}", ".quit")
        assert "loaded 2 rules, 2 facts" in out
        assert "P(a, b)" in out

    def test_save_materialised(self, tmp_path):
        target = tmp_path / "out"
        out = run_lines(*PROGRAM_LINES, f".save {target}", ".quit")
        assert "saved materialised database" in out
        assert (target / "P.tsv").exists()

    def test_load_missing_file(self):
        out = run_lines(".load /no/such/file.dl", ".quit")
        assert "error:" in out


class TestExit:
    def test_eof_exits_cleanly(self):
        assert run_lines()  # no .quit: EOF path
        out = run_lines("A(a, b).")
        assert "ok: fact" in out
