"""Unit tests for query parsing and patterns."""

import pytest

from repro.datalog.errors import DatalogSyntaxError
from repro.engine.query import Query


class TestParse:
    def test_constants_and_free_slots(self):
        query = Query.parse("P(a, Y, _)")
        assert query.predicate == "P"
        assert query.pattern == ("a", None, None)

    def test_numbers(self):
        assert Query.parse("P(3, X)").pattern == (3, None)
        assert Query.parse("P(2.5, X)").pattern == (2.5, None)

    def test_quoted_strings(self):
        assert Query.parse("P('Upper', X)").pattern == ("Upper", None)

    def test_quoted_constant_with_comma(self):
        """Regression: a comma inside a quoted constant used to split
        the argument in two."""
        query = Query.parse("P('Doe, Jane', Y)")
        assert query.pattern == ("Doe, Jane", None)

    def test_quoted_constant_with_paren(self):
        """Regression: a ``)`` inside a quoted constant used to
        terminate the argument list early."""
        query = Query.parse("P('f(x))', Y)")
        assert query.pattern == ("f(x))", None)

    def test_empty_argument_list(self):
        assert Query.parse("P()").pattern == ()

    def test_unterminated_quote_rejected(self):
        with pytest.raises(DatalogSyntaxError, match="unterminated"):
            Query.parse("P('oops, Y)")

    def test_unterminated_args_rejected(self):
        with pytest.raises(DatalogSyntaxError, match="unterminated"):
            Query.parse("P(a, b")

    def test_empty_argument_rejected(self):
        with pytest.raises(DatalogSyntaxError, match="empty argument"):
            Query.parse("P(a,,b)")

    def test_trailing_text_rejected(self):
        with pytest.raises(DatalogSyntaxError, match="trailing"):
            Query.parse("P(a) :- junk")

    def test_trailing_question_mark_allowed(self):
        assert Query.parse("P(a, Y)?").pattern == ("a", None)

    def test_question_mark_slot(self):
        assert Query.parse("P(?, a)").pattern == (None, "a")

    def test_garbage_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            Query.parse("not a query")

    def test_all_free_constructor(self):
        query = Query.all_free("P", 3)
        assert query.pattern == (None, None, None)


class TestAdornment:
    def test_positions_and_string(self):
        query = Query.parse("P(a, Y, c)")
        assert query.adornment == {0, 2}
        assert query.adornment_string == "dvd"

    def test_constants_mapping(self):
        assert Query.parse("P(a, Y, c)").constants == {0: "a", 2: "c"}


class TestMatching:
    def test_matches_and_filter(self):
        query = Query.parse("P(a, Y)")
        assert query.matches(("a", "b"))
        assert not query.matches(("b", "b"))
        rows = {("a", "b"), ("b", "b"), ("a", "c")}
        assert query.filter(rows) == {("a", "b"), ("a", "c")}

    def test_str(self):
        assert str(Query.parse("P(a, Y)")) == "P(a, _)"


class TestFromAtom:
    def test_goal_atom_to_query(self):
        from repro.datalog.parser import parse_program
        program = parse_program("?- P(a, Y).")
        query = Query.from_atom(program.queries[0])
        assert query.predicate == "P"
        assert query.pattern == ("a", None)
