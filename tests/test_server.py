"""The monitored HTTP query server, exercised in-process.

One server on an ephemeral port (``port=0``) per test class, a daemon
thread running ``serve_forever``; requests go over a real socket via
``urllib`` — routing, content types, status codes and the metrics
reconciliation are all observed exactly as a client would.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro import __version__
from repro.logutil import QueryLogger, valid_query_id
from repro.metrics import MetricsRegistry, parse_prometheus_text
from repro.server import QueryServer
from repro.session import DeductiveDatabase

PROGRAM = """
    P(x, y) :- A(x, z), P(z, y).
    P(x, y) :- A(x, y).
    A(a, b). A(b, c). A(c, d).
"""

CLOSURE = {("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"),
           ("b", "d"), ("c", "d")}


@pytest.fixture()
def server():
    session = DeductiveDatabase(metrics=MetricsRegistry(),
                                query_log=QueryLogger(io.StringIO()))
    session.load(PROGRAM)
    instance = QueryServer(session, port=0)
    thread = threading.Thread(target=instance.serve_forever,
                              daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.close()
    thread.join(timeout=5)


def _get(server, path):
    url = f"http://{server.host}:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def _post(server, document, path="/query", headers=None):
    status, body, _ = _post_full(server, document, path, headers)
    return status, body


def _post_full(server, document, path="/query", headers=None):
    """POST returning (status, parsed body, response headers)."""
    url = f"http://{server.host}:{server.port}{path}"
    fields = {"Content-Type": "application/json"}
    fields.update(headers or {})
    request = urllib.request.Request(
        url, json.dumps(document).encode("utf-8"), fields)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (response.status, json.loads(response.read()),
                    response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


@contextmanager
def _served(**kwargs):
    """A server with explicit recorder settings — the module fixture
    keeps the defaults, so tests that assert exact capture counters
    build their own here."""
    session = DeductiveDatabase(metrics=MetricsRegistry(),
                                query_log=QueryLogger(io.StringIO()))
    session.load(PROGRAM)
    instance = QueryServer(session, port=0, **kwargs)
    thread = threading.Thread(target=instance.serve_forever,
                              daemon=True)
    thread.start()
    try:
        yield instance
    finally:
        instance.shutdown()
        instance.close()
        thread.join(timeout=5)


class TestQueryRoute:
    def test_bound_query_answers(self, server):
        status, body = _post(server, {"query": "P(a, Y)"})
        assert status == 200
        assert {tuple(row) for row in body["answers"]} == {
            ("a", "b"), ("a", "c"), ("a", "d")}
        assert body["count"] == 3
        assert body["engine"] == "compiled"
        assert body["stats"]["answers"] == 3
        assert body["duration_s"] >= 0

    def test_engine_selection_and_workers(self, server):
        for extra in ({"engine": "semi-naive"}, {"engine": "naive"},
                      {"engine": "top-down"}, {"workers": 0}):
            status, body = _post(server,
                                 {"query": "P(X, Y)", **extra})
            assert status == 200
            assert {tuple(r) for r in body["answers"]} == CLOSURE

    def test_answers_are_sorted(self, server):
        _, body = _post(server, {"query": "P(X, Y)"})
        assert body["answers"] == sorted(body["answers"], key=repr)

    def test_bad_requests_get_400(self, server):
        assert _post(server, {"nope": 1})[0] == 400
        assert _post(server, {"query": "P(X, Y, Z)"})[0] == 400
        assert _post(server, {"query": "missing(X)"})[0] == 400
        assert _post(server, {"query": "P(X, Y)",
                              "engine": "imaginary"})[0] == 400
        url = f"http://{server.host}:{server.port}/query"
        request = urllib.request.Request(url, b"not json {{", {})
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400

    def test_unknown_paths_get_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            _get(server, "/nope")
        assert caught.value.code == 404
        assert _post(server, {"query": "P(a, Y)"},
                     path="/nope")[0] == 404


class TestMonitoringRoutes:
    def test_healthz(self, server):
        _post(server, {"query": "P(a, Y)"})
        status, text = _get(server, "/healthz")
        health = json.loads(text)
        assert status == 200
        assert health["status"] == "ok"
        assert health["queries_served"] == 1
        assert health["uptime_s"] >= 0
        assert set(health["predicates"]) == {"A", "P"}

    def test_metrics_reconcile_with_query_stats(self, server):
        """Registry totals equal the per-response stats sums exactly —
        the snapshot-delta guarantee observed through the wire."""
        rounds = 0
        for document in ({"query": "P(a, Y)"}, {"query": "P(X, Y)"},
                         {"query": "P(X, Y)",
                          "engine": "semi-naive"}):
            _, body = _post(server, document)
            rounds += body["stats"]["rounds"]
        status, text = _get(server, "/metrics")
        assert status == 200
        samples = parse_prometheus_text(text)
        ok_queries = sum(
            value for (name, labels), value in samples.items()
            if name == "repro_queries_total"
            and ("outcome", "ok") in labels)
        assert ok_queries == 3
        traced_rounds = sum(
            value for (name, labels), value in samples.items()
            if name == "repro_rounds_total")
        assert traced_rounds == rounds
        assert samples[("repro_relation_rows",
                        (("relation", "A"),))] == 3

    def test_stats_route(self, server):
        _post(server, {"query": "P(a, Y)"})
        status, text = _get(server, "/stats")
        assert status == 200
        document = json.loads(text)
        names = {metric["name"] for metric in document["metrics"]}
        assert {"repro_queries_total", "repro_rounds_total",
                "repro_relation_rows"} <= names
        assert document["server"]["queries_served"] == 1

    def test_one_log_line_per_query(self, server):
        for _ in range(3):
            _post(server, {"query": "P(a, Y)"})
        lines = [json.loads(line) for line in
                 server.session.query_log.stream.getvalue()
                 .splitlines()]
        assert len(lines) == 3
        assert len({line["query_id"] for line in lines}) == 3
        assert all(line["outcome"] == "ok" for line in lines)


class TestConcurrency:
    def test_parallel_posts_all_answered(self, server):
        results = []

        def ask():
            results.append(_post(server, {"query": "P(X, Y)"}))

        pool = [threading.Thread(target=ask) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(results) == 8
        for status, body in results:
            assert status == 200
            assert {tuple(r) for r in body["answers"]} == CLOSURE
        assert server.queries_served == 8


class TestQueryIds:
    def test_fresh_id_in_envelope_header_and_log(self, server):
        status, body, headers = _post_full(server,
                                           {"query": "P(a, Y)"})
        assert status == 200
        query_id = body["query_id"]
        assert valid_query_id(query_id)
        assert headers.get("X-Repro-Query-Id") == query_id
        [line] = [json.loads(line) for line in
                  server.session.query_log.stream.getvalue()
                  .splitlines() if '"query"' in line]
        assert line["query_id"] == query_id

    def test_client_supplied_id_propagates(self, server):
        status, body, headers = _post_full(
            server, {"query": "P(a, Y)"},
            headers={"X-Repro-Query-Id": "client-7.x"})
        assert status == 200
        assert body["query_id"] == "client-7.x"
        assert headers.get("X-Repro-Query-Id") == "client-7.x"

    def test_invalid_client_id_replaced(self, server):
        status, body, _ = _post_full(
            server, {"query": "P(a, Y)"},
            headers={"X-Repro-Query-Id": "not valid!"})
        assert status == 200
        assert body["query_id"] != "not valid!"
        assert valid_query_id(body["query_id"])

    def test_error_responses_carry_the_id_too(self, server):
        status, body = _post(server, {"query": "missing(X)"},
                             headers={"X-Repro-Query-Id": "err-1"})
        assert status == 400
        assert body["query_id"] == "err-1"

    def test_facts_response_carries_id(self, server):
        status, body = _post(server,
                             {"add": {"A": [["d", "e"]]}},
                             path="/facts",
                             headers={"X-Repro-Query-Id": "w-1"})
        assert status == 200
        assert body["query_id"] == "w-1"


class TestFlightRecorder:
    def test_forced_trace_retrievable_with_service_phases(self):
        with _served(trace_sample=0.0) as server:
            _, body = _post(server, {"query": "P(a, Y)",
                                     "trace": True})
            query_id = body["query_id"]
            status, text = _get(server,
                                f"/debug/traces/{query_id}")
            assert status == 200
            document = json.loads(text)
            assert document["query_id"] == query_id
            assert document["captured_reason"] == "forced"
            assert document["outcome"] == "ok"
            assert document["answers"] == 3
            names = [span["name"] for span in document["phases"]]
            assert names == ["admission", "snapshot", "engine",
                             "decode", "render"]
            assert document["trace"]["engine"] == "compiled"

    def test_summaries_and_counters_reconcile(self):
        with _served(trace_sample=0.0) as server:
            _post(server, {"query": "P(a, Y)", "trace": True})
            _post(server, {"query": "P(X, Y)"})  # not captured
            status, text = _get(server, "/debug/traces")
            report = json.loads(text)
            assert status == 200
            assert report["captured_total"] == 1
            assert report["forced_total"] == 1
            assert report["sampled_total"] == 0
            assert report["slow_total"] == 0
            assert len(report["traces"]) == 1

    def test_sampling_at_rate_one_captures_everything(self):
        with _served(trace_sample=1.0) as server:
            for _ in range(3):
                _post(server, {"query": "P(a, Y)"})
            report = json.loads(_get(server, "/debug/traces")[1])
            assert report["captured_total"] == 3
            assert report["sampled_total"] == 3
            assert report["captured_total"] == (
                report["sampled_total"] + report["forced_total"]
                + report["slow_total"])

    def test_unknown_trace_id_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            _get(server, "/debug/traces/nope")
        assert caught.value.code == 404

    def test_trace_field_must_be_bool(self, server):
        status, body = _post(server, {"query": "P(a, Y)",
                                      "trace": "yes"})
        assert status == 400
        assert "trace" in body["error"]

    def test_cache_hit_records_single_span_trace(self):
        with _served(trace_sample=0.0) as server:
            _post(server, {"query": "P(a, Y)"})  # populate cache
            _, body = _post(server, {"query": "P(a, Y)",
                                     "trace": True})
            document = json.loads(_get(
                server, f"/debug/traces/{body['query_id']}")[1])
            trace = document["trace"]
            assert trace["meta"] == {"cache_hit": True}
            assert [r["kind"] for r in trace["rounds"]] == ["cache"]

    def test_disabled_recorder_is_inert_and_bit_identical(self):
        """``--trace-sample 0`` with no slow threshold captures
        nothing and leaves answers and stats exactly as a fully
        sampled server produces them."""
        documents = ({"query": "P(a, Y)"}, {"query": "P(X, Y)"},
                     {"query": "P(X, Y)", "engine": "semi-naive"})
        bodies = []
        for rate in (0.0, 1.0):
            with _served(trace_sample=rate) as server:
                bodies.append([])
                for document in documents:
                    _, body = _post(server, document)
                    body.pop("query_id")
                    body.pop("duration_s")
                    bodies[-1].append(body)
                report = json.loads(_get(server,
                                         "/debug/traces")[1])
                expected = 0 if rate == 0.0 else len(documents)
                assert report["captured_total"] == expected
                if rate == 0.0:
                    assert report["traces"] == []
        assert bodies[0] == bodies[1]

    def test_async_job_shares_the_recorder(self):
        with _served(trace_sample=0.0) as server:
            status, body, headers = _post_full(
                server, {"query": "P(X, Y)", "mode": "async",
                         "trace": True})
            assert status == 202
            query_id = body["query_id"]
            assert headers.get("X-Repro-Query-Id") == query_id
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                job = json.loads(_get(server,
                                      body["status_url"])[1])
                if job["state"] in ("done", "error", "cancelled"):
                    break
                time.sleep(0.02)
            assert job["state"] == "done"
            assert job["query_id"] == query_id
            document = json.loads(_get(
                server, f"/debug/traces/{query_id}")[1])
            assert document["captured_reason"] == "forced"
            assert [s["name"] for s in document["phases"]] == [
                "admission", "snapshot", "engine"]
            assert document["answers"] == len(CLOSURE)


class TestBuildInfo:
    def test_version_in_health_stats_and_metrics(self, server):
        health = json.loads(_get(server, "/healthz")[1])
        assert health["version"] == __version__
        stats = json.loads(_get(server, "/stats")[1])
        assert stats["server"]["version"] == __version__
        assert "recorder" in stats["server"]
        samples = parse_prometheus_text(_get(server, "/metrics")[1])
        [(labels, value)] = [
            (labels, value) for (name, labels), value
            in samples.items() if name == "repro_build_info"]
        assert value == 1
        assert ("version", __version__) in labels
        assert any(key == "python" for key, _ in labels)
        assert ("intern", "on") in labels

    def test_exemplars_attach_query_ids_when_enabled(self):
        with _served(trace_sample=0.0, exemplars=True) as server:
            _post(server, {"query": "P(a, Y)"},
                  headers={"X-Repro-Query-Id": "exem-1"})
            exemplars = {}
            parse_prometheus_text(_get(server, "/metrics")[1],
                                  exemplars=exemplars)
            ids = {labels["query_id"]
                   for (name, _), (labels, _) in exemplars.items()
                   if name == "repro_query_duration_seconds_bucket"}
            assert ids == {"exem-1"}

    def test_exemplars_absent_by_default(self, server):
        _post(server, {"query": "P(a, Y)"})
        exemplars = {}
        parse_prometheus_text(_get(server, "/metrics")[1],
                              exemplars=exemplars)
        assert exemplars == {}
