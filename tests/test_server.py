"""The monitored HTTP query server, exercised in-process.

One server on an ephemeral port (``port=0``) per test class, a daemon
thread running ``serve_forever``; requests go over a real socket via
``urllib`` — routing, content types, status codes and the metrics
reconciliation are all observed exactly as a client would.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.logutil import QueryLogger
from repro.metrics import MetricsRegistry, parse_prometheus_text
from repro.server import QueryServer
from repro.session import DeductiveDatabase

PROGRAM = """
    P(x, y) :- A(x, z), P(z, y).
    P(x, y) :- A(x, y).
    A(a, b). A(b, c). A(c, d).
"""

CLOSURE = {("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"),
           ("b", "d"), ("c", "d")}


@pytest.fixture()
def server():
    session = DeductiveDatabase(metrics=MetricsRegistry(),
                                query_log=QueryLogger(io.StringIO()))
    session.load(PROGRAM)
    instance = QueryServer(session, port=0)
    thread = threading.Thread(target=instance.serve_forever,
                              daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.close()
    thread.join(timeout=5)


def _get(server, path):
    url = f"http://{server.host}:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def _post(server, document, path="/query"):
    url = f"http://{server.host}:{server.port}{path}"
    request = urllib.request.Request(
        url, json.dumps(document).encode("utf-8"),
        {"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestQueryRoute:
    def test_bound_query_answers(self, server):
        status, body = _post(server, {"query": "P(a, Y)"})
        assert status == 200
        assert {tuple(row) for row in body["answers"]} == {
            ("a", "b"), ("a", "c"), ("a", "d")}
        assert body["count"] == 3
        assert body["engine"] == "compiled"
        assert body["stats"]["answers"] == 3
        assert body["duration_s"] >= 0

    def test_engine_selection_and_workers(self, server):
        for extra in ({"engine": "semi-naive"}, {"engine": "naive"},
                      {"engine": "top-down"}, {"workers": 0}):
            status, body = _post(server,
                                 {"query": "P(X, Y)", **extra})
            assert status == 200
            assert {tuple(r) for r in body["answers"]} == CLOSURE

    def test_answers_are_sorted(self, server):
        _, body = _post(server, {"query": "P(X, Y)"})
        assert body["answers"] == sorted(body["answers"], key=repr)

    def test_bad_requests_get_400(self, server):
        assert _post(server, {"nope": 1})[0] == 400
        assert _post(server, {"query": "P(X, Y, Z)"})[0] == 400
        assert _post(server, {"query": "missing(X)"})[0] == 400
        assert _post(server, {"query": "P(X, Y)",
                              "engine": "imaginary"})[0] == 400
        url = f"http://{server.host}:{server.port}/query"
        request = urllib.request.Request(url, b"not json {{", {})
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400

    def test_unknown_paths_get_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            _get(server, "/nope")
        assert caught.value.code == 404
        assert _post(server, {"query": "P(a, Y)"},
                     path="/nope")[0] == 404


class TestMonitoringRoutes:
    def test_healthz(self, server):
        _post(server, {"query": "P(a, Y)"})
        status, text = _get(server, "/healthz")
        health = json.loads(text)
        assert status == 200
        assert health["status"] == "ok"
        assert health["queries_served"] == 1
        assert health["uptime_s"] >= 0
        assert set(health["predicates"]) == {"A", "P"}

    def test_metrics_reconcile_with_query_stats(self, server):
        """Registry totals equal the per-response stats sums exactly —
        the snapshot-delta guarantee observed through the wire."""
        rounds = 0
        for document in ({"query": "P(a, Y)"}, {"query": "P(X, Y)"},
                         {"query": "P(X, Y)",
                          "engine": "semi-naive"}):
            _, body = _post(server, document)
            rounds += body["stats"]["rounds"]
        status, text = _get(server, "/metrics")
        assert status == 200
        samples = parse_prometheus_text(text)
        ok_queries = sum(
            value for (name, labels), value in samples.items()
            if name == "repro_queries_total"
            and ("outcome", "ok") in labels)
        assert ok_queries == 3
        traced_rounds = sum(
            value for (name, labels), value in samples.items()
            if name == "repro_rounds_total")
        assert traced_rounds == rounds
        assert samples[("repro_relation_rows",
                        (("relation", "A"),))] == 3

    def test_stats_route(self, server):
        _post(server, {"query": "P(a, Y)"})
        status, text = _get(server, "/stats")
        assert status == 200
        document = json.loads(text)
        names = {metric["name"] for metric in document["metrics"]}
        assert {"repro_queries_total", "repro_rounds_total",
                "repro_relation_rows"} <= names
        assert document["server"]["queries_served"] == 1

    def test_one_log_line_per_query(self, server):
        for _ in range(3):
            _post(server, {"query": "P(a, Y)"})
        lines = [json.loads(line) for line in
                 server.session.query_log.stream.getvalue()
                 .splitlines()]
        assert len(lines) == 3
        assert len({line["query_id"] for line in lines}) == 3
        assert all(line["outcome"] == "ok" for line in lines)


class TestConcurrency:
    def test_parallel_posts_all_answered(self, server):
        results = []

        def ask():
            results.append(_post(server, {"query": "P(X, Y)"}))

        pool = [threading.Thread(target=ask) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(results) == 8
        for status, body in results:
            assert status == 200
            assert {tuple(r) for r in body["answers"]} == CLOSURE
        assert server.queries_served == 8
