"""Smoke-run every example script and check its key output."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: script name → fragments its stdout must contain
EXPECTED = {
    "quickstart.py": ["compiled", "nodes reachable from n0"],
    "classification_tour.py": ["s12", "class F (mixed)"],
    "genealogy.py": ["descendants of alice", "same generation as heidi"],
    "bill_of_materials.py": ["wheel transitively contains",
                             "pseudo recursion"],
    "org_chart.py": ["everyone under maria", "after hiring uma"],
    "compiled_algebra.py": ["identical:       True"],
    "paper_walkthrough.py": ["Figure 1", "measured: 2",
                             "classification of every example"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    for fragment in EXPECTED[script]:
        assert fragment.lower() in out.lower(), (script, fragment)


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED)
