"""Tests for the rule linter."""

from repro.core.lint import Diagnostic, lint_report, lint_text


def codes(text: str) -> list[str]:
    return [d.code for d in lint_text(text)]


class TestStructuralErrors:
    def test_no_recursion(self):
        assert codes("P(x, y) :- A(x, y).") == ["E001"]

    def test_multiple_recursive_rules(self):
        assert codes("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- P(x, z), B(z, y).
        """) == ["E002"]

    def test_nonlinear(self):
        assert "E003" in codes("P(x, y) :- P(x, z), P(z, y).")

    def test_constant_in_rule(self):
        assert "E004" in codes("P(x, y) :- A(x, 3), P(x, y).")

    def test_repeated_variable(self):
        assert "E005" in codes("P(x, y) :- A(x, z), P(z, z).")

    def test_not_range_restricted_names_the_variable(self):
        findings = lint_text("P(x, y) :- A(x, z), P(z, x).")
        e006 = next(d for d in findings if d.code == "E006")
        assert "y" in e006.message

    def test_missing_exit_is_warning(self):
        findings = lint_text("P(x, y) :- A(x, z), P(z, y).")
        w001 = next(d for d in findings if d.code == "W001")
        assert w001.level == "warning"


class TestAdvisories:
    def test_redundant_atoms_flagged(self):
        assert "W101" in codes("""
            P(x, y) :- A(x, z), A(x, w), P(z, y).
            P(x, y) :- E(x, y).
        """)

    def test_bounded_advice(self):
        assert "I201" in codes("""
            P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1),
                             P(z, y1, z1, u1).
            P(x, y, z, u) :- E(x, y, z, u).
        """)

    def test_transformable_advice(self):
        findings = lint_text("""
            P(x, y) :- A(x, z), P(y, z).
            P(x, y) :- E(x, y).
        """)
        i202 = next(d for d in findings if d.code == "I202")
        assert "2×" in i202.message

    def test_hopeless_bindings_advice(self):
        assert "I203" in codes("""
            P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).
            P(x, y, z) :- E(x, y, z).
        """)

    def test_clean_rule(self):
        assert codes("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
        """) == []
        assert lint_report("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
        """) == "clean: no findings"


class TestDiagnosticRendering:
    def test_str_format(self):
        diag = Diagnostic("warning", "W101", "something")
        assert str(diag) == "W101 [warning] something"
