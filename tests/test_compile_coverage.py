"""Exhaustive compile smoke: every adornment of every catalogue formula.

The compiler must produce a plan for *any* query form against *any*
linear recursive formula — this sweeps all 2^arity adornments of all
catalogue entries and checks structural invariants of the output.
"""

import pytest

from repro.core import all_adornments, classify, compile_query
from repro.core.classes import Boundedness
from repro.core.compile import Strategy
from repro.core.plans import relation_names
from repro.workloads import CATALOGUE


@pytest.mark.parametrize("name", sorted(CATALOGUE))
def test_every_adornment_compiles(name):
    system = CATALOGUE[name].system()
    classification = classify(system)
    for adornment in all_adornments(system.dimension):
        compiled = compile_query(system, adornment, classification)
        assert compiled.plan_text  # renders without error
        assert compiled.binding.state_at(0) == adornment


@pytest.mark.parametrize("name", sorted(CATALOGUE))
def test_strategy_is_consistent_with_class(name):
    system = CATALOGUE[name].system()
    classification = classify(system)
    for adornment in all_adornments(system.dimension):
        compiled = compile_query(system, adornment, classification)
        if classification.boundedness is Boundedness.BOUNDED:
            assert compiled.strategy is Strategy.BOUNDED
        elif classification.is_strongly_stable:
            assert compiled.strategy is Strategy.STABLE
        elif classification.is_transformable:
            assert compiled.strategy is Strategy.TRANSFORM
        else:
            assert compiled.strategy is Strategy.ITERATIVE


@pytest.mark.parametrize("name", sorted(CATALOGUE))
def test_plans_mention_only_known_relations(name):
    """Every relation a plan references is an EDB predicate of the
    system, the exit E, or a compressed chain label built from them."""
    system = CATALOGUE[name].system()
    classification = classify(system)
    edb = set(system.edb_predicates) | {"E", "id"}
    for adornment in all_adornments(system.dimension):
        compiled = compile_query(system, adornment, classification)
        base_names = {n.rstrip("0123456789") for n in edb}
        for mentioned in relation_names(compiled.plan):
            if mentioned in edb:
                continue
            # compressed labels concatenate EDB predicate names
            rest = mentioned
            while rest:
                for predicate in sorted(base_names,
                                        key=len, reverse=True):
                    if rest.startswith(predicate):
                        rest = rest[len(predicate):]
                        break
                else:
                    pytest.fail(
                        f"{name}: unknown relation {mentioned!r} "
                        f"in plan for "
                        f"{sorted(adornment)}")


@pytest.mark.parametrize("name", sorted(CATALOGUE))
def test_fully_free_and_fully_bound_are_valid(name):
    system = CATALOGUE[name].system()
    for adornment in (frozenset(), frozenset(range(system.dimension))):
        compiled = compile_query(system, adornment)
        assert compiled.plan_text
