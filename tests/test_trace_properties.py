"""Trace invariants, engine × catalogue class.

Two properties pin the tracing layer down:

* **Conservation** — for every engine and every catalogue class, the
  sum of per-round ``delta_out`` values of a traced full evaluation
  equals the final answer count.  Each engine counts rounds
  differently (sweeps, deltas, depths, expansions, subgoals), but
  "new tuples contributed" must always add up to the result.
* **Zero overhead** — running with ``trace=None`` is the disabled
  state: answers and the evaluation's counters are bit-identical to a
  traced run, so tracing can never perturb what it observes.
"""

import pytest

from repro.engine import (CompiledEngine, MaterializedRecursion,
                          NaiveEngine, Query, SemiNaiveEngine,
                          ShardedSemiNaiveEngine, TopDownEngine)
from repro.engine.stats import EvaluationStats
from repro.engine.trace import Tracer, validate_trace_dict
from repro.workloads import CATALOGUE, chain, random_edb

#: one catalogue representative per paper class A1 … C
CLASS_ENTRIES = {
    "A1": "s2a", "A3": "s4", "A4": "s5", "A5": "s1a",
    "B": "s8", "C": "s9",
}

ENGINES = {
    "naive": NaiveEngine,
    "semi-naive": SemiNaiveEngine,
    "compiled": CompiledEngine,
    "top-down": TopDownEngine,
    "sharded": lambda: ShardedSemiNaiveEngine(workers=0),
}


def _workload(name):
    system = CATALOGUE[name].system()
    db = random_edb(system, nodes=5, tuples_per_relation=6, seed=0)
    return system, db, Query.all_free(system.predicate,
                                      system.dimension)


class TestDeltaConservation:
    @pytest.mark.parametrize("paper_class", sorted(CLASS_ENTRIES))
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_round_deltas_sum_to_answers(self, paper_class, engine):
        system, db, query = _workload(CLASS_ENTRIES[paper_class])
        tracer = Tracer()
        answers = ENGINES[engine]().evaluate(system, db, query,
                                             trace=tracer)
        assert tracer.trace is not None
        validate_trace_dict(tracer.trace.to_dict())
        assert tracer.trace.delta_total == len(answers), (
            f"{paper_class}/{engine}: traced deltas "
            f"{tracer.trace.delta_total} != answers {len(answers)}")
        assert tracer.trace.answers == len(answers)

    def test_incremental_deltas_sum_to_added(self):
        from repro.datalog.parser import parse_system
        from repro.ra import Database
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        db = Database.from_dict({"A": chain(4),
                                 "P__exit": [("n4", "n4")]})
        view = MaterializedRecursion(system, db)
        tracer = Tracer()
        added = view.insert_many("A", [("n5", "n0"), ("n6", "n5")],
                                 trace=tracer)
        validate_trace_dict(tracer.trace.to_dict())
        assert tracer.trace.delta_total == len(added) > 0


class TestDisabledTracerIsFree:
    @pytest.mark.parametrize("paper_class", sorted(CLASS_ENTRIES))
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_answers_and_stats_bit_identical(self, paper_class,
                                             engine):
        system, db, query = _workload(CLASS_ENTRIES[paper_class])
        # warm the process-wide plan cache so the two measured runs
        # see the same hit/miss counts (plan-cache keys include the
        # database's symbol-table token, so a fresh workload always
        # misses on its first evaluation)
        ENGINES[engine]().evaluate(system, db.copy(), query,
                                   EvaluationStats())
        plain_stats, traced_stats = EvaluationStats(), EvaluationStats()
        plain = ENGINES[engine]().evaluate(system, db.copy(), query,
                                           plain_stats)
        traced = ENGINES[engine]().evaluate(system, db.copy(), query,
                                            traced_stats,
                                            trace=Tracer())
        assert plain == traced
        assert plain_stats == traced_stats
