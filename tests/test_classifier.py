"""The classifier against every claim the paper makes (tables 1–12).

This is the heart of the reproduction: for each worked example the
paper states (or implies) a class, stability, transformability with an
unfold count, and boundedness with a rank bound.  Every row is pinned
here.
"""

import pytest

from repro.core.classes import Boundedness, ComponentClass, FormulaClass
from repro.core.classifier import classify
from repro.datalog.parser import parse_rule
from repro.workloads import CATALOGUE


class TestPaperCatalogue:
    """Machine-check the classifier against the catalogue's paper
    claims (one test per formula via the fixture)."""

    def test_formula_class(self, catalogue_entry):
        result = classify(catalogue_entry.system())
        assert str(result.formula_class) == catalogue_entry.paper_class

    def test_component_classes(self, catalogue_entry):
        result = classify(catalogue_entry.system())
        got = "+".join(str(k) for k in result.component_kinds)
        assert got == catalogue_entry.paper_components

    def test_stability_claim(self, catalogue_entry):
        result = classify(catalogue_entry.system())
        assert result.is_strongly_stable == catalogue_entry.paper_stable

    def test_transformability_and_unfold_count(self, catalogue_entry):
        result = classify(catalogue_entry.system())
        assert result.is_transformable == \
            catalogue_entry.paper_transformable
        assert result.unfold_times == catalogue_entry.paper_unfold

    def test_boundedness_and_rank_bound(self, catalogue_entry):
        result = classify(catalogue_entry.system())
        assert str(result.boundedness) == catalogue_entry.paper_bounded
        assert result.rank_bound == catalogue_entry.paper_rank_bound


class TestSpecificStructure:
    def test_s7_cycle_weights(self):
        result = classify(CATALOGUE["s7"].system())
        weights = sorted(c.cycle_weight for c in result.components)
        assert weights == [1, 1, 2, 3]  # paper: "weights 1, 2, 3, and 1"

    def test_s6_cycle_weights(self):
        result = classify(CATALOGUE["s6"].system())
        weights = sorted(c.cycle_weight for c in result.components)
        assert weights == [1, 2, 3]

    def test_s12_description_notes_discrepancy(self):
        """(s12) is E ⊕ A1 → F; the paper's prose says '(D) and (A1)'
        but its own definitions make the ABC component dependent."""
        result = classify(CATALOGUE["s12"].system())
        kinds = [str(k) for k in result.component_kinds]
        assert kinds == ["E", "A1"]
        assert result.formula_class is FormulaClass.F

    def test_s8_permutational_pattern_absent(self):
        result = classify(CATALOGUE["s8"].system())
        assert not result.has_permutational_pattern

    def test_s6_permutational_pattern_present(self):
        result = classify(CATALOGUE["s6"].system())
        assert result.has_permutational_pattern

    def test_trivial_components_counted(self):
        result = classify(parse_rule(
            "P(x, y) :- A(x, z), D(a, b), P(z, y)."))
        assert result.trivial_component_count == 1
        assert len(result.components) == 2


class TestBoundednessEdgeCases:
    def test_dependent_zero_weight_is_bounded_by_ioannidis(self):
        # (s8) plus a chord D(u, z) between same-potential anchors:
        # dependent, no permutational pattern, all cycles weigh 0
        result = classify(parse_rule(
            "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), D(u, z), "
            "P(z, y1, z1, u1)."))
        assert result.formula_class is FormulaClass.E
        assert result.boundedness is Boundedness.BOUNDED

    def test_dependent_with_permutational_pattern_unknown(self):
        # a pure-directed 2-cycle with a chord: Ioannidis's theorem
        # does not apply, the paper leaves it open
        result = classify(parse_rule(
            "P(x, y) :- A(x, y), P(y, x)."))
        assert result.formula_class is FormulaClass.E
        assert result.boundedness is Boundedness.UNKNOWN

    def test_pure_a2_formula_bound_zero(self):
        result = classify(parse_rule("P(x, y) :- P(x, y)."))
        assert result.formula_class is FormulaClass.A2
        assert result.boundedness is Boundedness.BOUNDED
        assert result.rank_bound == 0

    def test_theorem11_combination_bounded(self):
        """Disjoint {A2, A4, B, D}-style combination is bounded and the
        combined bound adds the permutational period."""
        # positions: (x,y swap = A4 weight 2) + (z: D-ish via fresh z1)
        result = classify(parse_rule(
            "P(x, y, z) :- C(z, z1), P(y, x, z2)."))
        assert result.boundedness is Boundedness.BOUNDED
        # path bound 1 (z→z2 … wait: see note) combined with LCM 2
        assert result.rank_bound >= 1


class TestDescribe:
    def test_describe_mentions_all_components(self):
        result = classify(CATALOGUE["s12"].system())
        text = result.describe()
        assert "E(" in text and "A1(" in text and "→ F" in text

    def test_summary_row_keys(self):
        row = classify(CATALOGUE["s3"].system()).summary_row()
        assert set(row) == {"class", "components", "stable",
                            "transformable", "unfold", "bounded",
                            "rank_bound"}


class TestCompleteness:
    """Theorem 12: every linear rule falls in exactly one class."""

    @pytest.mark.parametrize("name", sorted(CATALOGUE))
    def test_every_example_gets_exactly_one_class(self, name):
        result = classify(CATALOGUE[name].system())
        assert isinstance(result.formula_class, FormulaClass)
        for component in result.components:
            assert isinstance(component.kind, ComponentClass)
