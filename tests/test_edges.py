"""Unit tests for I-graph edge value objects and traversal."""

import pytest

from repro.datalog.terms import Variable
from repro.graphs.edges import (DirectedEdge, TraversedEdge,
                                UndirectedEdge, path_weight)

V = Variable


class TestDirectedEdge:
    def test_weight_constant(self):
        assert DirectedEdge.WEIGHT == 1

    def test_self_loop(self):
        assert DirectedEdge(V("y"), V("y"), 1).is_self_loop
        assert not DirectedEdge(V("x"), V("z"), 0).is_self_loop

    def test_endpoints(self):
        edge = DirectedEdge(V("x"), V("z"), 0)
        assert edge.endpoints() == {V("x"), V("z")}
        loop = DirectedEdge(V("y"), V("y"), 1)
        assert loop.endpoints() == {V("y")}

    def test_str_shows_position_one_based(self):
        assert str(DirectedEdge(V("x"), V("z"), 0)) == "x →(1) z"


class TestUndirectedEdge:
    def test_weight_constant(self):
        assert UndirectedEdge.WEIGHT == 0

    def test_other(self):
        edge = UndirectedEdge(V("x"), V("z"), "A", 0)
        assert edge.other(V("x")) == V("z")
        assert edge.other(V("z")) == V("x")
        with pytest.raises(ValueError):
            edge.other(V("q"))

    def test_str_carries_label(self):
        assert str(UndirectedEdge(V("x"), V("z"), "A", 0)) == \
            "x —[A]— z"


class TestTraversedEdge:
    def test_directed_forward_weight(self):
        step = TraversedEdge(DirectedEdge(V("x"), V("z"), 0), True)
        assert step.weight == 1
        assert step.source == V("x")
        assert step.target == V("z")

    def test_directed_backward_is_implicit_reverse(self):
        step = TraversedEdge(DirectedEdge(V("x"), V("z"), 0), False)
        assert step.weight == -1
        assert step.source == V("z")
        assert step.target == V("x")

    def test_undirected_weight_zero_both_ways(self):
        edge = UndirectedEdge(V("x"), V("z"), "A", 0)
        assert TraversedEdge(edge, True).weight == 0
        assert TraversedEdge(edge, False).weight == 0
        assert TraversedEdge(edge, False).source == V("z")


class TestPathWeight:
    def test_mixed_walk(self):
        d1 = DirectedEdge(V("x"), V("z"), 0)
        u1 = UndirectedEdge(V("z"), V("w"), "A", 0)
        d2 = DirectedEdge(V("q"), V("w"), 1)
        walk = (TraversedEdge(d1, True), TraversedEdge(u1, True),
                TraversedEdge(d2, False))
        assert path_weight(walk) == 0  # +1, 0, -1

    def test_empty_walk(self):
        assert path_weight(()) == 0
