"""Unit tests for repro.datalog.atoms."""

from repro.datalog.atoms import Atom, atom, fact
from repro.datalog.terms import Constant, Variable


class TestAtom:
    def test_arity_and_str(self):
        a = atom("A", "x", "z")
        assert a.arity == 2
        assert str(a) == "A(x, z)"

    def test_zero_arity_atom(self):
        a = Atom("Q", ())
        assert a.arity == 0
        assert a.is_ground

    def test_variables_in_positional_order(self):
        a = atom("R", "x", "y", "x")
        assert [v.name for v in a.variables] == ["x", "y", "x"]

    def test_variable_set_deduplicates(self):
        assert atom("R", "x", "y", "x").variable_set() == {
            Variable("x"), Variable("y")}

    def test_is_ground(self):
        assert fact("A", "a", "b").is_ground
        assert not atom("A", "x", "b").is_ground

    def test_has_repeated_variables(self):
        assert atom("R", "x", "x").has_repeated_variables()
        assert not atom("R", "x", "y").has_repeated_variables()
        # repeated constants are not repeated variables
        assert not fact("R", "a", "a").has_repeated_variables()

    def test_positions_of(self):
        a = atom("R", "x", "y", "x")
        assert a.positions_of(Variable("x")) == (0, 2)
        assert a.positions_of(Variable("z")) == ()

    def test_with_args_replaces_arguments(self):
        a = atom("R", "x", "y")
        b = a.with_args((Constant("a"), Variable("y")))
        assert b.predicate == "R"
        assert b.args == (Constant("a"), Variable("y"))

    def test_atoms_are_hashable_values(self):
        assert atom("A", "x") == atom("A", "x")
        assert len({atom("A", "x"), atom("A", "x")}) == 1

    def test_iteration_yields_terms(self):
        assert list(atom("A", "x", "y")) == [Variable("x"), Variable("y")]


class TestConstructors:
    def test_atom_mixes_variables_and_constants(self):
        a = atom("A", "x", 5)
        assert isinstance(a.args[0], Variable)
        assert isinstance(a.args[1], Constant)

    def test_atom_accepts_prebuilt_terms(self):
        a = atom("A", Variable("x"), Constant("k"))
        assert a.args == (Variable("x"), Constant("k"))

    def test_fact_makes_everything_constant(self):
        f = fact("A", "a", 1)
        assert f.is_ground
        assert f.constants == (Constant("a"), Constant(1))
