"""Keep the documentation honest: run its Python code blocks.

Extracts every ```python fenced block from docs/tutorial.md and the
README quickstart and executes them in one shared namespace per file.
Comment lines showing expected output (`# ...`) are not asserted —
the point is that the code paths exist and run without error.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)

DOCUMENTS = ["README.md", "docs/tutorial.md"]


def blocks_of(path: pathlib.Path) -> list[str]:
    return FENCE.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("document", DOCUMENTS)
def test_python_blocks_execute(document):
    path = ROOT / document
    blocks = blocks_of(path)
    assert blocks, f"{document} has no python blocks?"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{document}[block {index}]", "exec"),
                 namespace)
        except Exception as error:  # pragma: no cover - doc bug
            pytest.fail(f"{document} block {index} failed: {error}\n"
                        f"---\n{block}")


def test_docs_mention_current_cli_commands():
    """The API reference lists every CLI subcommand that exists."""
    from repro.cli import build_parser
    parser = build_parser()
    subcommands = set()
    for action in parser._actions:
        if hasattr(action, "choices") and action.choices:
            subcommands = set(action.choices)
    api = (ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    missing = {cmd for cmd in subcommands if cmd not in api}
    assert not missing, f"docs/api.md misses CLI commands: {missing}"


def test_experiments_reference_existing_artifacts():
    """Every `*.txt` artefact EXPERIMENTS.md cites is produced by some
    bench (checked against the save_artifact names in benchmarks/)."""
    experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    cited = set(re.findall(r"`([a-z0-9_]+)\.txt`", experiments))
    bench_sources = "".join(
        p.read_text(encoding="utf-8")
        for p in (ROOT / "benchmarks").glob("test_*.py"))
    produced = set(re.findall(r'save_artifact\(\s*[f]?"([a-z0-9_{}]+)"',
                              bench_sources))
    # root-level tee outputs are not bench artefacts
    cited -= {"test_output", "bench_output"}
    # f-string names like perf1_{shape}_{size} cover the perf1_* family
    unmatched = set()
    for name in cited:
        if name in produced:
            continue
        if any(template.split("{")[0] and
               name.startswith(template.split("{")[0])
               for template in produced if "{" in template):
            continue
        if any(name.startswith(template.rstrip("_"))
               for template in produced):
            continue
        unmatched.add(name)
    assert not unmatched, f"EXPERIMENTS.md cites unknown: {unmatched}"
