"""Theorem 1: syntactic ⟺ semantic strong stability."""

import pytest

from repro.core.stability import (is_semantically_stable,
                                  is_syntactically_stable,
                                  stability_report)
from repro.datalog.parser import parse_rule
from repro.workloads import CATALOGUE


class TestBothSides:
    @pytest.mark.parametrize("text,expected", [
        ("P(x, y) :- A(x, z), P(z, y).", True),            # s1a
        ("P(x, y) :- A(x, z), P(z, u), B(u, y).", True),   # s2a
        ("P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).",
         True),                                            # s3
        ("P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).",
         True),                                            # compressed
        ("P(x, y) :- A(x, z), P(y, z).", False),           # Thm 1 proof
        ("P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), "
         "P(y1, y2, y3).", False),                         # s4
        ("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).",
         False),                                           # s11
        ("P(x, y) :- B(y), C(x, y1), P(x1, y1).", False),  # s10
        ("P(x, y, z) :- P(y, z, x).", False),              # s5
        ("P(x, y) :- P(x, y).", True),                     # pure A2
    ])
    def test_syntactic(self, text, expected):
        assert is_syntactically_stable(parse_rule(text)) == expected

    @pytest.mark.parametrize("text,expected", [
        ("P(x, y) :- A(x, z), P(z, y).", True),
        ("P(x, y) :- A(x, z), P(y, z).", False),
        ("P(x, y, z) :- P(y, z, x).", False),
        ("P(x, y) :- P(x, y).", True),
    ])
    def test_semantic(self, text, expected):
        assert is_semantically_stable(parse_rule(text)) == expected


class TestTheorem1OnCatalogue:
    def test_equivalence_everywhere(self, catalogue_entry):
        """Both characterisations agree on every paper example."""
        report = stability_report(catalogue_entry.system().recursive)
        assert report.agree, (
            f"{catalogue_entry.name}: syntactic={report.syntactic} "
            f"semantic={report.semantic} "
            f"counterexample={report.counterexample}")


class TestStabilityReport:
    def test_counterexample_for_uniform_cycle(self):
        """The paper's proof: a query with only x determined gives a
        determined variable in a different position."""
        report = stability_report(parse_rule(
            "P(x, y) :- A(x, z), P(y, z)."))
        assert not report.semantic
        assert report.counterexample == "dv -> vd"

    def test_stable_formula_has_no_counterexample(self):
        report = stability_report(parse_rule(
            "P(x, y) :- A(x, z), P(z, y)."))
        assert report.syntactic and report.semantic
        assert report.counterexample is None

    def test_report_carries_classification(self):
        report = stability_report(CATALOGUE["s3"].system().recursive)
        assert report.classification.is_strongly_stable

    def test_decorations_do_not_break_stability(self):
        # B(y, w) decorates the self-loop; C(u, m) decorates the cycle
        report = stability_report(parse_rule(
            "P(x, y) :- A(x, u), B(y, w), C(u, m), P(u, y)."))
        assert report.syntactic and report.semantic
