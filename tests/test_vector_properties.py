"""Vectorised-backend laws: numpy ≡ stub ≡ tuple-set loop.

The vectorised delta-loop kernel (:mod:`repro.engine.vector`) is pure
representation: whichever implementation runs — the numpy kernel, the
pure-python ``array``-module stub, or the original tuple-set loop
pinned by ``backend="python"`` — the answers, the per-round stats
deltas and the trace shapes must be bit-identical.  Three layers pin
this down:

* **backend parity** — classes A1–C × the delta-loop engines
  (semi-naive, compiled, sharded ``workers=0``): numpy vs stub agree
  on *everything* including the vector work counters; vector vs
  pinned-python agree on everything except the fields that name which
  backend ran;
* **fallback paths** — raw databases, tuple-at-a-time mode, uncertified
  plan shapes and ``max_rounds`` caps all take the python loop with
  identical results, and ``backend="python"`` pins it explicitly;
* **session laws** — ``session.query(backend=...)`` validates the
  name, keys the answer cache per backend, and returns identical
  answers either way.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.errors import EvaluationError
from repro.datalog.parser import parse_system
from repro.engine import (CompiledEngine, Query, SemiNaiveEngine,
                          ShardedSemiNaiveEngine)
from repro.engine.stats import EvaluationStats
from repro.engine.trace import Tracer
from repro.engine.vector import (HAVE_NUMPY, active_backend, eligible,
                                 force_stub, validate_backend)
from repro.ra.database import Database
from repro.session import DeductiveDatabase
from repro.workloads import CATALOGUE, random_edb

#: one catalogue representative per paper class A1 … C
CLASS_ENTRIES = {
    "A1": "s2a", "A3": "s4", "A4": "s5", "A5": "s1a",
    "B": "s8", "C": "s9",
}

#: the engines that own a delta loop (and may hand it to the kernel)
ENGINES = {
    "semi-naive": SemiNaiveEngine,
    "compiled": CompiledEngine,
    "sharded": lambda **kw: ShardedSemiNaiveEngine(workers=0, **kw),
}


@contextmanager
def stub_backend():
    """Force the pure-python stub for the duration of the block."""
    force_stub(True)
    try:
        yield
    finally:
        force_stub(False)


def _workload(paper_class, seed, tuples):
    system = CATALOGUE[CLASS_ENTRIES[paper_class]].system()
    db = random_edb(system, nodes=5, tuples_per_relation=tuples,
                    seed=seed)
    assert db.interned
    query = Query.all_free(system.predicate, system.dimension)
    return system, db, query


def _run(engine, system, db, query, backend):
    stats = EvaluationStats()
    tracer = Tracer()
    answers = ENGINES[engine](backend=backend).evaluate(
        system, db.copy(), query, stats, trace=tracer)
    return answers, stats, tracer


def _trace_shape(tracer):
    trace = tracer.trace
    return ([(s.kind, s.delta_in, s.delta_out, s.probes, s.derived,
              s.hash_builds) for s in trace.rounds],
            {k: v for k, v in trace.meta.items() if k != "backend"})


def _stats_shape(stats, *, keep_vector: bool):
    shape = dict(vars(stats))
    shape.pop("backend", None)
    if not keep_vector:
        shape.pop("vector_batches", None)
        shape.pop("vector_rows", None)
    return shape


class TestBackendParity:
    @pytest.mark.parametrize("paper_class", sorted(CLASS_ENTRIES))
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @settings(max_examples=2, deadline=None)
    @given(seed=st.integers(0, 7), tuples=st.integers(4, 10))
    def test_vector_matches_pinned_python(self, paper_class, engine,
                                          seed, tuples):
        system, db, query = _workload(paper_class, seed, tuples)
        # warm the process-wide plan cache so both runs hit it alike
        _run(engine, system, db, query, "python")
        answers_v, stats_v, trace_v = _run(engine, system, db, query,
                                           "auto")
        answers_p, stats_p, trace_p = _run(engine, system, db, query,
                                           "python")
        assert answers_v == answers_p
        assert answers_v.encoded == answers_p.encoded
        assert stats_p.backend == "python"
        assert stats_p.vector_batches == stats_p.vector_rows == 0
        assert (_stats_shape(stats_v, keep_vector=False)
                == _stats_shape(stats_p, keep_vector=False))
        assert _trace_shape(trace_v) == _trace_shape(trace_p)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    @pytest.mark.parametrize("paper_class", sorted(CLASS_ENTRIES))
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @settings(max_examples=2, deadline=None)
    @given(seed=st.integers(0, 7), tuples=st.integers(4, 10))
    def test_numpy_matches_stub_exactly(self, paper_class, engine,
                                        seed, tuples):
        system, db, query = _workload(paper_class, seed, tuples)
        _run(engine, system, db, query, "python")  # warm plan cache
        answers_n, stats_n, trace_n = _run(engine, system, db, query,
                                           "vector")
        with stub_backend():
            answers_s, stats_s, trace_s = _run(engine, system, db,
                                               query, "vector")
        assert answers_n == answers_s
        assert answers_n.encoded == answers_s.encoded
        # everything including the vector work counters is identical;
        # only the backend name itself may differ (numpy vs stub)
        assert (_stats_shape(stats_n, keep_vector=True)
                == _stats_shape(stats_s, keep_vector=True))
        if stats_n.vector_batches:
            assert stats_n.backend == "numpy"
            assert stats_s.backend == "stub"
        assert _trace_shape(trace_n) == _trace_shape(trace_s)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 7), cap=st.integers(0, 3))
    def test_max_rounds_parity(self, seed, cap):
        system, db, query = _workload("A1", seed, 8)
        results = {}
        for backend in ("auto", "python"):
            stats = EvaluationStats()
            answers = SemiNaiveEngine(backend=backend).evaluate(
                system, db.copy(), query, stats, max_rounds=cap)
            results[backend] = (frozenset(answers), stats.rounds,
                                tuple(stats.delta_sizes))
        assert results["auto"] == results["python"]


class TestFallbackPaths:
    def test_raw_database_stays_python(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        db = Database.from_dict(
            {"A": [("a", "b"), ("b", "c")], "P__exit": [("c", "c")]},
            intern=False)
        assert not eligible(db, system.recursive.recursive_atom.args)
        stats = EvaluationStats()
        answers = SemiNaiveEngine(backend="vector").evaluate(
            system, db, None, stats)
        assert stats.backend == "python"
        assert stats.vector_batches == 0
        assert answers == {("a", "c"), ("b", "c"), ("c", "c")}

    def test_tuple_at_a_time_never_vectorises(self):
        system, db, query = _workload("A1", 0, 6)
        stats = EvaluationStats()
        SemiNaiveEngine(set_at_a_time=False,
                        backend="vector").evaluate(
            system, db.copy(), query, stats)
        assert stats.backend == "python"
        assert stats.vector_batches == 0

    def test_sharded_with_workers_keeps_round_hook(self):
        # the sharded engine must never delegate the whole loop (that
        # would bypass partitioned rounds); it still answers the same
        system, db, query = _workload("A1", 1, 8)
        stats = EvaluationStats()
        answers = ShardedSemiNaiveEngine(
            workers=0, backend="vector").evaluate(
            system, db.copy(), query, stats)
        assert stats.backend == "python"
        assert stats.vector_batches == 0
        reference = SemiNaiveEngine(backend="python").evaluate(
            system, db.copy(), query)
        assert answers == reference

    def test_unknown_backend_rejected(self):
        with pytest.raises(EvaluationError):
            SemiNaiveEngine(backend="gpu")
        with pytest.raises(EvaluationError):
            validate_backend("cuda")
        assert validate_backend("auto") == "auto"

    def test_active_backend_reports_stub_when_forced(self):
        before = active_backend()
        with stub_backend():
            assert active_backend() == "stub"
        assert active_backend() == before


class TestSessionLaws:
    def _session(self):
        session = DeductiveDatabase()
        session.load("""
            anc(x, y) :- par(x, z), anc(z, y).
            anc(x, y) :- par(x, y).
            par(a, b). par(b, c). par(c, d).
        """)
        return session

    @pytest.mark.parametrize("engine",
                             ["semi-naive", "compiled", "sharded"])
    def test_query_backends_agree(self, engine):
        session = self._session()
        vector = session.query("anc(X, Y)", engine=engine,
                               backend="vector")
        python = session.query("anc(X, Y)", engine=engine,
                               backend="python")
        assert vector == python
        assert len(vector) == 6

    def test_bound_query_backends_agree(self):
        session = self._session()
        assert (session.query("anc(a, Y)", engine="semi-naive",
                              backend="vector")
                == session.query("anc(a, Y)", engine="semi-naive",
                                 backend="python"))

    def test_answer_cache_keyed_by_backend(self):
        session = self._session()
        for backend in ("vector", "python"):
            session.query("anc(X, Y)", engine="semi-naive",
                          backend=backend)
        stats = EvaluationStats()
        session.query("anc(X, Y)", engine="semi-naive",
                      backend="vector", stats=stats)
        assert stats.answer_cache_hits == 1
        stats = EvaluationStats()
        session.query("anc(X, Y)", engine="semi-naive",
                      backend="python", stats=stats)
        assert stats.answer_cache_hits == 1

    def test_invalid_backend_raises(self):
        session = self._session()
        with pytest.raises(EvaluationError):
            session.query("anc(X, Y)", backend="gpu")
