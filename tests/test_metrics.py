"""The metrics registry core: concurrency, buckets, cardinality,
exposition round-trip."""

import json
import math
import threading

import pytest

from repro.metrics import (DEFAULT_BUCKETS, LabelCardinalityError,
                           MetricError, MetricsRegistry,
                           parse_prometheus_text)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c_total", "help",
                                            ("engine",))
        assert counter.value(engine="x") == 0
        counter.inc(engine="x")
        counter.inc(2.5, engine="x")
        assert counter.value(engine="x") == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_label_set_must_match_declaration(self):
        counter = MetricsRegistry().counter("c_total", "", ("engine",))
        with pytest.raises(MetricError):
            counter.inc()
        with pytest.raises(MetricError):
            counter.inc(engine="x", extra="y")

    def test_concurrent_increments_land_exactly(self):
        """8 threads, 5000 increments each — the single registry lock
        means exactly 40000 land (the headline thread-safety claim)."""
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "", ("worker",))
        histogram = registry.histogram("obs", "", buckets=(1.0, 10.0))
        per_thread, threads = 5000, 8

        def work(worker):
            for i in range(per_thread):
                counter.inc(worker=worker % 2)
                histogram.observe(i % 20)

        pool = [threading.Thread(target=work, args=(n,))
                for n in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert (counter.value(worker="0") + counter.value(worker="1")
                == threads * per_thread)
        state = histogram._series[()]
        assert state.count == threads * per_thread
        assert sum(state.counts) == state.count


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12


class TestHistogram:
    def test_buckets_are_half_open_upper_inclusive(self):
        """An observation equal to a bound lands in that bound's
        bucket — the Prometheus ``le`` (less-or-equal) convention."""
        histogram = MetricsRegistry().histogram(
            "h", "", buckets=(1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 4.0, 0.5, 1.5, 5.0):
            histogram.observe(value)
        state = histogram._series[()]
        # (-inf,1], (1,2], (2,4], (4,+inf)
        assert state.counts == [2, 2, 1, 1]

    def test_rendered_buckets_are_cumulative_and_monotone(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0, 3.0):
            histogram.observe(value)
        samples = parse_prometheus_text(registry.render_prometheus())
        counts = [samples[("h_bucket", (("le", le),))]
                  for le in ("1", "2", "+Inf")]
        assert counts == sorted(counts)
        assert counts[-1] == samples[("h_count", ())] == 4
        assert samples[("h_sum", ())] == 8.0

    def test_default_buckets_are_log_scale_increasing(self):
        assert all(b2 > b1 for b1, b2
                   in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))
        ratios = [b2 / b1 for b1, b2
                  in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])]
        assert all(abs(r - math.sqrt(10)) < 1e-6 for r in ratios)

    def test_bad_bucket_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.histogram("h1", "", buckets=())
        with pytest.raises(MetricError):
            registry.histogram("h2", "", buckets=(2.0, 1.0))

    def test_le_is_a_reserved_label(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", "", ("le",))


class TestRegistry:
    def test_redeclaration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("engine",))
        again = registry.counter("c_total", "other help", ("engine",))
        assert first is again

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", "", ("engine",))
        with pytest.raises(MetricError):
            registry.gauge("m", "", ("engine",))
        with pytest.raises(MetricError):
            registry.counter("m", "", ("other",))

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("0bad")

    def test_label_cardinality_guard(self):
        """Past the cap a *new* label value raises; existing series
        keep working — a runaway label value cannot grow the registry
        without bound."""
        registry = MetricsRegistry(max_label_sets=4)
        counter = registry.counter("c_total", "", ("q",))
        for i in range(4):
            counter.inc(q=i)
        with pytest.raises(LabelCardinalityError):
            counter.inc(q="one too many")
        counter.inc(q=0)  # existing series unaffected
        assert counter.value(q=0) == 2

    def test_snapshot_and_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h", ("engine",)).inc(
            3, engine="compiled")
        document = json.loads(registry.render_json())
        [metric] = document["metrics"]
        assert metric["name"] == "c_total"
        assert metric["type"] == "counter"
        assert metric["series"] == [
            {"labels": {"engine": "compiled"}, "value": 3.0}]


class TestExpositionRoundTrip:
    def test_everything_round_trips_through_the_parser(self):
        """Render the registry, parse it back, and require every
        series — including escaped label values — to survive."""
        registry = MetricsRegistry()
        counter = registry.counter("queries_total", "Total queries.",
                                   ("engine", "formula_class"))
        counter.inc(7, engine="compiled", formula_class="A1")
        counter.inc(0.5, engine="top-down", formula_class="C")
        gauge = registry.gauge("rows", "Rows.", ("relation",))
        gauge.set(42, relation='we"ird\\nam\ne')  # needs escaping
        histogram = registry.histogram("latency_seconds", "Latency.",
                                       ("engine",),
                                       buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value, engine="compiled")

        samples = parse_prometheus_text(registry.render_prometheus())
        assert samples[("queries_total",
                        (("engine", "compiled"),
                         ("formula_class", "A1")))] == 7
        assert samples[("queries_total",
                        (("engine", "top-down"),
                         ("formula_class", "C")))] == 0.5
        assert samples[("rows",
                        (("relation", 'we"ird\\nam\ne'),))] == 42
        assert samples[("latency_seconds_count",
                        (("engine", "compiled"),))] == 4
        assert samples[("latency_seconds_bucket",
                        (("engine", "compiled"),
                         ("le", "+Inf")))] == 4
        assert samples[("latency_seconds_bucket",
                        (("engine", "compiled"), ("le", "1")))] == 2

    def test_help_and_type_lines_present(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "What c counts.").inc()
        text = registry.render_prometheus()
        assert "# HELP c_total What c counts." in text
        assert "# TYPE c_total counter" in text


class TestExemplars:
    def test_exemplars_round_trip_on_bucket_lines(self):
        """With exemplars enabled the last exemplar per bucket is
        rendered on its ``_bucket`` line and survives the parser."""
        registry = MetricsRegistry(exemplars=True)
        histogram = registry.histogram("latency_seconds", "",
                                       buckets=(1.0, 10.0))
        histogram.observe(0.5, exemplar={"query_id": "q-old"})
        histogram.observe(0.7, exemplar={"query_id": "q-new"})
        histogram.observe(5.0, exemplar={"query_id": "q-mid"})
        histogram.observe(50.0)  # no exemplar on the +Inf bucket

        exemplars = {}
        samples = parse_prometheus_text(registry.render_prometheus(),
                                        exemplars=exemplars)
        assert samples[("latency_seconds_bucket",
                        (("le", "1"),))] == 2
        key = ("latency_seconds_bucket", (("le", "1"),))
        assert exemplars[key] == ({"query_id": "q-new"}, 0.7)
        key = ("latency_seconds_bucket", (("le", "10"),))
        assert exemplars[key] == ({"query_id": "q-mid"}, 5.0)
        assert ("latency_seconds_bucket",
                (("le", "+Inf"),)) not in exemplars
        assert ("latency_seconds_count", ()) not in exemplars

    def test_exemplars_suppressed_when_flag_off(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", "",
                                       buckets=(1.0,))
        histogram.observe(0.5, exemplar={"query_id": "q-1"})
        text = registry.render_prometheus()
        assert " # " not in text
        samples = parse_prometheus_text(text)
        assert samples[("latency_seconds_bucket",
                        (("le", "1"),))] == 1

    def test_parser_tolerates_exemplars_without_out_dict(self):
        registry = MetricsRegistry(exemplars=True)
        registry.histogram("h", "", buckets=(1.0,)).observe(
            0.5, exemplar={"query_id": "q-1"})
        samples = parse_prometheus_text(registry.render_prometheus())
        assert samples[("h_bucket", (("le", "1"),))] == 1
