"""Unit tests for repro.datalog.rules: Horn rules and validation."""

import pytest

from repro.datalog.atoms import atom
from repro.datalog.errors import RuleValidationError
from repro.datalog.parser import parse_rule
from repro.datalog.rules import RecursiveRule, exit_rule, make_rule
from repro.datalog.terms import Variable


class TestRule:
    def test_str_uses_wedges(self):
        rule = parse_rule("P(x, y) :- A(x, z), P(z, y).")
        assert str(rule) == "P(x, y) :- A(x, z) ∧ P(z, y)."

    def test_predicates_and_variables(self):
        rule = parse_rule("P(x, y) :- A(x, z), P(z, y).")
        assert rule.predicates == {"P", "A"}
        assert {v.name for v in rule.variables} == {"x", "y", "z"}

    def test_recursion_detection(self):
        recursive = parse_rule("P(x, y) :- A(x, z), P(z, y).")
        flat = parse_rule("P(x, y) :- A(x, y).")
        assert recursive.is_recursive()
        assert recursive.is_linear_recursive()
        assert not flat.is_recursive()

    def test_nonlinear_recursion_detected(self):
        rule = parse_rule("P(x, y) :- P(x, z), P(z, y).")
        assert rule.is_recursive()
        assert not rule.is_linear_recursive()

    def test_range_restriction(self):
        assert parse_rule("P(x, y) :- A(x, z), P(z, y).") \
            .is_range_restricted()
        assert not parse_rule("P(x, y) :- A(x, z), P(z, x).") \
            .is_range_restricted()  # y never appears in the body

    def test_body_atoms_of(self):
        rule = parse_rule("P(x, y) :- A(x, z), P(z, u), A(u, y).")
        assert len(rule.body_atoms_of("A")) == 2
        assert len(rule.body_atoms_of("P")) == 1

    def test_iteration_yields_head_then_body(self):
        rule = parse_rule("P(x, y) :- A(x, y).")
        atoms = list(rule)
        assert atoms[0] == rule.head
        assert atoms[1:] == list(rule.body)


class TestRecursiveRuleValidation:
    def test_accepts_paper_examples(self):
        RecursiveRule(parse_rule(
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z)."))

    def test_rejects_nonlinear(self):
        with pytest.raises(RuleValidationError, match="exactly one"):
            RecursiveRule(parse_rule("P(x, y) :- P(x, z), P(z, y)."))

    def test_rejects_nonrecursive(self):
        with pytest.raises(RuleValidationError, match="exactly one"):
            RecursiveRule(parse_rule("P(x, y) :- A(x, y)."))

    def test_rejects_constants(self):
        rule = make_rule(atom("P", "x"), [atom("A", "x", 5),
                                          atom("P", "x")])
        with pytest.raises(RuleValidationError, match="constant"):
            RecursiveRule(rule)

    def test_rejects_repeated_variable_in_head(self):
        rule = make_rule(atom("P", "x", "x"),
                         [atom("A", "x", "z"), atom("P", "z", "x")])
        with pytest.raises(RuleValidationError, match="more than once"):
            RecursiveRule(rule)

    def test_rejects_repeated_variable_in_recursive_body_atom(self):
        with pytest.raises(RuleValidationError, match="more than once"):
            RecursiveRule(parse_rule("P(x, y) :- A(x, z), P(z, z)."))

    def test_rejects_arity_mismatch(self):
        rule = make_rule(atom("P", "x", "y"),
                         [atom("A", "x", "z"), atom("P", "z")])
        with pytest.raises(RuleValidationError, match="arit"):
            RecursiveRule(rule)

    def test_range_restriction_strictness(self):
        text = "P(x, y) :- A(x, z), P(z, x)."
        with pytest.raises(RuleValidationError, match="range"):
            RecursiveRule(parse_rule(text), strict=True)
        # non-strict mode admits the paper's illustrative fragments
        RecursiveRule(parse_rule(text), strict=False)


class TestRecursiveRuleAccessors:
    def test_pieces(self):
        rule = RecursiveRule(parse_rule(
            "P(x, y) :- A(x, z), P(z, u), B(u, y)."))
        assert rule.predicate == "P"
        assert rule.dimension == 2
        assert str(rule.recursive_atom) == "P(z, u)"
        assert [a.predicate for a in rule.nonrecursive_atoms] == ["A", "B"]
        assert rule.head_variables == (Variable("x"), Variable("y"))
        assert rule.body_recursive_variables == (Variable("z"),
                                                 Variable("u"))

    def test_equality_and_hash(self):
        first = RecursiveRule(parse_rule("P(x, y) :- A(x, z), P(z, y)."))
        second = RecursiveRule(parse_rule("P(x, y) :- A(x, z), P(z, y)."))
        assert first == second
        assert hash(first) == hash(second)


class TestExitRule:
    def test_generic_exit_shape(self):
        rule = exit_rule("P", "E", 3)
        assert str(rule) == "P(x1, x2, x3) :- E(x1, x2, x3)."
        assert not rule.is_recursive()
