"""The concurrent service layer: admission, deadlines, epochs, drain.

Half the tests exercise :mod:`repro.service` directly (deterministic
slot accounting, no sockets); the other half go over the wire against
a real :class:`~repro.server.QueryServer` so the HTTP mappings — 429 +
``Retry-After``, 408 on timeout, ``"truncated"`` in a 200, 503 while
draining — are observed exactly as a client would.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine.deadline import Deadline, QueryTimeout
from repro.engine.stats import EvaluationStats
from repro.logutil import QueryLogger
from repro.metrics import MetricsRegistry, parse_prometheus_text
from repro.server import QueryServer
from repro.service import (AdmissionRejected, EpochManager,
                           QueryService, ServiceDraining)
from repro.session import DeductiveDatabase

PROGRAM = """
    P(x, y) :- A(x, z), P(z, y).
    P(x, y) :- A(x, y).
    A(a, b). A(b, c). A(c, d).
"""

CLOSURE = {("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"),
           ("b", "d"), ("c", "d")}


def make_session(**kwargs):
    session = DeductiveDatabase(metrics=MetricsRegistry(), **kwargs)
    session.load(PROGRAM)
    return session


def make_service(**kwargs):
    return QueryService(EpochManager(make_session()), **kwargs)


def metric_value(registry, name, **labels):
    samples = parse_prometheus_text(registry.render_prometheus())
    return sum(value for (sample, key), value in samples.items()
               if sample == name
               and set(labels.items()) <= set(key))


# -- deadline unit behaviour ----------------------------------------------

class TestDeadline:
    def test_no_budget_never_fires(self):
        deadline = Deadline()
        deadline.check_time()
        assert not deadline.out_of_rows(10 ** 9)

    def test_expired_time_raises(self):
        deadline = Deadline(timeout_s=0.0)
        with pytest.raises(QueryTimeout):
            deadline.check_time()

    def test_row_budget(self):
        deadline = Deadline(max_rows=5)
        assert not deadline.out_of_rows(5)
        assert deadline.out_of_rows(6)


class TestEngineDeadlines:
    """Engines honour the deadline riding on the stats object."""

    @pytest.mark.parametrize("engine", ["compiled", "semi-naive",
                                        "naive", "top-down"])
    def test_timeout_aborts_each_engine(self, engine):
        session = make_session()
        stats = EvaluationStats()
        stats.deadline = Deadline(timeout_s=0.0)
        with pytest.raises(QueryTimeout):
            session.query("P(X, Y)", stats=stats, engine=engine)

    @pytest.mark.parametrize("engine", ["compiled", "semi-naive",
                                        "naive", "top-down"])
    def test_row_limit_truncates_each_engine(self, engine):
        session = make_session()
        stats = EvaluationStats()
        stats.deadline = Deadline(max_rows=1)
        answers = session.query("P(X, Y)", stats=stats, engine=engine)
        assert stats.truncated
        # a round boundary may overshoot the cap by one delta, but the
        # partial set is sound: a subset of the true closure
        assert set(answers) < CLOSURE
        assert len(answers) >= 1

    def test_truncated_answers_never_cached(self):
        session = make_session()
        stats = EvaluationStats()
        stats.deadline = Deadline(max_rows=1)
        partial = session.query("P(X, Y)", stats=stats)
        assert set(partial) < CLOSURE
        # same key, no budget: must re-evaluate, not serve the partial
        full = session.query("P(X, Y)")
        assert set(full) == CLOSURE


# -- the service object ---------------------------------------------------

class TestQueryService:
    def test_run_returns_answers_with_epoch(self):
        service = make_service()
        result = service.run("P(a, Y)")
        assert set(result.answers) == {("a", "b"), ("a", "c"),
                                       ("a", "d")}
        assert result.outcome == "ok"
        assert result.epoch == 0
        assert service.completed_total == 1

    def test_rejects_when_slots_are_full(self):
        service = make_service(max_inflight=1)
        service._admit()  # occupy the only slot
        try:
            with pytest.raises(AdmissionRejected) as caught:
                service.run("P(a, Y)")
            assert caught.value.retry_after_s >= 1
            assert service.rejected_total == 1
        finally:
            service._release(0.01)
        # slot free again: admitted normally
        assert service.run("P(a, Y)").outcome == "ok"
        registry = service.manager.session.metrics
        assert metric_value(registry,
                            "repro_queries_rejected_total") == 1

    def test_timeout_is_metered_as_timeout_not_error(self):
        service = make_service()
        with pytest.raises(QueryTimeout):
            service.run("P(X, Y)", timeout_s=0.0)
        registry = service.manager.session.metrics
        assert metric_value(registry,
                            "repro_queries_timed_out_total") == 1
        assert metric_value(registry, "repro_queries_total",
                            outcome="timeout") == 1
        assert metric_value(registry, "repro_query_errors_total") == 0
        assert service.inflight == 0  # slot released on the error path

    def test_row_limit_reports_truncated(self):
        service = make_service(max_rows=1)
        result = service.run("P(X, Y)")
        assert result.outcome == "truncated"
        assert result.stats.truncated
        assert set(result.answers) < CLOSURE
        registry = service.manager.session.metrics
        assert metric_value(registry, "repro_queries_total",
                            outcome="truncated") == 1

    def test_request_can_only_tighten_service_row_cap(self):
        service = make_service(max_rows=3)
        deadline = service._deadline(None, 100)
        assert deadline.max_rows == 3
        deadline = service._deadline(None, 2)
        assert deadline.max_rows == 2

    def test_drain_blocks_new_queries(self):
        service = make_service()
        assert service.drain(grace_s=1.0)
        with pytest.raises(ServiceDraining):
            service.run("P(a, Y)")

    def test_drain_waits_for_inflight(self):
        service = make_service()
        service._admit()
        drained = []
        waiter = threading.Thread(
            target=lambda: drained.append(service.drain(grace_s=5.0)))
        waiter.start()
        service._release(0.01)
        waiter.join(timeout=5)
        assert drained == [True]

    def test_drain_grace_expires_with_stuck_query(self):
        service = make_service()
        service._admit()  # never released: a stuck query
        assert service.drain(grace_s=0.05) is False


class TestEpochManager:
    def test_write_batch_publishes_new_epoch(self):
        manager = EpochManager(make_session())
        service = QueryService(manager)
        before = service.run("P(X, Y)")
        assert set(before.answers) == CLOSURE
        epoch = service.apply_batch(add={"A": [("d", "e")]})
        assert epoch.number == 1
        after = service.run("P(X, Y)")
        assert after.epoch == 1
        assert ("a", "e") in set(after.answers)

    def test_old_epoch_is_immutable(self):
        manager = EpochManager(make_session())
        pinned = manager.current
        manager.apply(lambda s: s.add_fact("A", "d", "e"))
        # the pinned snapshot still answers the pre-batch closure
        assert set(pinned.session.query("P(X, Y)")) == CLOSURE
        assert set(manager.current.session.query("P(X, Y)")) > CLOSURE

    def test_reader_fork_refuses_writes(self):
        from repro.datalog.errors import EvaluationError
        fork = make_session().fork_reader()
        with pytest.raises(EvaluationError):
            fork.add_fact("A", "x", "y")

    def test_removals_and_rules_in_one_epoch(self):
        manager = EpochManager(make_session())
        service = QueryService(manager)
        epoch = service.apply_batch(
            remove={"A": [("c", "d")]},
            rules=["Q(x, y) :- A(x, y)."])
        assert epoch.number == 1
        result = service.run("Q(X, Y)")
        assert set(result.answers) == {("a", "b"), ("b", "c")}
        assert metric_value(manager.session.metrics,
                            "repro_epoch") == 1


# -- over the wire ---------------------------------------------------------

@pytest.fixture()
def server(request):
    kwargs = getattr(request, "param", {})
    session = DeductiveDatabase(metrics=MetricsRegistry(),
                                query_log=QueryLogger(io.StringIO()))
    session.load(PROGRAM)
    instance = QueryServer(session, port=0, **kwargs)
    thread = threading.Thread(target=instance.serve_forever,
                              daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.close()
    thread.join(timeout=5)


def _post(server, document, path="/query"):
    url = f"http://{server.host}:{server.port}{path}"
    request = urllib.request.Request(
        url, json.dumps(document).encode("utf-8"),
        {"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), \
                dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), \
            dict(error.headers)


class TestHTTPStatusMapping:
    @pytest.mark.parametrize("server", [{"max_inflight": 1}],
                             indirect=True)
    def test_429_with_retry_after_when_full(self, server):
        gate, release = threading.Event(), threading.Event()
        epoch_session = server.epochs.current.session
        original = epoch_session.query

        def blocking(query, **kwargs):
            gate.set()
            release.wait(10)
            return original(query, **kwargs)

        epoch_session.query = blocking
        slow = threading.Thread(
            target=_post, args=(server, {"query": "P(a, Y)"}))
        slow.start()
        try:
            assert gate.wait(10)
            status, body, headers = _post(server,
                                          {"query": "P(X, Y)"})
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after_s"] >= 1
        finally:
            release.set()
            slow.join(timeout=10)
        del epoch_session.query
        assert server.service.rejected_total == 1
        # the blocked query completed once released
        assert server.queries_served == 1

    def test_timeout_maps_to_408(self, server):
        status, body, _ = _post(server, {"query": "P(X, Y)",
                                         "timeout_s": 0})
        assert status == 408
        assert body["outcome"] == "timeout"
        _, text = _metrics(server)
        samples = parse_prometheus_text(text)
        assert sum(v for (n, k), v in samples.items()
                   if n == "repro_queries_timed_out_total") == 1

    @pytest.mark.parametrize("server", [{"query_timeout_s": 0.0}],
                             indirect=True)
    def test_server_default_timeout_applies(self, server):
        status, body, _ = _post(server, {"query": "P(X, Y)"})
        assert status == 408
        # a request may loosen the default budget
        status, body, _ = _post(server, {"query": "P(X, Y)",
                                         "timeout_s": 30})
        assert status == 200

    def test_row_limit_truncation_in_200(self, server):
        status, body, _ = _post(server, {"query": "P(X, Y)",
                                         "max_rows": 1})
        assert status == 200
        assert body["outcome"] == "truncated"
        assert body["truncated"] is True
        assert body["stats"]["truncated"] is True
        assert 1 <= body["count"] < len(CLOSURE)
        # without the limit the same query is complete — the partial
        # answer set was not cached
        status, body, _ = _post(server, {"query": "P(X, Y)"})
        assert body["truncated"] is False
        assert body["count"] == len(CLOSURE)

    def test_facts_route_publishes_epochs(self, server):
        status, body, _ = _post(server, {"add": {"A": [["d", "e"]]}},
                                path="/facts")
        assert status == 200
        assert body["epoch"] == 1
        status, body, _ = _post(server, {"query": "P(a, Y)"})
        assert body["epoch"] == 1
        assert ["a", "e"] in body["answers"]
        status, body, _ = _post(
            server, {"remove": {"A": [["d", "e"]]}}, path="/facts")
        assert body["epoch"] == 2
        status, body, _ = _post(server, {"query": "P(a, Y)"})
        assert {tuple(r) for r in body["answers"]} == {
            ("a", "b"), ("a", "c"), ("a", "d")}

    def test_draining_maps_to_503(self, server):
        server.service.drain(grace_s=1.0)
        status, body, _ = _post(server, {"query": "P(a, Y)"})
        assert status == 503
        status, body, _ = _post(server, {"add": {"A": [["x", "y"]]}},
                                path="/facts")
        assert status == 503

    def test_healthz_reports_admission_state(self, server):
        _post(server, {"query": "P(a, Y)"})
        url = f"http://{server.host}:{server.port}/healthz"
        with urllib.request.urlopen(url, timeout=10) as response:
            health = json.loads(response.read())
        assert health["epoch"] == 0
        assert health["inflight"] == 0
        assert health["admitted_total"] == 1
        assert health["rejected_total"] == 0


def _metrics(server):
    url = f"http://{server.host}:{server.port}/metrics"
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


class TestShutdown:
    def test_graceful_shutdown_logs_and_is_idempotent(self):
        session = DeductiveDatabase(
            metrics=MetricsRegistry(),
            query_log=QueryLogger(io.StringIO()))
        session.load(PROGRAM)
        server = QueryServer(session, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            assert server.graceful_shutdown() is True
            assert server.graceful_shutdown() is True  # idempotent
        finally:
            server.close()
            thread.join(timeout=5)
        lines = [json.loads(line) for line in
                 session.query_log.stream.getvalue().splitlines()]
        shutdown_lines = [line for line in lines
                          if line["event"] == "server_shutdown"]
        assert len(shutdown_lines) == 1
        assert shutdown_lines[0]["drained"] is True
