"""End-to-end integration: text → parse → classify → compile → evaluate.

These tests walk full pipelines the way a user of the library would,
crossing every module boundary.
"""

from repro import (CompiledEngine, Database, Query, classify,
                   compile_query, parse_system, to_stable)
from repro.core.compile import Strategy
from repro.engine import EvaluationStats, SemiNaiveEngine
from repro.workloads import CATALOGUE, binary_tree, chain, reflexive_exit


class TestAncestorPipeline:
    """A genealogy: parse, classify, compile, evaluate, all from text."""

    PROGRAM = """
        anc(x, y) :- parent(x, z), anc(z, y).
        anc(x, y) :- parent(x, y).
    """

    def build(self):
        system = parse_system(self.PROGRAM)
        db = Database.from_dict({"parent": binary_tree(3)})
        return system, db

    def test_classified_stable(self):
        system, _ = self.build()
        assert classify(system).is_strongly_stable

    def test_descendants_of_root(self):
        system, db = self.build()
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("anc(t1, Y)"))
        # every other node of the 15-node tree is a descendant
        assert len(answers) == 14

    def test_ancestors_of_leaf(self):
        system, db = self.build()
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("anc(X, t15)"))
        assert {row[0] for row in answers} == {"t1", "t3", "t7"}

    def test_point_query(self):
        system, db = self.build()
        assert CompiledEngine().evaluate(
            system, db, Query.parse("anc(t1, t9)")) == {("t1", "t9")}
        assert CompiledEngine().evaluate(
            system, db, Query.parse("anc(t9, t1)")) == frozenset()


class TestSameGenerationPipeline:
    """The classic same-generation query over an up/down hierarchy."""

    def build(self):
        system = parse_system("""
            sg(x, y) :- up(x, u), sg(u, v), down(v, y).
            sg(x, y) :- flat(x, y).
        """)
        up = [("a1", "b1"), ("a2", "b1"), ("b1", "c1"), ("b2", "c1")]
        down = [(right, left) for left, right in up]
        db = Database.from_dict({"up": up, "down": down,
                                 "flat": [("c1", "c1")]})
        return system, db

    def test_classification(self):
        system, _ = self.build()
        result = classify(system)
        assert result.is_strongly_stable
        assert len(result.components) == 2

    def test_same_generation_answers(self):
        system, db = self.build()
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("sg(a1, Y)"))
        assert ("a1", "a2") in answers
        assert ("a1", "a1") in answers
        assert all(row[1] in {"a1", "a2"} for row in answers)

    def test_compiled_matches_seminaive(self):
        system, db = self.build()
        query = Query.parse("sg(b2, Y)")
        assert CompiledEngine().evaluate(system, db, query) == \
            SemiNaiveEngine().evaluate(system, db, query)


class TestTransformPipeline:
    """Classify → unfold → compile → evaluate for a class A3 formula."""

    def test_full_path(self):
        system = CATALOGUE["s4"].system()
        classification = classify(system)
        transformed = to_stable(system, classification)
        compiled = compile_query(system, "ddv", classification)
        assert compiled.strategy is Strategy.TRANSFORM
        assert compiled.transformation.unfold_times == \
            transformed.unfold_times
        from repro.workloads import random_edb
        db = random_edb(system, nodes=5, tuples_per_relation=9, seed=21)
        query = Query("P", (sorted(db.active_domain())[0],
                            sorted(db.active_domain())[1], None))
        assert CompiledEngine().evaluate(system, db, query,
                                         compiled=compiled) == \
            SemiNaiveEngine().evaluate(system, db, query)


class TestSelectionPushdownEffect:
    """The point of the compilation: bound queries touch a sliver of
    the data on chain workloads."""

    def test_probe_scaling(self):
        system = CATALOGUE["s1a"].system()
        ratios = []
        for length in (20, 40):
            db = Database.from_dict({"A": chain(length),
                                     "P__exit": reflexive_exit(length)})
            semi, comp = EvaluationStats(), EvaluationStats()
            query = Query.parse("P(n0, n1)")
            SemiNaiveEngine().evaluate(system, db, query, semi)
            CompiledEngine().evaluate(system, db, query, comp)
            ratios.append(semi.probes / comp.probes)
        # the gap grows with the data: quadratic vs linear
        assert ratios[1] > ratios[0] > 1


class TestQueryDependentStability:
    """(s12): the iterative engine exploits the persistent bindings."""

    def test_magic_filtering_reduces_derivations(self):
        from repro.workloads import random_edb
        system = CATALOGUE["s12"].system()
        db = random_edb(system, nodes=10, tuples_per_relation=40,
                        seed=3)
        constant = sorted(db.active_domain())[0]
        query = Query("P", (constant, None, None))
        semi, comp = EvaluationStats(), EvaluationStats()
        semi_answers = SemiNaiveEngine().evaluate(system, db, query, semi)
        comp_answers = CompiledEngine().evaluate(system, db, query, comp)
        assert semi_answers == comp_answers
        # the binding filter admits far fewer tuples into P per round
        assert sum(comp.delta_sizes) < sum(semi.delta_sizes)
