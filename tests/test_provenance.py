"""Why-provenance: derivation trees for answers."""

import pytest

from repro.datalog.errors import EvaluationError
from repro.datalog.parser import parse_system
from repro.engine import SemiNaiveEngine
from repro.engine.provenance import (Derivation, _tuple_depths,
                                     explain_answer)
from repro.ra import Database
from repro.workloads import CATALOGUE, chain, random_edb


@pytest.fixture
def tc():
    system = parse_system(
        "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
    db = Database.from_dict({"A": chain(3), "E": [("n3", "n3")]})
    return system, db


class TestDepths:
    def test_chain_depths(self, tc):
        system, db = tc
        depths = _tuple_depths(system, db)
        assert depths[("n3", "n3")] == 0
        assert depths[("n2", "n3")] == 1
        assert depths[("n0", "n3")] == 3

    def test_depths_cover_exactly_the_fixpoint(self, tc):
        system, db = tc
        depths = _tuple_depths(system, db)
        assert set(depths) == set(SemiNaiveEngine().evaluate(system, db))


class TestExplain:
    def test_chain_derivation_structure(self, tc):
        system, db = tc
        derivation = explain_answer(system, db, ("n0", "n3"))
        assert derivation.depth == 3
        assert derivation.edb_facts == (("A", ("n0", "n1")),)
        bottom = derivation
        while bottom.premise is not None:
            bottom = bottom.premise
        assert bottom.tuple_ == ("n3", "n3")
        assert bottom.edb_facts == (("E", ("n3", "n3")),)

    def test_render_reads_like_a_proof(self, tc):
        system, db = tc
        text = explain_answer(system, db, ("n0", "n3")).render()
        assert text.splitlines()[0] == "P(n0, n3)"
        assert "rule: P(x, y) :- A(x, z) ∧ P(z, y)." in text
        assert "E(n3, n3)" in text
        assert text.count("premise:") == 3

    def test_exit_only_answer(self, tc):
        system, db = tc
        derivation = explain_answer(system, db, ("n3", "n3"))
        assert derivation.depth == 0
        assert derivation.premise is None

    def test_underivable_tuple_rejected(self, tc):
        system, db = tc
        with pytest.raises(EvaluationError, match="not derivable"):
            explain_answer(system, db, ("n3", "n0"))

    def test_shared_depths_map(self, tc):
        system, db = tc
        depths = _tuple_depths(system, db)
        for answer in depths:
            derivation = explain_answer(system, db, answer, depths)
            assert derivation.tuple_ == answer


class TestEveryClassExplainable:
    @pytest.mark.parametrize("name", ["s1a", "s5", "s8", "s9", "s10",
                                      "s11", "s12"])
    def test_all_answers_have_derivations(self, name):
        system = CATALOGUE[name].system()
        db = random_edb(system, nodes=4, tuples_per_relation=8, seed=2)
        answers = SemiNaiveEngine().evaluate(system, db)
        depths = _tuple_depths(system, db)
        for answer in answers:
            derivation = explain_answer(system, db, answer, depths)
            assert isinstance(derivation, Derivation)
            # the claimed chain length matches the recorded depth...
            assert derivation.depth >= 0

    def test_derivation_depth_matches_recorded_depth(self):
        system = CATALOGUE["s1a"].system()
        db = Database.from_dict({
            "A": chain(5),
            "P__exit": [("n5", "n5")],
        })
        depths = _tuple_depths(system, db)
        for answer, expected in depths.items():
            derivation = explain_answer(system, db, answer, depths)
            assert derivation.depth == expected


class TestFreshVariableSubgoals:
    def test_s10_unconstrained_position(self):
        """s10's recursive subgoal has a variable (x1) bound by no
        body atom — provenance must still find a witness subtuple."""
        system = CATALOGUE["s10"].system()
        db = Database.from_dict({
            "B": [("b1",), ("b2",)],
            "C": [("c1", "b1"), ("c2", "b2")],
            "P__exit": [("e1", "b2")],
        })
        answers = SemiNaiveEngine().evaluate(system, db)
        assert answers  # sanity
        depths = _tuple_depths(system, db)
        for answer in answers:
            explain_answer(system, db, answer, depths)
