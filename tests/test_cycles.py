"""Unit tests for cycle extraction and cycle attributes."""

import pytest

from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.graphs.compress import reduce_graph
from repro.graphs.cycles import (Cycle, fundamental_cycles,
                                 independent_cycle_of_component,
                                 permutational_cycles)
from repro.graphs.edges import DirectedEdge, TraversedEdge
from repro.graphs.igraph import build_igraph

V = Variable


def cycles_of(text: str):
    graph = build_igraph(parse_rule(text))
    reduced = reduce_graph(graph)
    out = []
    for component in reduced.component_partition():
        cycle = independent_cycle_of_component(reduced, component)
        if cycle is not None:
            out.append(cycle)
    return out


class TestCycleValidation:
    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            Cycle(())

    def test_disconnected_steps_rejected(self):
        e1 = DirectedEdge(V("a"), V("b"), 0)
        e2 = DirectedEdge(V("c"), V("d"), 1)
        with pytest.raises(ValueError, match="chain"):
            Cycle((TraversedEdge(e1, True), TraversedEdge(e2, True)))


class TestIndependentCycles:
    def test_s3_yields_three_unit_rotational_cycles(self):
        found = cycles_of(
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).")
        assert len(found) == 3
        assert all(c.is_unit and c.is_rotational for c in found)

    def test_self_loop_is_unit_permutational(self):
        found = cycles_of("P(x, y) :- A(x, z), P(z, y).")
        loops = [c for c in found if c.is_permutational]
        assert len(loops) == 1
        assert loops[0].weight == 1
        assert loops[0].is_unit

    def test_s4_weight_three_rotational(self):
        found = cycles_of(
            "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), "
            "P(y1, y2, y3).")
        assert len(found) == 1
        cycle = found[0]
        assert cycle.weight == 3
        assert cycle.is_one_directional and cycle.is_rotational
        assert not cycle.is_unit

    def test_s8_weight_zero_multidirectional(self):
        found = cycles_of(
            "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), "
            "P(z, y1, z1, u1).")
        assert len(found) == 1
        assert found[0].is_multi_directional
        assert found[0].weight == 0

    def test_s9_weight_nonzero_multidirectional(self):
        found = cycles_of("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).")
        assert len(found) == 1
        assert found[0].is_multi_directional
        assert abs(found[0].weight) == 1

    def test_dependent_component_yields_none(self):
        assert cycles_of(
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).") == []

    def test_acyclic_component_yields_none(self):
        assert cycles_of("P(x, y) :- B(y), C(x, y1), P(x1, y1).") == []

    def test_two_cycle_of_swapped_positions(self):
        found = cycles_of("P(x, y) :- P(y, x).")
        assert len(found) == 1
        assert found[0].weight == 2
        assert found[0].is_permutational

    def test_canonical_weight_nonnegative(self):
        for cycle in cycles_of(
                "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), "
                "P(y1, y2, y3)."):
            assert cycle.canonical().weight >= 0


class TestPermutationalCycles:
    def test_s6_weights(self):
        graph = build_igraph(parse_rule(
            "P(x, y, z, u, v, w) :- P(z, y, u, x, w, v)."))
        weights = sorted(c.weight for c in permutational_cycles(graph))
        assert weights == [1, 2, 3]

    def test_rotational_formula_has_no_permutational_cycles(self):
        graph = build_igraph(parse_rule(
            "P(x, y) :- A(x, z), B(y, u), P(z, u)."))
        assert permutational_cycles(graph) == ()

    def test_mixed_formula_detects_only_pure_directed_cycles(self):
        graph = build_igraph(parse_rule(
            "P(x, y, z) :- A(x, t), P(t, z, y)."))
        cycles = permutational_cycles(graph)
        assert len(cycles) == 1
        assert cycles[0].weight == 2  # y↔z swap


class TestFundamentalCycles:
    def test_basis_size_matches_cyclomatic_number(self):
        # s11: 4 anchors, 3 undirected + 2 directed edges, 1 component:
        # |E| - |V| + components = 5 - 4 + 1 = 2 basis cycles
        graph = build_igraph(parse_rule(
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1)."))
        assert len(fundamental_cycles(graph)) == 2

    def test_all_basis_cycles_close(self):
        graph = build_igraph(parse_rule(
            "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), "
            "P(u, v, w)."))
        for cycle in fundamental_cycles(graph):
            assert cycle.steps[0].source == cycle.steps[-1].target

    def test_self_loops_included(self):
        graph = build_igraph(parse_rule("P(x, y) :- A(x, z), P(z, y)."))
        loops = [c for c in fundamental_cycles(graph)
                 if len(c.steps) == 1 and c.is_permutational]
        assert len(loops) == 1
