"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestClassify:
    def test_stable_rule(self, capsys):
        code = main(["classify", "P(x, y) :- A(x, z), P(z, y)."])
        out = capsys.readouterr().out
        assert code == 0
        assert "A1" in out and "A5" in out
        assert "stable: True" in out

    def test_bounded_rule(self, capsys):
        code = main(["classify",
                     "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), "
                     "P(z, y1, z1, u1)."])
        out = capsys.readouterr().out
        assert code == 0
        assert "bounded: bounded (rank ≤ 2)" in out

    def test_invalid_rule_errors(self, capsys):
        code = main(["classify", "P(x, y) :- A(x, y)."])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_loose_mode(self, capsys):
        strict = main(["classify", "P(x, y) :- A(x, z), P(z, x)."])
        assert strict == 1
        loose = main(["classify", "--loose",
                      "P(x, y) :- A(x, z), P(z, x)."])
        assert loose == 0


class TestPlan:
    def test_plan_output(self, capsys):
        code = main(["plan", "--form", "dv",
                     "P(x, y) :- A(x, z), P(z, y)."])
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy:   stable" in out
        assert "σA^k" in out

    def test_iterative_plan(self, capsys):
        code = main(["plan", "--form", "dv",
                     "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), "
                     "P(x1, y1)."])
        out = capsys.readouterr().out
        assert code == 0
        assert "σA-C-B-[{A, B}-C]^k-E" in out


class TestFigure:
    def test_igraph_text(self, capsys):
        code = main(["figure", "P(x, y) :- A(x, z), P(z, y)."])
        out = capsys.readouterr().out
        assert code == 0
        assert "I-graph:" in out and "x →(1) z" in out

    def test_resolution_depth(self, capsys):
        code = main(["figure", "--depth", "2",
                     "P(x, y) :- A(x, z), P(z, u), B(u, y)."])
        out = capsys.readouterr().out
        assert code == 0
        assert "frontier" in out and "z₁" in out

    def test_dot_output(self, capsys):
        code = main(["figure", "--dot",
                     "P(x, y) :- A(x, z), P(z, y)."])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("graph")


class TestExpand:
    def test_trace(self, capsys):
        code = main(["expand", "--depth", "2",
                     "P(x, y) :- A(x, z), P(z, y)."])
        out = capsys.readouterr().out
        assert code == 0
        assert "expansion 1:" in out and "expansion 2:" in out


class TestTableAndDossier:
    def test_table_lists_all_examples(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        for name in ("s1a", "s8", "s12"):
            assert name in out

    def test_dossier_known(self, capsys):
        assert main(["dossier", "s9"]) == 0
        out = capsys.readouterr().out
        assert "=== s9 ===" in out and "iterative" in out

    def test_dossier_unknown(self, capsys):
        assert main(["dossier", "nope"]) == 2
        assert "unknown formula" in capsys.readouterr().err


class TestRun:
    PROGRAM = """
        P(x, y) :- A(x, z), P(z, y).
        P(x, y) :- E(x, y).
        A(a, b).
        A(b, c).
        E(c, c).
    """

    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "tc.dl"
        path.write_text(self.PROGRAM, encoding="utf-8")
        return str(path)

    @pytest.mark.parametrize("engine", ["naive", "semi-naive",
                                        "compiled"])
    def test_run_each_engine(self, capsys, program_file, engine):
        code = main(["run", "--engine", engine, "--query", "P(a, Y)",
                     program_file])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "P(a, c)"
        assert "1 answers" in captured.err

    def test_run_default_query_is_all_free(self, capsys, program_file):
        code = main(["run", program_file])
        captured = capsys.readouterr()
        assert code == 0
        assert len(captured.out.strip().splitlines()) == 3

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/file.dl"]) == 1
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["naive", "semi-naive",
                                        "compiled", "top-down",
                                        "sharded"])
    def test_run_trace_flag(self, capsys, program_file, engine):
        code = main(["run", "--engine", engine, "--query", "P(a, Y)",
                     "--trace", program_file])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "P(a, c)"
        assert f"engine={engine}" in captured.err
        assert "answers=1" in captured.err

    def test_run_trace_json(self, capsys, program_file, tmp_path):
        import json
        from repro.engine.trace import validate_trace_dict
        out_file = tmp_path / "trace.json"
        code = main(["run", "--query", "P(a, Y)",
                     "--trace-json", str(out_file), program_file])
        assert code == 0
        document = json.loads(out_file.read_text(encoding="utf-8"))
        assert document["version"] == 1
        assert len(document["traces"]) == 1
        validate_trace_dict(document["traces"][0])
        assert document["traces"][0]["answers"] == 1

    def test_run_trace_json_stdout(self, capsys, program_file):
        import json
        code = main(["run", "--query", "P(a, Y)", "--trace-json", "-",
                     program_file])
        captured = capsys.readouterr()
        assert code == 0
        # answer lines first, then the JSON document
        body = captured.out.split("\n", 1)[1]
        document = json.loads(body)
        assert document["traces"][0]["engine"] == "compiled"

    def test_run_stats_json(self, capsys, program_file, tmp_path):
        import json
        from repro.engine.stats import STATS_SCHEMA_VERSION
        out_file = tmp_path / "stats.json"
        code = main(["run", "--query", "P(a, Y)",
                     "--stats-json", str(out_file), program_file])
        assert code == 0
        document = json.loads(out_file.read_text(encoding="utf-8"))
        assert document["version"] == STATS_SCHEMA_VERSION
        [stats] = document["stats"]
        assert stats["engine"] == "compiled"
        assert stats["answers"] == 1
        assert sum(stats["delta_sizes"]) >= 1
        assert "hash_lookups" in stats

    def test_run_stats_json_matches_trace_totals(self, capsys,
                                                 program_file,
                                                 tmp_path):
        """The two observability dumps of one run must agree."""
        import json
        stats_file = tmp_path / "stats.json"
        trace_file = tmp_path / "trace.json"
        code = main(["run", "--query", "P(X, Y)",
                     "--engine", "semi-naive",
                     "--stats-json", str(stats_file),
                     "--trace-json", str(trace_file), program_file])
        assert code == 0
        stats = json.loads(stats_file.read_text())["stats"][0]
        trace = json.loads(trace_file.read_text())["traces"][0]
        assert (sum(stats["delta_sizes"])
                == sum(r["delta_out"] for r in trace["rounds"]))

    def test_run_log_json(self, capsys, program_file, tmp_path):
        import json
        log_file = tmp_path / "queries.jsonl"
        code = main(["run", "--query", "P(a, Y)",
                     "--log-json", str(log_file), program_file])
        assert code == 0
        [line] = log_file.read_text().splitlines()
        event = json.loads(line)
        assert event["event"] == "query"
        assert event["outcome"] == "ok"
        assert event["formula_class"] == "A5"
        assert event["answers"] == 1


class TestServeParser:
    def test_defaults(self):
        from repro.cli import build_parser
        arguments = build_parser().parse_args(["serve", "prog.dl"])
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 8080
        assert arguments.engine == "compiled"
        assert arguments.workers is None
        assert arguments.log_json is None

    def test_overrides(self):
        from repro.cli import build_parser
        arguments = build_parser().parse_args(
            ["serve", "prog.dl", "--host", "0.0.0.0", "--port", "0",
             "--engine", "semi-naive", "--workers", "2",
             "--log-json", "-"])
        assert arguments.port == 0
        assert arguments.workers == 2
        assert arguments.log_json == "-"

    def test_missing_program_errors(self, capsys):
        assert main(["serve", "/nonexistent/file.dl"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRunWithQueryStatements:
    def test_file_queries_executed(self, capsys, tmp_path):
        path = tmp_path / "q.dl"
        path.write_text("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
            A(a, b).
            E(b, b).
            ?- P(a, Y).
            ?- P(b, Y).
        """, encoding="utf-8")
        assert main(["run", str(path)]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("P(") == 2
        assert captured.err.count("-- P(") == 2


class TestAdvise:
    def test_capability_matrix_printed(self, capsys):
        code = main(["advise",
                     "P(x, y, z) :- A(x, u), B(y, v), C(u, v), "
                     "D(w, z), P(u, v, w)."])
        out = capsys.readouterr().out
        assert code == 0
        assert "dvv → (ddv)*" in out
        assert "pushdown" in out


class TestProve:
    def test_derivation_tree_printed(self, capsys, tmp_path):
        path = tmp_path / "tc.dl"
        path.write_text("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
            A(a, b).
            E(b, b).
        """, encoding="utf-8")
        assert main(["prove", "--answer", "P(a, Y)", str(path)]) == 0
        out = capsys.readouterr().out
        assert "P(a, b)" in out
        assert "premise:" in out
        assert "E(b, b)" in out

    def test_no_matching_answer(self, capsys, tmp_path):
        path = tmp_path / "tc.dl"
        path.write_text("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
            A(a, b).
            E(b, b).
        """, encoding="utf-8")
        assert main(["prove", "--answer", "P(zz, Y)", str(path)]) == 1


class TestLint:
    def test_warnings_exit_zero(self, capsys):
        code = main(["lint", "P(x, y) :- A(x, z), A(x, w), P(z, y)."])
        out = capsys.readouterr().out
        assert code == 0
        assert "W101" in out

    def test_errors_exit_one(self, capsys):
        code = main(["lint", "P(x, y) :- P(x, z), P(z, y)."])
        assert code == 1
        assert "E003" in capsys.readouterr().out

    def test_lint_file(self, capsys, tmp_path):
        path = tmp_path / "p.dl"
        path.write_text("P(x, y) :- A(x, z), P(z, y).\n"
                        "P(x, y) :- E(x, y).\n", encoding="utf-8")
        code = main(["lint", "--file", str(path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out


class TestJsonOutput:
    def test_classify_json(self, capsys):
        import json
        code = main(["classify", "--json",
                     "P(x, y) :- A(x, z), P(z, y)."])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["formula_class"] == "A5"
        assert payload["strongly_stable"] is True
        assert payload["components"][0]["class"] == "A1"

    def test_plan_json(self, capsys):
        import json
        code = main(["plan", "--json", "--form", "dv",
                     "P(x, y) :- A(x, z), P(z, y)."])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["strategy"] == "stable"
        assert "σA^k" in payload["plan"]
        assert payload["persistent_positions"] == [1]
