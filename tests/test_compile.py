"""The compiler: strategies, cycle specs, and the paper's plans.

The plan-string assertions check *structure* (strategy, relation
content, products, existence checks, iteration blocks) rather than
byte-identical text, plus exact matches where the generated plan
reproduces the paper's notation verbatim (s11, s12 and the stable
plans).
"""

import pytest

from repro.core.compile import (Strategy, compile_query, compile_stable)
from repro.datalog.parser import parse_system
from repro.workloads import CATALOGUE


def compiled(name: str, form: str):
    return compile_query(CATALOGUE[name].system(), form)


class TestStrategySelection:
    @pytest.mark.parametrize("name,form,strategy", [
        ("s1a", "dv", Strategy.STABLE),
        ("s2a", "dv", Strategy.STABLE),
        ("s3", "ddv", Strategy.STABLE),
        ("s4", "ddv", Strategy.TRANSFORM),
        ("thm1", "dv", Strategy.TRANSFORM),
        ("s5", "dvv", Strategy.BOUNDED),     # permutational -> bounded
        ("s6", "dvvvvv", Strategy.BOUNDED),
        ("s8", "dvvv", Strategy.BOUNDED),
        ("s10", "vv", Strategy.BOUNDED),
        ("s9", "dvv", Strategy.ITERATIVE),
        ("s11", "dv", Strategy.ITERATIVE),
        ("s12", "dvv", Strategy.ITERATIVE),
        ("s7", "dvvvvvv", Strategy.TRANSFORM),
    ])
    def test_strategy(self, name, form, strategy):
        assert compiled(name, form).strategy is strategy

    def test_adornment_string_accepted(self):
        system = CATALOGUE["s1a"].system()
        assert compile_query(system, "dv").adornment == frozenset({0})

    def test_arity_checked(self):
        with pytest.raises(ValueError, match="arity"):
            compile_query(CATALOGUE["s1a"].system(), frozenset({5}))


class TestCycleSpecs:
    def test_s3_specs(self):
        comp = compile_stable(CATALOGUE["s3"].system())
        labels = [(s.position, s.label, s.is_permutational)
                  for s in comp.specs]
        assert labels == [(0, "A", False), (1, "B", False),
                          (2, "C", False)]

    def test_tc_self_loop_spec(self):
        comp = compile_stable(CATALOGUE["s1a"].system())
        assert not comp.specs[0].is_permutational
        assert comp.specs[1].is_permutational
        assert comp.specs[1].atoms == ()

    def test_decorated_self_loop_carries_atoms(self):
        system = parse_system("P(x, y) :- A(x, z), B(y, w), P(z, y).")
        comp = compile_stable(system)
        loop = comp.specs[1]
        assert loop.is_permutational
        assert [a.predicate for a in loop.atoms] == ["B"]

    def test_compressed_cycle_label(self):
        system = parse_system(
            "P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).")
        comp = compile_stable(system)
        assert comp.specs[0].label in ("ABC", "AB", "AC")
        assert len(comp.specs[0].atoms) == 3

    def test_free_atoms_collected(self):
        system = parse_system("P(x, y) :- A(x, z), D(a, b), P(z, y).")
        comp = compile_stable(system)
        assert [a.predicate for a in comp.free_atoms] == ["D"]

    def test_nonstable_rejected(self):
        with pytest.raises(ValueError, match="not strongly stable"):
            compile_stable(CATALOGUE["s4"].system())


class TestStablePlans:
    def test_tc_plan(self):
        assert compiled("s1a", "dv").plan_text == "σE,  ∪k≥0 [σA^k-E]"

    def test_s3_plan_matches_paper(self):
        """Example 3: σA^k, σB^k branches joined with E, then C^k."""
        assert compiled("s3", "ddv").plan_text == \
            "σE,  ∪k≥0 [{σA^k, σB^k}-E-C^k]"

    def test_s3_symmetric_query(self):
        text = compiled("s3", "vdd").plan_text
        assert "σB^k" in text and "σC^k" in text and "A^k" in text

    def test_s4_transform_plan_uses_compressed_labels(self):
        formula = compiled("s4", "ddv")
        assert formula.strategy is Strategy.TRANSFORM
        assert formula.transformation.unfold_times == 3
        # each cycle of the unfolded system joins two relations
        for spec in formula.stable.specs:
            assert len(spec.label) == 2
        assert "exit expansions" in " ".join(formula.notes)


class TestIterativePlans:
    def test_s11_plan_matches_paper_exactly(self):
        """Example 11: σE, σA-C-B-E, ∪ σA-C-B-[{A,B}-C]^k-E."""
        assert compiled("s11", "dv").plan_text == \
            "σE,  σA-C-B-E,  ∪k≥1 [σA-C-B-[{A, B}-C]^k-E]"

    def test_s12_plan_matches_paper_shape(self):
        """Example 14: σE, ∪ σA-C-B-[{A,B}-C]^k-E-D^{k+1}."""
        text = compiled("s12", "dvv").plan_text
        assert "σA-C-B" in text
        assert "[{A, B}-C]^k" in text
        assert text.endswith("E-D^k-D]")

    def test_s9_dvv_product_shape(self):
        """Example 9, P(d,v,v): (σA) X ((E⋈B)(BA)^k)."""
        text = compiled("s9", "dvv").plan_text
        assert "(σA) X" in text
        assert "E-" in text
        assert "^k" in text

    def test_s9_vvd_existence_shape(self):
        """Example 9, P(v,v,d): (∃ …) A."""
        text = compiled("s9", "vvd").plan_text
        assert "∃(" in text
        assert text.endswith("-A]")

    def test_s12_note_records_query_dependent_stability(self):
        notes = " ".join(compiled("s12", "dvv").notes)
        assert "query-dependently stable" in notes
        assert "dvv → (ddv)*" in notes


class TestBoundedPlans:
    def test_s8_plan_is_finite_steps(self):
        formula = compiled("s8", "dvvv")
        assert formula.strategy is Strategy.BOUNDED
        # three comma-separated steps: depths 1, 2, 3
        assert formula.plan_text.count(",  ") == 2

    def test_bounded_note_names_rank(self):
        notes = " ".join(compiled("s8", "dvvv").notes)
        assert "rank ≤ 2" in notes


class TestDescribe:
    def test_describe_contains_all_sections(self):
        text = compiled("s9", "dvv").describe()
        for fragment in ("query form: P(dvv)", "class:", "strategy:",
                         "bindings:", "plan:"):
            assert fragment in text
