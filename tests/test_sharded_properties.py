"""Property tests: sharded evaluation ≡ sequential semi-naive.

Sharding must be invisible in the answers *and* in the per-round
deltas: a round is the union of its shard results, so any partition of
the delta produces the same fixpoint trajectory.  We check the
in-process executor (``workers=0``) over hypothesis-generated linear
systems and shard counts, the real process pool (``workers=2|4``) on a
smaller sample, and every paper catalogue formula (classes A1–C) under
both.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (EvaluationStats, SemiNaiveEngine,
                          ShardedSemiNaiveEngine)
from repro.workloads import random_edb

from .strategies import linear_systems


def assert_agrees(system, db, workers, **engine_kwargs):
    """Sharded and sequential runs: same fixpoint, same delta sizes."""
    seq_stats, sharded_stats = EvaluationStats(), EvaluationStats()
    sequential = SemiNaiveEngine().evaluate(system, db,
                                            stats=seq_stats)
    sharded = ShardedSemiNaiveEngine(
        workers=workers, **engine_kwargs).evaluate(
        system, db, stats=sharded_stats)
    assert sharded == sequential
    assert sharded_stats.delta_sizes == seq_stats.delta_sizes
    assert sharded_stats.pool_fallbacks == 0


@settings(max_examples=40, deadline=None)
@given(system=linear_systems(), seed=st.integers(0, 3),
       shards=st.integers(1, 6))
def test_inprocess_sharding_agrees_on_random_systems(system, seed,
                                                     shards):
    db = random_edb(system, nodes=5, tuples_per_relation=10, seed=seed)
    assert_agrees(system, db, workers=0, shards=shards)


@settings(max_examples=6, deadline=None)
@given(system=linear_systems(), seed=st.integers(0, 2))
def test_process_pool_agrees_on_random_systems(system, seed):
    db = random_edb(system, nodes=5, tuples_per_relation=10, seed=seed)
    assert_agrees(system, db, workers=2, min_parallel_rows=1)


@pytest.mark.parametrize("workers", [0, 2])
def test_sharded_agrees_on_catalogue(catalogue_entry, workers):
    """Every paper formula (classes A1 through C) reaches the same
    fixpoint through the sharded engine, round for round."""
    system = catalogue_entry.system()
    db = random_edb(system, nodes=6, tuples_per_relation=8, seed=1)
    assert_agrees(system, db, workers=workers, min_parallel_rows=1)


def test_four_workers_agree_on_transitive_closure(tc_system,
                                                  tc_chain_db):
    """The issue's worker grid tops out at 4; spot-check it on the
    canonical class-A1 workload."""
    assert_agrees(tc_system, tc_chain_db, workers=4,
                  min_parallel_rows=1)
