"""Structured query logging: one JSON line per event, stable ids."""

import io
import json
import threading

from repro.logutil import QueryLogger, new_query_id, open_query_log


class TestQueryLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = QueryLogger(stream)
        logger.log(event="query", query_id="q-1", outcome="ok")
        logger.log(event="query", query_id="q-2", outcome="ok",
                   answers=7)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["query_id"] == "q-1"
        assert second["answers"] == 7
        assert "ts" in first  # stamped automatically

    def test_caller_timestamp_wins(self):
        stream = io.StringIO()
        QueryLogger(stream).log(event="query", ts=123.0)
        assert json.loads(stream.getvalue())["ts"] == 123.0

    def test_keys_are_sorted_for_stable_diffs(self):
        stream = io.StringIO()
        QueryLogger(stream).log(zebra=1, alpha=2)
        line = stream.getvalue()
        assert line.index("alpha") < line.index("zebra")

    def test_non_serialisable_values_fall_back_to_str(self):
        stream = io.StringIO()
        QueryLogger(stream).log(value={1, 2}.__class__)
        assert json.loads(stream.getvalue())  # did not raise

    def test_concurrent_logging_keeps_lines_whole(self):
        stream = io.StringIO()
        logger = QueryLogger(stream)

        def work(worker):
            for i in range(200):
                logger.log(worker=worker, i=i)

        pool = [threading.Thread(target=work, args=(n,))
                for n in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 800
        for line in lines:
            json.loads(line)  # every line is complete JSON


class TestQueryIds:
    def test_ids_are_unique_and_pid_scoped(self):
        import os
        ids = {new_query_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith(f"q-{os.getpid()}-") for i in ids)


class TestOpenQueryLog:
    def test_dash_means_stderr(self):
        import sys
        logger = open_query_log("-")
        assert logger.stream is sys.stderr
        logger.close()  # must not close stderr
        assert not sys.stderr.closed

    def test_file_target_appends(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        first = open_query_log(str(path))
        first.log(n=1)
        first.close()
        second = open_query_log(str(path))
        second.log(n=2)
        second.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 2]
