"""Unit tests for evaluation statistics."""

import pytest

from repro.engine.stats import (ACCUMULATING_FIELDS,
                                ACCUMULATING_LIST_FIELDS,
                                EvaluationStats, delta_between)


class TestMeasuredRank:
    def test_exit_only(self):
        stats = EvaluationStats()
        stats.record_round(5)   # round 0: exits
        stats.record_round(0)   # fixpoint
        assert stats.measured_rank == 0

    def test_last_productive_round(self):
        stats = EvaluationStats()
        for size in (4, 3, 2, 0):
            stats.record_round(size)
        assert stats.measured_rank == 2

    def test_gap_rounds_ignored(self):
        stats = EvaluationStats()
        for size in (4, 0, 2, 0):
            stats.record_round(size)
        assert stats.measured_rank == 2

    def test_empty_database(self):
        stats = EvaluationStats()
        stats.record_round(0)
        assert stats.measured_rank == 0


class TestCounters:
    def test_record_round_increments_rounds(self):
        stats = EvaluationStats()
        stats.record_round(1)
        stats.record_round(2)
        assert stats.rounds == 2
        assert stats.delta_sizes == [1, 2]

    def test_merge(self):
        left = EvaluationStats(rounds=1, probes=10, derived=5)
        right = EvaluationStats(rounds=2, probes=3, derived=1)
        left.merge(right)
        assert (left.rounds, left.probes, left.derived) == (3, 13, 6)

    def test_summary_mentions_engine(self):
        stats = EvaluationStats(engine="compiled", probes=7)
        assert "compiled" in stats.summary()
        assert "probes=7" in stats.summary()

    def test_summary_includes_hash_counters_and_workers(self):
        stats = EvaluationStats(engine="sharded", hash_builds=3,
                                hash_lookups=9, workers=4)
        summary = stats.summary()
        assert "hash=3b/9l" in summary
        assert "workers=4" in summary
        assert "workers" not in EvaluationStats().summary()


class TestMerge:
    def test_delta_sizes_fold_positionally(self):
        """Merging a sub-evaluation (a shard, an insert) sums
        per-round counts rather than appending its rounds — the
        merged ``measured_rank`` is the combined run's."""
        left = EvaluationStats()
        for size in (4, 3, 0):
            left.record_round(size)
        right = EvaluationStats()
        for size in (1, 0, 2, 5):
            right.record_round(size)
        left.merge(right)
        assert left.delta_sizes == [5, 3, 2, 5]
        assert left.rounds == 7
        assert left.measured_rank == 3

    def test_merge_into_empty(self):
        left = EvaluationStats()
        right = EvaluationStats()
        right.record_round(2)
        left.merge(right)
        assert left.delta_sizes == [2]

    def test_answers_and_engine_not_merged(self):
        left = EvaluationStats(engine="sharded", answers=10)
        left.merge(EvaluationStats(engine="semi-naive", answers=4))
        assert left.engine == "sharded"
        assert left.answers == 10


class TestToDict:
    def test_round_trips_every_counter(self):
        stats = EvaluationStats(engine="compiled", probes=3,
                                derived=2, answers=2, workers=1,
                                hash_builds=1, hash_lookups=4)
        stats.record_round(2)
        document = stats.to_dict()
        assert document["engine"] == "compiled"
        assert document["delta_sizes"] == [2]
        assert document["measured_rank"] == 0
        assert document["hash_lookups"] == 4
        # every accumulating field is present — delta_between relies
        # on the schema being complete
        for name in ACCUMULATING_FIELDS + ACCUMULATING_LIST_FIELDS:
            assert name in document

    def test_lists_are_copies(self):
        stats = EvaluationStats()
        stats.record_round(1)
        document = stats.to_dict()
        stats.record_round(2)
        assert document["delta_sizes"] == [1]


class TestDeltaBetween:
    def test_scalars_subtract_lists_return_tail(self):
        stats = EvaluationStats(engine="semi-naive")
        stats.record_round(3)
        stats.probes = 10
        before = stats.to_dict()
        stats.record_round(5)
        stats.probes = 17
        stats.answers = 8
        delta = delta_between(before, stats.to_dict())
        assert delta["rounds"] == 1
        assert delta["probes"] == 7
        assert delta["delta_sizes"] == [5]
        # non-accumulating fields carry the after-value
        assert delta["answers"] == 8
        assert delta["engine"] == "semi-naive"

    def test_identical_snapshots_give_zero_delta(self):
        stats = EvaluationStats()
        stats.record_round(4)
        snapshot = stats.to_dict()
        delta = delta_between(snapshot, snapshot)
        assert all(delta[name] == 0 for name in ACCUMULATING_FIELDS)
        assert all(delta[name] == []
                   for name in ACCUMULATING_LIST_FIELDS)

    def test_missing_field_is_an_error(self):
        stats = EvaluationStats()
        broken = stats.to_dict()
        del broken["probes"]
        with pytest.raises(KeyError):
            delta_between(broken, stats.to_dict())
