"""Unit tests for evaluation statistics."""

from repro.engine.stats import EvaluationStats


class TestMeasuredRank:
    def test_exit_only(self):
        stats = EvaluationStats()
        stats.record_round(5)   # round 0: exits
        stats.record_round(0)   # fixpoint
        assert stats.measured_rank == 0

    def test_last_productive_round(self):
        stats = EvaluationStats()
        for size in (4, 3, 2, 0):
            stats.record_round(size)
        assert stats.measured_rank == 2

    def test_gap_rounds_ignored(self):
        stats = EvaluationStats()
        for size in (4, 0, 2, 0):
            stats.record_round(size)
        assert stats.measured_rank == 2

    def test_empty_database(self):
        stats = EvaluationStats()
        stats.record_round(0)
        assert stats.measured_rank == 0


class TestCounters:
    def test_record_round_increments_rounds(self):
        stats = EvaluationStats()
        stats.record_round(1)
        stats.record_round(2)
        assert stats.rounds == 2
        assert stats.delta_sizes == [1, 2]

    def test_merge(self):
        left = EvaluationStats(rounds=1, probes=10, derived=5)
        right = EvaluationStats(rounds=2, probes=3, derived=1)
        left.merge(right)
        assert (left.rounds, left.probes, left.derived) == (3, 13, 6)

    def test_summary_mentions_engine(self):
        stats = EvaluationStats(engine="compiled", probes=7)
        assert "compiled" in stats.summary()
        assert "probes=7" in stats.summary()
