"""Deadline enforcement, parametrized over every engine.

The deadline contract — wall-clock expiry raises
:class:`~repro.engine.deadline.QueryTimeout`, a row budget stops the
fixpoint at the next round boundary with ``stats.truncated`` set, and
a cancel flag raises :class:`~repro.engine.deadline.QueryCancelled` —
must hold identically for all six evaluation paths: the four session
engines, the sharded engine in both its deterministic (``workers=0``)
and pooled (``workers=2``) modes, and incremental maintenance
(:class:`~repro.engine.incremental.MaterializedRecursion`).
"""

import threading

import pytest

from repro.datalog.parser import parse_system
from repro.engine import SemiNaiveEngine
from repro.engine.deadline import Deadline, QueryCancelled, QueryTimeout
from repro.engine.incremental import MaterializedRecursion
from repro.engine.stats import EvaluationStats
from repro.ra import Database
from repro.session import DeductiveDatabase

PROGRAM = """
    P(x, y) :- A(x, z), P(z, y).
    P(x, y) :- A(x, y).
    A(a, b). A(b, c). A(c, d). A(d, e).
"""

CLOSURE = {(a, b)
           for i, a in enumerate("abcde")
           for b in "abcde"[i + 1:]}

#: every session-reachable evaluation path: (engine, workers)
ENGINES = [
    pytest.param("compiled", None, id="compiled"),
    pytest.param("semi-naive", None, id="semi-naive"),
    pytest.param("naive", None, id="naive"),
    pytest.param("top-down", None, id="top-down"),
    pytest.param("sharded", 0, id="sharded-workers0"),
    pytest.param("sharded", 2, id="sharded-workers2"),
]


def make_session():
    session = DeductiveDatabase()
    session.load(PROGRAM)
    return session


def budgeted_stats(**kwargs) -> EvaluationStats:
    stats = EvaluationStats()
    stats.deadline = Deadline(**kwargs)
    return stats


class TestSessionEngines:
    @pytest.mark.parametrize("engine, workers", ENGINES)
    def test_expired_wall_clock_raises(self, engine, workers):
        stats = budgeted_stats(timeout_s=0.0)
        with pytest.raises(QueryTimeout):
            make_session().query("P(X, Y)", stats=stats,
                                 engine=engine, workers=workers)

    @pytest.mark.parametrize("engine, workers", ENGINES)
    def test_row_budget_truncates_soundly(self, engine, workers):
        stats = budgeted_stats(max_rows=1)
        answers = make_session().query("P(X, Y)", stats=stats,
                                       engine=engine, workers=workers)
        assert stats.truncated
        # a round boundary may overshoot the cap by one delta, but
        # the partial set must be sound: a strict subset of the
        # closure, never an invented tuple
        assert 1 <= len(answers) < len(CLOSURE)
        assert set(answers) < CLOSURE

    @pytest.mark.parametrize("engine, workers", ENGINES)
    def test_pre_set_cancel_flag_aborts(self, engine, workers):
        cancel = threading.Event()
        cancel.set()
        stats = budgeted_stats(cancel=cancel)
        with pytest.raises(QueryCancelled):
            make_session().query("P(X, Y)", stats=stats,
                                 engine=engine, workers=workers)

    @pytest.mark.parametrize("engine, workers", ENGINES)
    def test_unset_cancel_flag_is_free(self, engine, workers):
        stats = budgeted_stats(cancel=threading.Event())
        answers = make_session().query("P(X, Y)", stats=stats,
                                       engine=engine, workers=workers)
        assert set(answers) == CLOSURE
        assert not stats.truncated


class TestIncremental:
    """The maintenance engine honours ``stats.deadline`` too."""

    SYSTEM = ("P(x, y) :- A(x, z), P(z, y).\n"
              "P(x, y) :- A(x, y).")
    CHAIN = [(f"n{i}", f"n{i + 1}") for i in range(8)]

    def make_view(self) -> MaterializedRecursion:
        system = parse_system(self.SYSTEM)
        return MaterializedRecursion(system, Database())

    def test_expired_wall_clock_raises(self):
        view = self.make_view()
        view.stats.deadline = Deadline(timeout_s=0.0)
        with pytest.raises(QueryTimeout):
            view.insert_many("A", self.CHAIN)

    def test_row_budget_truncates_soundly(self):
        view = self.make_view()
        view.stats.deadline = Deadline(max_rows=1)
        added = view.insert_many("A", self.CHAIN)
        assert view.stats.truncated
        # the partial materialisation is sound: everything derived is
        # in the true closure, but propagation stopped early
        system = parse_system(self.SYSTEM)
        scratch = SemiNaiveEngine().evaluate(system, view.database)
        assert set(added) < set(scratch)
        assert set(view.rows) < set(scratch)

    def test_pre_set_cancel_flag_aborts(self):
        view = self.make_view()
        cancel = threading.Event()
        cancel.set()
        view.stats.deadline = Deadline(cancel=cancel)
        with pytest.raises(QueryCancelled):
            view.insert_many("A", self.CHAIN)

    def test_unbudgeted_maintenance_completes(self):
        view = self.make_view()
        view.insert_many("A", self.CHAIN)
        system = parse_system(self.SYSTEM)
        scratch = SemiNaiveEngine().evaluate(system, view.database)
        assert set(view.rows) == set(scratch)
        assert not view.stats.truncated

    def test_budgeted_view_recovers_on_reseed(self):
        view = self.make_view()
        view.stats.deadline = Deadline(max_rows=1)
        view.insert_many("A", self.CHAIN)
        assert view.stats.truncated
        # rebuilding from the maintained EDB restores completeness
        rebuilt = MaterializedRecursion(
            parse_system(self.SYSTEM), view.database)
        system = parse_system(self.SYSTEM)
        scratch = SemiNaiveEngine().evaluate(system, view.database)
        assert set(rebuilt.rows) == set(scratch)
