"""Direct unit tests for the compiler's body-structuring helpers."""

from repro.core.compile import (_assemble_groups, _collapse_stages,
                                _stage_order, _structure_body)
from repro.core.plans import render
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Variable

V = Variable


def atoms(*texts: str):
    return tuple(parse_atom(t) for t in texts)


class TestStageOrder:
    def test_selection_first(self):
        body = list(atoms("B(y, z)", "A(x, y)"))
        ordered, determined = _stage_order(body, {V("x")})
        assert [a.predicate for a in ordered] == ["A", "B"]
        assert determined == {V("x"), V("y"), V("z")}

    def test_simultaneous_stage_keeps_input_order(self):
        body = list(atoms("A(x, p)", "B(x, q)"))
        ordered, _ = _stage_order(body, {V("x")})
        assert [a.predicate for a in ordered] == ["A", "B"]

    def test_unreachable_atoms_left_out(self):
        body = list(atoms("A(x, y)", "C(m, n)"))
        ordered, _ = _stage_order(body, {V("x")})
        assert [a.predicate for a in ordered] == ["A"]

    def test_empty_seed_orders_nothing(self):
        ordered, determined = _stage_order(list(atoms("A(x, y)")), set())
        assert ordered == []
        assert determined == set()


class TestStructureBody:
    def test_groups_split_on_shared_free_variables(self):
        body = atoms("A(x, y)", "B(u, v)")
        groups = _structure_body(body, None, frozenset({V("x")}),
                                 frozenset({V("y"), V("v")}))
        assert len(groups) == 2

    def test_query_constants_do_not_connect(self):
        # both atoms touch the constant x but share nothing else
        body = atoms("A(x, y)", "B(x, z)")
        groups = _structure_body(body, None, frozenset({V("x")}),
                                 frozenset({V("y"), V("z")}))
        assert len(groups) == 2

    def test_exit_joins_its_group(self):
        body = atoms("B(u, v)")
        exit_atom = parse_atom("P(u, z, v)")
        groups = _structure_body(body, exit_atom, frozenset(),
                                 frozenset({V("z")}))
        assert len(groups) == 1
        assert groups[0].has_exit
        assert groups[0].produces_answer

    def test_seeded_flag(self):
        body = atoms("A(x, y)")
        (group,) = _structure_body(body, None, frozenset({V("x")}),
                                   frozenset({V("y")}))
        assert group.seeded

    def test_answer_flag_false_without_free_head_vars(self):
        body = atoms("A(x, y)")
        (group,) = _structure_body(body, None, frozenset({V("x")}),
                                   frozenset())
        assert not group.produces_answer


class TestCollapseStages:
    def test_independent_pair_becomes_branches(self):
        rendered = render(_collapse_stages(atoms("A(a, b)", "B(c, d)")))
        assert rendered == "{A, B}"

    def test_dependent_pair_stays_chained(self):
        rendered = render(_collapse_stages(atoms("A(a, b)", "B(b, c)")))
        assert rendered == "A-B"

    def test_mixed_run(self):
        rendered = render(_collapse_stages(
            atoms("A(a, b)", "B(c, d)", "C(b, d)")))
        assert rendered == "{A, B}-C"


class TestAssembleGroups:
    def test_exists_prepended_for_non_answer_groups(self):
        body = atoms("A(x, y)", "B(u, v)")
        groups = _structure_body(body, None, frozenset({V("x")}),
                                 frozenset({V("v")}))
        rendered = render(_assemble_groups(groups))
        assert "∃(" in rendered
        assert "B" in rendered

    def test_two_answer_groups_form_a_product(self):
        body = atoms("A(x, y)", "B(u, v)")
        groups = _structure_body(body, None, frozenset({V("x")}),
                                 frozenset({V("y"), V("v")}))
        rendered = render(_assemble_groups(groups))
        assert " X " in rendered

    def test_all_exists_when_nothing_produces(self):
        body = atoms("A(x, y)",)
        groups = _structure_body(body, None, frozenset({V("x")}),
                                 frozenset())
        rendered = render(_assemble_groups(groups))
        assert rendered.startswith("∃(")
