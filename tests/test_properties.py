"""Property-based tests (hypothesis) over random rules and databases.

These machine-check the paper's theorems on *arbitrary* linear rules,
not just the worked examples: Theorem 1's equivalence, Corollary 3,
Theorem 2/4 equivalence of the unfolding, the rank bounds, Theorem 12
completeness, and cross-engine agreement.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.classes import Boundedness, FormulaClass
from repro.core.classifier import classify
from repro.core.stability import (is_semantically_stable,
                                  is_syntactically_stable)
from repro.core.transform import to_stable
from repro.datalog.program import RecursionSystem
from repro.engine import (CompiledEngine, NaiveEngine, Query,
                          SemiNaiveEngine, TopDownEngine)
from repro.ra.relation import Relation
from repro.workloads import random_edb

from .strategies import linear_rules, linear_systems, small_binary_relations

RELAXED = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=80, deadline=None)


class TestClassifierTotality:
    @RELAXED
    @given(linear_rules())
    def test_every_rule_gets_exactly_one_class(self, rule):
        """Theorem 12: the classification is complete."""
        result = classify(rule)
        assert isinstance(result.formula_class, FormulaClass)
        assert result.components  # a recursive rule has >= 1 component

    @RELAXED
    @given(linear_rules())
    def test_components_partition_the_anchors(self, rule):
        result = classify(rule)
        seen = set()
        for component in result.components:
            assert not (seen & component.anchors)
            seen |= component.anchors
        assert seen == result.graph.anchors

    @RELAXED
    @given(linear_rules())
    def test_a_family_iff_transformable(self, rule):
        """Corollary 3 (syntactic side)."""
        result = classify(rule)
        assert result.is_transformable == \
            result.formula_class.is_one_directional


class TestTheorem1Property:
    @RELAXED
    @given(linear_rules())
    def test_syntactic_equals_semantic(self, rule):
        assert is_syntactically_stable(rule) == \
            is_semantically_stable(rule)


class TestTransformationProperty:
    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=3),
           st.integers(0, 3))
    def test_unfolded_system_is_equivalent(self, rule, seed):
        """Theorem 2/4: the unfolding computes the same fixpoint."""
        result = classify(rule)
        if not result.is_transformable:
            return
        if result.unfold_times > 6:
            return  # keep the expansion size sane
        system = RecursionSystem(rule)
        transformed = to_stable(system, result)
        assert transformed.classification.is_strongly_stable
        db = random_edb(system, nodes=5, tuples_per_relation=7,
                        seed=seed)
        engine = SemiNaiveEngine()
        assert engine.evaluate(system, db) == \
            engine.evaluate(transformed.system, db)


class TestRankBoundProperty:
    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=3),
           st.integers(0, 2))
    def test_measured_rank_respects_bound(self, rule, seed):
        """Ioannidis / Theorems 10, 11: bounded formulas never derive
        new tuples past the predicted rank on any database."""
        result = classify(rule)
        if result.boundedness is not Boundedness.BOUNDED:
            return
        system = RecursionSystem(rule)
        db = random_edb(system, nodes=5, tuples_per_relation=8,
                        seed=seed)
        measured = SemiNaiveEngine().measured_rank(system, db)
        assert measured <= result.rank_bound


class TestEngineAgreementProperty:
    @RELAXED
    @given(linear_systems(max_arity=3, max_edb_atoms=3),
           st.integers(0, 3), st.integers(0, 7))
    def test_three_engines_agree(self, system, seed, query_mask):
        db = random_edb(system, nodes=5, tuples_per_relation=7,
                        seed=seed)
        domain = sorted(db.active_domain()) or ["c0"]
        pattern = tuple(
            domain[i % len(domain)]
            if (query_mask >> i) & 1 and i < system.dimension else None
            for i in range(system.dimension))
        query = Query(system.predicate, pattern)
        naive = NaiveEngine().evaluate(system, db, query)
        semi = SemiNaiveEngine().evaluate(system, db, query)
        comp = CompiledEngine().evaluate(system, db, query)
        top = TopDownEngine().evaluate(system, db, query)
        assert naive == semi == comp == top


class TestRelationLaws:
    @FAST
    @given(small_binary_relations(), small_binary_relations())
    def test_join_commutes_modulo_projection(self, left_rows, right_rows):
        left = Relation(("x", "y"), left_rows)
        right = Relation(("y", "z"), right_rows)
        forward = left.join(right)
        backward = right.join(left).project(("x", "y", "z"))
        assert forward == backward

    @FAST
    @given(small_binary_relations())
    def test_selection_idempotent(self, rows):
        rel = Relation(("x", "y"), rows)
        once = rel.select(x="c0")
        assert once.select(x="c0") == once

    @FAST
    @given(small_binary_relations(), small_binary_relations())
    def test_union_difference_inverse(self, rows_a, rows_b):
        a = Relation(("x", "y"), rows_a)
        b = Relation(("x", "y"), rows_b)
        assert a.union(b).difference(b).rows == a.rows - b.rows

    @FAST
    @given(small_binary_relations())
    def test_semijoin_is_selection_of_join(self, rows):
        rel = Relation(("x", "y"), rows)
        keys = Relation(("y",), [(r[1],) for r in rows[:3]])
        semi = rel.semijoin(keys)
        via_join = rel.join(keys)
        assert semi.rows == via_join.rows


class TestExpansionProperty:
    @RELAXED
    @given(linear_systems(max_arity=2, max_edb_atoms=2),
           st.integers(1, 4))
    def test_expansion_k_has_k_body_copies(self, system, k):
        base = len(system.recursive.nonrecursive_atoms)
        expanded = system.expansion(k)
        edb_atoms = [a for a in expanded.body
                     if a.predicate != system.predicate]
        assert len(edb_atoms) == base * k
        recursive_atoms = [a for a in expanded.body
                           if a.predicate == system.predicate]
        assert len(recursive_atoms) == 1


class TestWitnessProperty:
    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=3))
    def test_witness_rank_within_bound(self, rule):
        """The constructive witness never exceeds the predicted bound,
        for any bounded random formula."""
        from repro.core.witness import witness_rank
        result = classify(rule)
        if result.boundedness is not Boundedness.BOUNDED:
            return
        if result.rank_bound > 8:
            return
        system = RecursionSystem(rule)
        measured = witness_rank(system, result.rank_bound + 1)
        assert measured <= result.rank_bound


class TestAdvisorTotality:
    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=3))
    def test_advise_covers_every_adornment(self, rule):
        from repro.core.advisor import advise
        system = RecursionSystem(rule)
        capabilities = advise(system)
        assert len(capabilities) == 2 ** system.dimension
        assert all(cap.pushdown in ("full", "partial", "none",
                                    "finite")
                   for cap in capabilities)


class TestParserRoundTrip:
    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=4))
    def test_printed_rule_reparses_identically(self, rule):
        from repro.datalog.parser import parse_rule
        assert parse_rule(str(rule.rule)) == rule.rule


class TestBindingSequenceProperty:
    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=3),
           st.integers(0, 7), st.integers(0, 30))
    def test_state_at_is_eventually_periodic(self, rule, mask, probe):
        from repro.core.bindings import binding_sequence
        adornment = frozenset(i for i in range(rule.dimension)
                              if (mask >> i) & 1)
        sequence = binding_sequence(rule, adornment)
        assert sequence.state_at(probe) == sequence.state_at(
            probe + sequence.period if probe >= sequence.prefix_length
            else probe)


class TestPotentialCycleConsistency:
    """Two independent implementations must agree: the potential
    assignment is consistent iff every fundamental-basis cycle of the
    hybrid graph has weight 0."""

    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=4))
    def test_potentials_agree_with_cycle_basis(self, rule):
        from repro.graphs import (assign_potentials, build_igraph,
                                  fundamental_cycles)
        graph = build_igraph(rule)
        consistent = assign_potentials(graph).consistent
        basis_all_zero = all(c.weight == 0
                             for c in fundamental_cycles(graph))
        assert consistent == basis_all_zero

    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=3))
    def test_path_weight_equals_potential_difference(self, rule):
        """When consistent, any directed path's weight equals the
        endpoint potential difference."""
        from repro.graphs import assign_potentials, build_igraph
        graph = build_igraph(rule)
        result = assign_potentials(graph)
        if not result.consistent:
            return
        for edge in graph.directed:
            assert (result.potentials[edge.head]
                    - result.potentials[edge.tail]) == 1


class TestMinimizationClassInvariant:
    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=4))
    def test_minimisation_preserves_stability(self, rule):
        """Folding redundant atoms never destroys strong stability
        (it can only simplify the graph)."""
        from repro.core.minimize import minimize_rule
        from repro.datalog.rules import RecursiveRule
        before = classify(rule)
        minimised = RecursiveRule(minimize_rule(rule.rule),
                                  strict=False)
        after = classify(minimised)
        if before.is_strongly_stable:
            assert after.is_strongly_stable
