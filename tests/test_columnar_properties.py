"""Columnar answer-pipeline laws: lazy ``AnswerSet`` ≡ eager decode.

The lazy boundary is pure representation: every engine must hand back
the same relation whether the caller reads it as a not-yet-decoded
:class:`~repro.ra.answers.AnswerSet` or as the eagerly decoded
``frozenset[tuple]`` of the pre-columnar API.  Three layers pin this
down:

* **answer-set laws** — hypothesis round-trips over
  :class:`AnswerSet`: per-column decode ≡ per-row decode, the
  columns/rows transpose law, membership/equality/hash/iteration
  agreeing with the decoded frozenset, and the laziness contract
  (``len``/``in``/same-table ``==`` never decode; iteration decodes
  exactly once);
* **engine parity** — classes A1–C × all six engines: the interned
  run returns a *lazy* ``AnswerSet`` whose decode is bit-identical to
  the raw twin's frozenset, with identical stats and traces;
* **session sweep** — interned and raw sessions agree on every query
  of a scripted battery, lazy on one side, verbatim on the other.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.parser import parse_system
from repro.engine import (CompiledEngine, MaterializedRecursion,
                          NaiveEngine, Query, SemiNaiveEngine,
                          ShardedSemiNaiveEngine, TopDownEngine)
from repro.engine.stats import EvaluationStats
from repro.engine.trace import Tracer
from repro.ra import AnswerSet
from repro.ra.symbols import SymbolTable
from repro.session import DeductiveDatabase
from repro.workloads import CATALOGUE, random_edb

#: one catalogue representative per paper class A1 … C
CLASS_ENTRIES = {
    "A1": "s2a", "A3": "s4", "A4": "s5", "A5": "s1a",
    "B": "s8", "C": "s9",
}

#: the five evaluate()-shaped engines; the sixth (incremental) has an
#: insertion API and gets its own parity test below
ENGINES = {
    "naive": NaiveEngine,
    "semi-naive": SemiNaiveEngine,
    "compiled": CompiledEngine,
    "top-down": TopDownEngine,
    "sharded": lambda: ShardedSemiNaiveEngine(workers=0),
}

#: hashable constants that cannot collide across types under ``==``
#: (no floats/bools: ``1 == 1.0 == True`` would alias dictionary keys)
_constants = st.one_of(st.text(max_size=8), st.integers())


def _answer_set(rows: list[tuple]) -> tuple[AnswerSet, SymbolTable]:
    table = SymbolTable()
    encoded = frozenset(table.encode_row(row) for row in rows)
    return AnswerSet(encoded, table), table


# -- answer-set laws ----------------------------------------------------


class TestAnswerSetLaws:
    @settings(max_examples=80, deadline=None)
    @given(rows=st.lists(st.tuples(_constants, _constants),
                         max_size=30))
    def test_decode_agrees_with_per_row_decode(self, rows):
        answers, table = _answer_set(rows)
        eager = frozenset(table.decode_row(row)
                          for row in answers.encoded)
        assert answers.decoded() == eager == frozenset(rows)
        assert set(answers) == set(eager)
        assert answers.sorted_rows() == sorted(eager, key=repr)
        # the decode is cached: same object, decode timed exactly once
        assert answers.decoded() is answers.decoded()
        assert answers.decode_seconds is not None

    @settings(max_examples=80, deadline=None)
    @given(rows=st.lists(st.tuples(_constants, _constants),
                         min_size=1, max_size=30))
    def test_columns_transpose_law(self, rows):
        answers, _ = _answer_set(rows)
        columns = answers.columns()
        assert all(isinstance(column, array)
                   and column.typecode == "q" for column in columns)
        assert len(columns) == answers.arity == 2
        assert all(len(column) == len(answers) for column in columns)
        assert frozenset(zip(*columns)) == answers.encoded
        # building the columns is not a decode
        assert not answers.is_decoded

    @settings(max_examples=80, deadline=None)
    @given(rows=st.lists(st.tuples(_constants, _constants),
                         max_size=20),
           probe=st.tuples(_constants, _constants))
    def test_membership_never_decodes(self, rows, probe):
        answers, _ = _answer_set(rows)
        for row in rows:
            assert row in answers
        assert (probe in answers) == (probe in frozenset(rows))
        # a constant the table never saw is a guaranteed miss
        assert ("\x00never-interned", "x") not in answers
        assert "not-a-tuple" not in answers
        assert len(answers) == len(frozenset(rows))
        assert not answers.is_decoded

    @settings(max_examples=60, deadline=None)
    @given(rows=st.lists(st.tuples(_constants, _constants),
                         max_size=20))
    def test_equality_and_hash_agree_with_frozenset(self, rows):
        answers, table = _answer_set(rows)
        values = frozenset(rows)
        # both comparison directions, and the negations
        assert answers == values and values == answers
        assert not (answers != values) and not (values != answers)
        assert hash(answers) == hash(values)
        assert (answers == list(rows)) is False  # non-set: no decode law
        # same symbol table: equality stays in code space
        twin = AnswerSet(answers.encoded, table)
        assert answers == twin and not twin.is_decoded
        # different tables with the same values still compare equal
        other, _ = _answer_set(rows)
        assert answers == other

    def test_same_table_equality_is_lazy(self):
        answers, table = _answer_set([("a", "b"), ("c", "d")])
        twin = AnswerSet(answers.encoded, table)
        assert answers == twin
        assert not answers.is_decoded and not twin.is_decoded
        assert answers != AnswerSet(frozenset([(0, 1)]), table)
        assert not answers.is_decoded

    def test_set_operators_return_plain_frozensets(self):
        answers, _ = _answer_set([("a", "b"), ("c", "d")])
        union = answers | {("x", "y")}
        assert isinstance(union, frozenset)
        assert union == {("a", "b"), ("c", "d"), ("x", "y")}
        assert answers & {("a", "b")} == {("a", "b")}
        assert answers - {("a", "b")} == {("c", "d")}

    def test_empty_and_repr(self):
        empty = AnswerSet(frozenset(), SymbolTable())
        assert len(empty) == 0 and empty.arity == 0
        assert empty.columns() == ()
        assert empty.decoded() == frozenset() == empty
        assert empty == frozenset()
        assert "lazy" in repr(AnswerSet(frozenset(), SymbolTable()))
        answers, _ = _answer_set([("a", "b")])
        assert "1 rows × 2 columns" in repr(answers)
        answers.decoded()
        assert "decoded" in repr(answers)


# -- engine parity: lazy AnswerSet ≡ eager decode -----------------------


def _twin_workload(paper_class, seed, tuples):
    system = CATALOGUE[CLASS_ENTRIES[paper_class]].system()
    interned = random_edb(system, nodes=5, tuples_per_relation=tuples,
                          seed=seed)
    raw = interned.decoded()
    assert interned.interned and not raw.interned
    query = Query.all_free(system.predicate, system.dimension)
    return system, interned, raw, query


def _trace_shape(tracer):
    """The mode-independent part of a trace: per-round kinds, delta
    sizes and work counters (timings excluded)."""
    trace = tracer.trace
    return [(s.kind, s.delta_in, s.delta_out, s.probes, s.derived,
             s.hash_builds) for s in trace.rounds]


#: stats fields that depend on how the delta was *partitioned*, not on
#: the logical work done (see tests/test_symbols_properties.py)
_PARTITION_FIELDS = frozenset({
    "batch_sizes", "shard_counts", "shard_skew",
    "plan_cache_hits", "plan_cache_misses", "hash_lookups",
})

#: fields that record *which* delta-loop backend ran, not the logical
#: work done: the interned twin may take the vectorised kernel while
#: the raw twin cannot (it requires dictionary-encoded rows); every
#: other counter stays bit-identical across backends (asserted in
#: tests/test_vector_properties.py)
_BACKEND_FIELDS = frozenset({"backend", "vector_batches",
                             "vector_rows"})


def _comparable_stats(stats, engine):
    shape = dict(vars(stats))
    for field in _BACKEND_FIELDS:
        shape.pop(field, None)
    if engine == "sharded":
        for field in _PARTITION_FIELDS:
            shape.pop(field, None)
    return shape


class TestEngineParity:
    @pytest.mark.parametrize("paper_class", sorted(CLASS_ENTRIES))
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @settings(max_examples=2, deadline=None)
    @given(seed=st.integers(0, 7), tuples=st.integers(4, 10))
    def test_lazy_result_is_bit_identical(self, paper_class, engine,
                                          seed, tuples):
        system, interned, raw, query = _twin_workload(
            paper_class, seed, tuples)
        for db in (interned, raw):  # warm the process-wide plan cache
            ENGINES[engine]().evaluate(system, db.copy(), query,
                                       EvaluationStats())
        stats_i, stats_r = EvaluationStats(), EvaluationStats()
        trace_i, trace_r = Tracer(), Tracer()
        answers_i = ENGINES[engine]().evaluate(
            system, interned.copy(), query, stats_i, trace=trace_i)
        answers_r = ENGINES[engine]().evaluate(
            system, raw.copy(), query, stats_r, trace=trace_r)
        # the interned boundary is a *lazy* AnswerSet whose stats and
        # trace were finished before any decode could have happened
        assert isinstance(answers_i, AnswerSet)
        assert not answers_i.is_decoded
        assert isinstance(answers_r, frozenset)
        assert stats_i.answers == len(answers_i) == len(answers_r)
        assert (_comparable_stats(stats_i, engine)
                == _comparable_stats(stats_r, engine))
        assert _trace_shape(trace_i) == _trace_shape(trace_r)
        # per-column lazy decode ≡ the raw twin, and ≡ eager per-row
        # decode of the same encoded rows
        table = answers_i.symbols
        eager = frozenset(table.decode_row(row)
                          for row in answers_i.encoded)
        assert answers_i.decoded() == eager == answers_r
        assert answers_i == answers_r and answers_r == answers_i

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 7))
    def test_incremental_rows_are_lazy_and_identical(self, seed):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        base = random_edb(system, nodes=5, tuples_per_relation=6,
                          seed=seed)
        view_i = MaterializedRecursion(system, base)
        view_r = MaterializedRecursion(system, base.decoded())
        rows = view_i.rows
        assert isinstance(rows, AnswerSet) and not rows.is_decoded
        assert rows == view_r.rows
        added_i = view_i.insert_many("A", [("c0", "c3"), ("c3", "c0")])
        added_r = view_r.insert_many("A", [("c0", "c3"), ("c3", "c0")])
        assert isinstance(added_i, AnswerSet)
        assert added_i == added_r
        assert view_i.rows == view_r.rows


# -- session sweep: raw vs interned, lazy on one side -------------------


def _tc_session(intern):
    session = DeductiveDatabase(intern=intern)
    session.load("P(x, y) :- A(x, z), P(z, y).\n"
                 "P(x, y) :- A(x, y).\n")
    session.add_facts("A", [(f"n{i}", f"n{i + 1}") for i in range(5)])
    return session


class TestSessionSweep:
    BATTERY = [
        ("P(X, Y)", "compiled"), ("P(n0, Y)", "compiled"),
        ("P(X, Y)", "semi-naive"), ("P(n0, Y)", "top-down"),
        ("P(X, Y)", "naive"), ("A(n0, Y)", "compiled"),
        ("P(never_seen, Y)", "compiled"),
    ]

    def test_raw_and_interned_sessions_agree(self):
        interned, raw = _tc_session(True), _tc_session(False)
        for query, engine in self.BATTERY:
            stats_i, stats_r = EvaluationStats(), EvaluationStats()
            answers_i = interned.query(query, stats_i, engine=engine)
            answers_r = raw.query(query, stats_r, engine=engine)
            if "never_seen" in query:
                # the unseen-constant short-circuit answers before any
                # engine runs; an empty frozenset is its result shape
                assert answers_i == frozenset()
            else:
                assert isinstance(answers_i, AnswerSet), query
            assert isinstance(answers_r, frozenset), query
            assert answers_i == answers_r and answers_r == answers_i
            assert stats_i.answers == stats_r.answers == len(answers_r)

    def test_cached_answers_stay_lazy_until_read(self):
        session = _tc_session(True)
        first, second = EvaluationStats(), EvaluationStats()
        answers = session.query("P(X, Y)", first, engine="semi-naive")
        assert isinstance(answers, AnswerSet)
        assert not answers.is_decoded
        again = session.query("P(X, Y)", second, engine="semi-naive")
        # the cache returns the same lazy object — a hit neither
        # decodes nor copies, and the hit still counts
        assert again is answers and not again.is_decoded
        assert second.answer_cache_hits == 1
        # reading it decodes once; the cached entry now carries the
        # decoded columns for every later hit
        assert sorted(again) == sorted(
            {(f"n{i}", f"n{j}") for i in range(5)
             for j in range(i + 1, 6)})
        assert session.query("P(X, Y)", engine="semi-naive").is_decoded

    def test_edb_lookup_is_lazy_and_filtered(self):
        session = _tc_session(True)
        answers = session.query("A(n0, Y)")
        assert isinstance(answers, AnswerSet)
        assert not answers.is_decoded
        assert ("n0", "n1") in answers and not answers.is_decoded
        assert answers == {("n0", "n1")}
