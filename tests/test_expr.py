"""Unit tests for the relational-algebra expression evaluator."""

import pytest

from repro.datalog.errors import SchemaError
from repro.ra.database import Database
from repro.ra.expr import (CartesianProduct, DifferenceOp, Join, Literal,
                           Projection, Renaming, Scan, Semijoin,
                           UnionOp, evaluate, scan, select)
from repro.ra.relation import Relation


@pytest.fixture
def db():
    return Database.from_dict({
        "A": [("a", "b"), ("b", "c")],
        "E": [("c", "c")],
    })


class TestEvaluate:
    def test_scan(self, db):
        rel = evaluate(scan("A", "x", "y"), db)
        assert rel.columns == ("x", "y")
        assert len(rel) == 2

    def test_scan_arity_checked(self, db):
        with pytest.raises(SchemaError):
            evaluate(scan("A", "x"), db)

    def test_literal(self, db):
        rel = Relation(("k",), [("v",)])
        assert evaluate(Literal(rel), db) == rel

    def test_selection(self, db):
        rel = evaluate(select(scan("A", "x", "y"), x="a"), db)
        assert rel.rows == {("a", "b")}

    def test_projection(self, db):
        rel = evaluate(Projection(scan("A", "x", "y"), ("y",)), db)
        assert rel.rows == {("b",), ("c",)}

    def test_renaming(self, db):
        rel = evaluate(Renaming(scan("A", "x", "y"), (("y", "z"),)), db)
        assert rel.columns == ("x", "z")

    def test_join_chains_hops(self, db):
        two_hop = Join(scan("A", "x", "y"), scan("A", "y", "z"))
        assert evaluate(two_hop, db).rows == {("a", "b", "c")}

    def test_cartesian_product(self, db):
        product = CartesianProduct(scan("A", "x", "y"), scan("E", "u", "v"))
        assert len(evaluate(product, db)) == 2

    def test_union_and_difference(self, db):
        both = UnionOp(scan("A", "x", "y"), scan("E", "x", "y"))
        assert len(evaluate(both, db)) == 3
        minus = DifferenceOp(both, scan("E", "x", "y"))
        assert evaluate(minus, db).rows == db.rows("A")

    def test_semijoin(self, db):
        gated = Semijoin(scan("A", "x", "y"), scan("E", "y", "w"))
        assert evaluate(gated, db).rows == {("b", "c")}

    def test_unknown_node_rejected(self, db):
        with pytest.raises(TypeError):
            evaluate(object(), db)  # type: ignore[arg-type]


class TestCompiledFormulaAsAlgebra:
    """Run the transitive-closure compiled formula σA^k ⋈ E as an
    explicit algebra expression and check it against the engine."""

    def test_sigma_a_k_joined_with_exit(self):
        db = Database.from_dict({
            "A": [("n0", "n1"), ("n1", "n2"), ("n2", "n3")],
            "E": [(f"n{i}", f"n{i}") for i in range(4)],
        })
        # σ_{x=n0} A^k joined with E over three iterations
        frontier = evaluate(
            Projection(select(scan("A", "x", "y"), x="n0"), ("y",)), db)
        answers = {("n0", "n0")}
        for _ in range(3):
            answers |= {("n0", row[0]) for row in frontier}
            step = Join(Renaming(Literal(frontier), (("y", "x"),)),
                        scan("A", "x", "y"))
            frontier = evaluate(Projection(step, ("y",)), db)

        from repro.datalog.parser import parse_system
        from repro.engine import Query, SemiNaiveEngine
        system = parse_system(
            "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
        engine_answers = SemiNaiveEngine().evaluate(
            system, db, Query.parse("P(n0, Y)"))
        assert frozenset(answers) == engine_answers


class TestEqualColumnsAndExtend:
    def test_equal_columns_keeps_diagonal(self, db):
        from repro.ra import EqualColumns
        db2 = Database.from_dict({"R": [("a", "a"), ("a", "b")]})
        rel = evaluate(EqualColumns(Scan("R", ("x", "y")), "x", "y"),
                       db2)
        assert rel.rows == {("a", "a")}

    def test_equal_columns_unknown_column(self, db):
        from repro.ra import EqualColumns
        from repro.datalog.errors import SchemaError
        with pytest.raises(SchemaError):
            evaluate(EqualColumns(Scan("A", ("x", "y")), "x", "zz"), db)

    def test_extend_duplicates_column(self, db):
        from repro.ra import Extend
        rel = evaluate(Extend(Scan("A", ("x", "y")), "x", "x2"), db)
        assert rel.columns == ("x", "y", "x2")
        assert all(row[0] == row[2] for row in rel.rows)

    def test_extend_then_project_swaps(self, db):
        from repro.ra import Extend
        rel = evaluate(
            Projection(Extend(Scan("A", ("x", "y")), "x", "x2"),
                       ("x2", "y")), db)
        assert rel.columns == ("x2", "y")
        assert len(rel) == 2
