"""Unit tests for connected components of the I-graph."""

from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.graphs.components import (component_subgraph, components,
                                     nontrivial_components,
                                     trivial_components)
from repro.graphs.igraph import build_igraph

V = Variable


def graph_of(text: str):
    return build_igraph(parse_rule(text))


class TestComponents:
    def test_s3_has_three_components(self):
        graph = graph_of(
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).")
        assert len(components(graph)) == 3

    def test_s1a_splits_cycle_and_self_loop(self):
        graph = graph_of("P(x, y) :- A(x, z), P(z, y).")
        parts = {frozenset(v.name for v in c) for c in components(graph)}
        assert parts == {frozenset({"x", "z"}), frozenset({"y"})}

    def test_directed_edges_connect(self):
        graph = graph_of("P(x, y) :- B(y), C(x, y1), P(x1, y1).")
        # x →x1 and x—y1 and y→y1 all hang together
        assert len(components(graph)) == 1

    def test_component_partition_is_exhaustive_and_disjoint(self):
        graph = graph_of(
            "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), "
            "P(u, v, w).")
        parts = components(graph)
        union = set()
        for part in parts:
            assert not (union & part)
            union |= part
        assert union == set(graph.vertices)


class TestSubgraphs:
    def test_component_subgraph_keeps_internal_edges_only(self):
        graph = graph_of(
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).")
        target = next(c for c in components(graph) if V("x") in c)
        sub = component_subgraph(graph, target)
        assert {e.label for e in sub.undirected} == {"A"}
        assert len(sub.directed) == 1

    def test_nontrivial_vs_trivial_split(self):
        # D(a, b) over fresh variables is a trivial component
        graph = graph_of("P(x, y) :- A(x, z), D(a, b), P(z, y).")
        nontrivial = nontrivial_components(graph)
        trivial = trivial_components(graph)
        assert len(nontrivial) == 2   # the A-cycle and the y self-loop
        assert len(trivial) == 1
        assert {v.name for v in trivial[0].vertices} == {"a", "b"}

    def test_all_components_of_recursive_rule_nontrivial_when_connected(
            self):
        graph = graph_of(
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).")
        assert len(nontrivial_components(graph)) == 1
        assert not trivial_components(graph)
