"""Unit tests for the set-at-a-time join kernel and its plan layer."""

import pytest

from repro.datalog.parser import parse_atom, parse_system
from repro.datalog.terms import Variable
from repro.engine import (EvaluationStats, NaiveEngine, SemiNaiveEngine,
                          apply_rule, compile_plan, execute_plan,
                          solve_project)
from repro.engine.plan import entry_layout
from repro.ra import Database
from repro.workloads import chain

V = Variable


def atoms(*texts):
    return tuple(parse_atom(t) for t in texts)


class TestPlanCompilation:
    def test_tc_rule_plan_shape(self):
        """P(x,y) :- A(x,z), P(z,y): one step keyed on A's z column."""
        db = Database.from_dict({"A": [("a", "b")]})
        plan = compile_plan(atoms("A(x, z)"),
                            atoms("P(z, y)")[0].args,
                            atoms("P(x, y)")[0].args, db)
        assert plan.entry_vars == (V("z"), V("y"))
        (step,) = plan.steps
        assert step.predicate == "A"
        assert step.key_positions == (1,)
        assert step.key_sources == ((False, 0),)
        assert step.new_positions == (0,)
        # head (x, y) projects the new slot 2 and entry slot 1
        assert plan.out_sources == ((False, 2), (False, 1))

    def test_most_bound_atom_ordered_first(self):
        """With z bound at entry, A(x,z) precedes B(x,w)."""
        db = Database.from_dict({"A": [("a", "b")], "B": [("a", "w")]})
        plan = compile_plan(atoms("B(x, w)", "A(x, z)"),
                            (V("z"),), (V("w"),), db)
        assert [s.predicate for s in plan.steps] == ["A", "B"]

    def test_constants_join_the_key(self):
        db = Database.from_dict({"A": [("a", "b"), ("c", "d")]})
        plan = compile_plan(atoms("A('a', y)"), (), (V("y"),), db)
        (step,) = plan.steps
        assert step.key_positions == (0,)
        # constants are compiled in storage space: the plan carries
        # the interned code, not the raw value
        assert step.key_sources == ((True, db.symbols.lookup("a")),)

    def test_constants_stay_raw_without_interning(self):
        db = Database.from_dict({"A": [("a", "b"), ("c", "d")]},
                                intern=False)
        plan = compile_plan(atoms("A('a', y)"), (), (V("y"),), db)
        (step,) = plan.steps
        assert step.key_sources == ((True, "a"),)

    def test_repeated_free_variable_becomes_check(self):
        db = Database.from_dict({"A": [("a", "a"), ("a", "b")]})
        plan = compile_plan(atoms("A(x, x)"), (), (V("x"),), db)
        (step,) = plan.steps
        assert step.same_free == ((0, 1),)
        assert step.new_positions == (0,)

    def test_plan_cache_hits_recorded(self):
        db = Database.from_dict({"A": [("a", "b")]})
        body, entry, out = atoms("A(x, z)"), (V("z"),), (V("x"),)
        first = EvaluationStats()
        compile_plan(body, entry, out, db, first)
        again = EvaluationStats()
        compile_plan(body, entry, out, db, again)
        assert again.plan_cache_hits == 1
        assert again.plan_cache_misses == 0


class TestEntryLayout:
    def test_identity_for_distinct_variables(self):
        layout = entry_layout((V("x"), V("y")))
        assert layout.is_identity
        assert layout.batch([("a", "b")]) == [("a", "b")]

    def test_repeated_variable_filters_rows(self):
        layout = entry_layout((V("x"), V("x")))
        assert layout.batch([("a", "a"), ("a", "b")]) == [("a",)]

    def test_constant_filters_rows(self):
        from repro.datalog.terms import Constant
        layout = entry_layout((Constant("a"), V("y")))
        assert layout.batch([("a", "b"), ("z", "q")]) == [("b",)]


class TestExecuteAgainstSolveProject:
    """execute_plan and solve_project agree binding-for-binding."""

    DB = {
        "A": [("a", "b"), ("b", "c"), ("c", "d"), ("a", "a")],
        "B": [("b", "x1"), ("c", "x2")],
        "N": [("a",)],
    }

    @pytest.mark.parametrize("body,out", [
        (("A(x, y)", "A(y, z)"), ("x", "z")),
        (("A(x, y)", "B(y, w)"), ("x", "w")),
        (("A(x, x)",), ("x",)),
        (("A(x, y)", "A(y, z)", "N(x)"), ("z",)),
    ])
    def test_unbound_agreement(self, body, out):
        db = Database.from_dict(self.DB)
        body_atoms = atoms(*body)
        out_terms = tuple(V(name) for name in out)
        expected = solve_project(db, body_atoms, out_terms)
        plan = compile_plan(body_atoms, (), out_terms, db)
        assert execute_plan(db, plan, [()]) == expected

    def test_batched_entry_agreement(self):
        # intern=False: the hand-written entry rows below are raw
        # values, and apply_rule expects rows in storage space
        db = Database.from_dict(self.DB, intern=False)
        body_atoms = atoms("A(z, w)")
        out_terms = (V("y"), V("w"))
        entry = (V("z"), V("y"))
        rows = [("a", "p"), ("b", "q"), ("zz", "r")]
        expected = set()
        for row in rows:
            expected |= solve_project(
                db, body_atoms, out_terms,
                {V("z"): row[0], V("y"): row[1]})
        assert apply_rule(db, body_atoms, entry, out_terms,
                          rows) == expected

    def test_probe_counts_match_tuple_at_a_time(self, tc_system,
                                                tc_chain_db):
        fast, slow = EvaluationStats(), EvaluationStats()
        SemiNaiveEngine(set_at_a_time=True).evaluate(
            tc_system, tc_chain_db, stats=fast)
        SemiNaiveEngine(set_at_a_time=False).evaluate(
            tc_system, tc_chain_db, stats=slow)
        assert fast.probes == slow.probes
        assert fast.delta_sizes == slow.delta_sizes
        assert fast.batch_sizes and not slow.batch_sizes


class TestEngineFlag:
    def test_seminaive_disciplines_agree(self, tc_system, tc_chain_db):
        fast = SemiNaiveEngine(set_at_a_time=True).evaluate(
            tc_system, tc_chain_db)
        slow = SemiNaiveEngine(set_at_a_time=False).evaluate(
            tc_system, tc_chain_db)
        assert fast == slow

    def test_naive_disciplines_agree(self, tc_system, tc_chain_db):
        fast = NaiveEngine(set_at_a_time=True).evaluate(
            tc_system, tc_chain_db)
        slow = NaiveEngine(set_at_a_time=False).evaluate(
            tc_system, tc_chain_db)
        assert fast == slow

    def test_multi_exit_system(self):
        system = parse_system("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
            P(x, x) :- U(x).
        """)
        db = Database.from_dict({"A": chain(4), "E": [("n4", "n4")],
                                 "U": [("q",)]})
        fast = SemiNaiveEngine(set_at_a_time=True).evaluate(system, db)
        slow = SemiNaiveEngine(set_at_a_time=False).evaluate(system, db)
        assert fast == slow
        assert ("q", "q") in fast


class TestHashTableCache:
    def test_reused_until_relation_changes(self):
        db = Database.from_dict({"A": [("a", "b")]}, intern=False)
        first = db.hash_table("A", (0,))
        assert db.hash_table("A", (0,)) is first
        assert db.hash_builds == 1
        db.add("A", ("c", "d"))
        rebuilt = db.hash_table("A", (0,))
        assert rebuilt is not first
        assert rebuilt["c"] == [("c", "d")]
        assert db.hash_builds == 2

    def test_other_relations_unaffected(self):
        db = Database.from_dict({"A": [("a", "b")], "B": [("x",)]})
        table = db.hash_table("A", (1,))
        db.add("B", ("y",))
        assert db.hash_table("A", (1,)) is table

    def test_key_layouts(self):
        db = Database.from_dict({"T": [("a", "b", "c")]}, intern=False)
        assert db.hash_table("T", ())[()] == [("a", "b", "c")]
        assert db.hash_table("T", (1,))["b"] == [("a", "b", "c")]
        assert db.hash_table("T", (0, 2))[("a", "c")] == [("a", "b", "c")]

    def test_missing_relation_is_empty(self):
        assert Database().hash_table("nope", (0,)) == {}


class TestBulkInvalidation:
    def test_single_version_bump_per_bulk(self):
        db = Database()
        db.bulk("A", [("a", "b"), ("b", "c"), ("c", "d")])
        assert db.version("A") == 1
        db.add("A", ("d", "e"))
        assert db.version("A") == 2

    def test_bulk_invalidates_index_once(self):
        db = Database.from_dict({"A": [("a", "b")]})
        list(db.match("A", ("a", None)))  # build the index
        built = db.index_rebuilds
        db.bulk("A", [(f"n{i}", f"n{i+1}") for i in range(100)])
        # the bulk load dropped the index; one rebuild on next probe
        assert db.index_rebuilds == built
        assert set(db.match("A", ("n5", None))) == {("n5", "n6")}
        assert db.index_rebuilds == built + 1

    def test_bulk_results_visible_to_match(self):
        db = Database.from_dict({"A": [("a", "b")]})
        list(db.match("A", (None, "b")))
        db.bulk("A", [("q", "b")])
        assert set(db.match("A", (None, "b"))) == {("a", "b"), ("q", "b")}


class TestBindUnbindEquivalence:
    """The in-place bind/unbind backtracker matches a copy-based
    reference solver on answer sets (satellite regression guard)."""

    @staticmethod
    def _reference_solve(db, body_atoms, binding=None):
        """The old copy-per-row implementation, kept as the oracle."""
        from repro.datalog.terms import Constant
        from repro.engine.conjunctive import pattern_of

        def extend(atom, row, current):
            new = dict(current)
            for term, value in zip(atom.args, row):
                if isinstance(term, Constant):
                    continue
                seen = new.get(term)
                if seen is None:
                    new[term] = value
                elif seen != value:
                    return None
            return new

        def backtrack(remaining, current):
            if not remaining:
                yield dict(current)
                return
            chosen, *rest = remaining
            for row in db.match(chosen.predicate,
                                pattern_of(chosen, current)):
                extended = extend(chosen, row, current)
                if extended is not None:
                    yield from backtrack(rest, extended)

        yield from backtrack(list(body_atoms), dict(binding or {}))

    @pytest.mark.parametrize("body", [
        ("A(x, y)", "A(y, z)"),
        ("A(x, y)", "B(y, w)", "A(x, x)"),
        ("A(x, x)",),
        ("A(x, y)", "A(y, x)"),
    ])
    def test_same_answer_sets(self, body):
        from repro.engine import solve
        # intern=False: the reference oracle binds raw values while
        # solve binds storage-space codes; raw mode makes them the
        # same space
        db = Database.from_dict({
            "A": [("a", "b"), ("b", "a"), ("a", "a"), ("b", "c")],
            "B": [("b", "x1"), ("a", "x2")],
        }, intern=False)
        body_atoms = atoms(*body)
        got = {tuple(sorted((v.name, val) for v, val in s.items()))
               for s in solve(db, body_atoms)}
        want = {tuple(sorted((v.name, val) for v, val in s.items()))
                for s in self._reference_solve(db, body_atoms)}
        assert got == want
