"""Hypothesis strategies: random linear recursive rules and databases.

The rule generator respects the paper's restrictions by construction
(single linear recursion, no constants, no repeated variables under
the recursive predicate) and repairs range restriction by anchoring
stray head variables in unary predicates — so every generated rule is
a valid input to the classifier and the engines.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.program import RecursionSystem
from repro.datalog.rules import RecursiveRule, Rule
from repro.datalog.terms import Variable

_EDB_PREDICATES = "ABCDEFG"


@st.composite
def linear_rules(draw, max_arity: int = 3,
                 max_edb_atoms: int = 4) -> RecursiveRule:
    """A random valid linear recursive rule."""
    arity = draw(st.integers(1, max_arity))
    head_vars = [Variable(f"x{i}") for i in range(arity)]

    # Recursive body arguments: distinct variables, drawn from unused
    # head variables (building cycles) or fresh ones (building chains).
    body_vars: list[Variable] = []
    used: set[Variable] = set()
    for position in range(arity):
        candidates = [v for v in head_vars if v not in used]
        candidates.append(Variable(f"y{position}"))
        choice = draw(st.sampled_from(candidates))
        used.add(choice)
        body_vars.append(choice)

    all_vars = head_vars + [v for v in body_vars if v not in head_vars]
    atom_count = draw(st.integers(0, max_edb_atoms))
    atoms: list[Atom] = []
    # Predicate names are drawn *with* replacement so the same EDB
    # relation can occur several times in one body (exercising the
    # minimiser and the per-occurrence delta rules); each name keeps a
    # fixed arity so the fact store's arity check stays satisfied.
    arity_of: dict[str, int] = {}
    for _ in range(atom_count):
        name = draw(st.sampled_from(_EDB_PREDICATES[:3]))
        edb_arity = arity_of.setdefault(name,
                                        draw(st.integers(1, 3)))
        args = tuple(draw(st.sampled_from(all_vars))
                     for _ in range(edb_arity))
        atoms.append(Atom(name, args))

    # Repair range restriction: anchor stray head variables.
    covered = set(body_vars)
    for body_atom in atoms:
        covered |= body_atom.variable_set()
    repairs = 0
    for head_var in head_vars:
        if head_var not in covered:
            atoms.append(Atom(f"R{repairs}", (head_var,)))
            repairs += 1

    rule = Rule(Atom("P", tuple(head_vars)),
                tuple(atoms) + (Atom("P", tuple(body_vars)),))
    return RecursiveRule(rule)


@st.composite
def linear_systems(draw, max_arity: int = 3,
                   max_edb_atoms: int = 4) -> RecursionSystem:
    """A random recursion system with the generic exit."""
    return RecursionSystem(draw(linear_rules(max_arity, max_edb_atoms)))


@st.composite
def small_binary_relations(draw, max_nodes: int = 5,
                           max_rows: int = 10) -> list[tuple]:
    """Random rows over a small universe (for RA law checks)."""
    nodes = [f"c{i}" for i in range(draw(st.integers(1, max_nodes)))]
    pair = st.tuples(st.sampled_from(nodes), st.sampled_from(nodes))
    return draw(st.lists(pair, max_size=max_rows))
