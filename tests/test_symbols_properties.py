"""Dictionary-encoding laws: ``intern=True`` ≡ ``intern=False``.

The symbol table is pure representation: every engine must produce
bit-identical answers, per-round trace deltas and work counters
whether the database stores raw value tuples or dense int codes.
Three layers pin this down:

* **table laws** — hypothesis round-trips over :class:`SymbolTable`
  (dense codes, ``decode_rows`` ≡ per-row decode, frozen snapshots);
* **storage laws** — the dense access path and the pickled snapshot
  (int rows must beat string rows);
* **mode parity** — classes A1–C × all six engines, interned and raw
  twins of the same EDB, compared on answers, stats and traces.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.parser import parse_system
from repro.engine import (CompiledEngine, MaterializedRecursion,
                          NaiveEngine, Query, SemiNaiveEngine,
                          ShardedSemiNaiveEngine, TopDownEngine)
from repro.engine.stats import EvaluationStats
from repro.engine.trace import Tracer
from repro.ra import Database
from repro.ra.symbols import SymbolTable
from repro.session import DeductiveDatabase
from repro.workloads import CATALOGUE, chain, random_edb

#: one catalogue representative per paper class A1 … C
CLASS_ENTRIES = {
    "A1": "s2a", "A3": "s4", "A4": "s5", "A5": "s1a",
    "B": "s8", "C": "s9",
}

#: the five evaluate()-shaped engines; the sixth (incremental) has an
#: insertion API and gets its own parity test below
ENGINES = {
    "naive": NaiveEngine,
    "semi-naive": SemiNaiveEngine,
    "compiled": CompiledEngine,
    "top-down": TopDownEngine,
    "sharded": lambda: ShardedSemiNaiveEngine(workers=0),
}

#: hashable constants that cannot collide across types under ``==``
#: (no floats/bools: ``1 == 1.0 == True`` would alias dictionary keys)
_constants = st.one_of(st.text(max_size=8), st.integers())


# -- symbol-table laws --------------------------------------------------


class TestSymbolTableLaws:
    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(_constants, max_size=40))
    def test_codes_are_dense_and_roundtrip(self, values):
        table = SymbolTable()
        codes = [table.encode(v) for v in values]
        # dense: the issued codes are exactly 0 .. len(table)-1
        assert set(codes) == set(range(len(table)))
        # stable: re-encoding returns the same code
        assert [table.encode(v) for v in values] == codes
        # round-trip: decode inverts encode
        assert [table.decode(c) for c in codes] == values
        assert list(table) == [table.decode(c)
                               for c in range(len(table))]

    @settings(max_examples=60, deadline=None)
    @given(rows=st.lists(st.tuples(_constants, _constants),
                         max_size=30))
    def test_decode_rows_equals_per_row_decode(self, rows):
        table = SymbolTable()
        encoded = [table.encode_row(row) for row in rows]
        assert table.decode_rows(encoded) == frozenset(
            table.decode_row(row) for row in encoded)

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(_constants, unique=True, max_size=20),
           probe=_constants)
    def test_frozen_snapshot_laws(self, values, probe):
        table = SymbolTable(values)
        table.freeze()
        assert table.frozen
        # a frozen table still encodes and decodes everything it holds
        for code, value in enumerate(values):
            assert table.encode(value) == code
            assert table.decode(code) == value
        if probe not in table:
            with pytest.raises(KeyError):
                table.encode(probe)
            assert table.lookup(probe) is None
        # the snapshot pickles with codes, values and frozenness intact
        clone = pickle.loads(pickle.dumps(table))
        assert list(clone) == list(table)
        assert clone.frozen
        assert [clone.lookup(v) for v in values] == list(
            range(len(values)))

    def test_duplicate_seed_rejected(self):
        with pytest.raises(ValueError):
            SymbolTable(["a", "b", "a"])


# -- storage laws -------------------------------------------------------


class TestDenseTable:
    def test_buckets_indexed_by_code(self):
        db = Database.from_dict({"A": [("a", "b"), ("a", "c"),
                                       ("b", "c")]})
        table = db.dense_table("A", 0)
        code_a, code_b = db.symbols.lookup("a"), db.symbols.lookup("b")
        assert {tuple(r) for r in table[code_a]} == {
            db.encode_row(("a", "b")), db.encode_row(("a", "c"))}
        assert len(table[code_b]) == 1
        # codes carried by no stored row share the empty bucket, and
        # the table spans every interned code
        empty = [bucket for bucket in table if bucket == ()]
        assert len(table) == len(db.symbols)
        assert empty, "codes not in column 0 must have empty buckets"

    def test_raw_database_has_no_dense_path(self):
        db = Database.from_dict({"A": [("a", "b")]}, intern=False)
        assert db.dense_table("A", 0) is None

    def test_buckets_are_uniformly_tuples(self):
        # regression: dense_table used to mix bucket types — the
        # shared empty bucket was a tuple while populated buckets
        # stayed mutable lists, so consumers branching on type (or
        # aliasing a bucket) saw different behaviour per code
        db = Database.from_dict({"A": [("a", "b"), ("a", "c"),
                                       ("b", "c")]})
        table = db.dense_table("A", 0)
        assert all(type(bucket) is tuple for bucket in table)
        empties = [bucket for bucket in table if not bucket]
        assert empties and all(bucket is empties[0]
                               for bucket in empties)

    def test_csr_matches_dense_column(self):
        db = Database.from_dict({"A": [("a", "b"), ("a", "c"),
                                       ("b", "c")]})
        column = db.dense_column("A", 0, 1)
        csr = db.dense_column_csr("A", 0, 1)
        assert csr is not None
        values, offsets = csr
        assert len(offsets) == len(db.symbols) + 1
        for code in range(len(db.symbols)):
            start, end = offsets[code], offsets[code + 1]
            assert sorted(values[start:end]) == sorted(column[code])
        # version-cached: same object until the relation mutates
        assert db.dense_column_csr("A", 0, 1) is csr
        db.bulk("A", [("c", "d")])
        assert db.dense_column_csr("A", 0, 1) is not csr

    def test_raw_database_has_no_csr(self):
        db = Database.from_dict({"A": [("a", "b")]}, intern=False)
        assert db.dense_column_csr("A", 0, 1) is None

    def test_invalidated_by_mutation(self):
        db = Database.from_dict({"A": [("a", "b")]})
        stale = db.dense_table("A", 0)
        db.bulk("A", [("z", "z")])
        fresh = db.dense_table("A", 0)
        code_z = db.symbols.lookup("z")
        assert fresh is not stale
        # populated buckets come back frozen (tuples) so every view
        # built over the dense table is safely shareable
        assert fresh[code_z] == (db.encode_row(("z", "z")),)


class TestSnapshotSize:
    def test_interned_pickle_is_smaller(self):
        edges = chain(200)
        interned = Database.from_dict({"A": edges})
        raw = Database.from_dict({"A": edges}, intern=False)
        assert interned.rows("A") == raw.rows("A")
        assert len(pickle.dumps(interned)) < len(pickle.dumps(raw))


# -- mode parity: classes A1–C × engines --------------------------------


def _twin_workload(paper_class, seed, tuples):
    system = CATALOGUE[CLASS_ENTRIES[paper_class]].system()
    interned = random_edb(system, nodes=5, tuples_per_relation=tuples,
                          seed=seed)
    raw = interned.decoded()
    assert interned.interned and not raw.interned
    query = Query.all_free(system.predicate, system.dimension)
    return system, interned, raw, query


def _trace_shape(tracer):
    """The mode-independent part of a trace: per-round kinds, delta
    sizes and work counters (timings excluded)."""
    trace = tracer.trace
    return [(s.kind, s.delta_in, s.delta_out, s.probes, s.derived,
             s.hash_builds) for s in trace.rounds]


#: stats fields that depend on how the delta was *partitioned*, not on
#: the logical work done.  The sharded engine splits each delta by the
#: hash of its storage-space rows, and int codes and raw values hash
#: differently — the per-shard split (and with it the number of batch
#: dispatches) legitimately differs while every aggregate work counter
#: (probes, derived, deltas, builds) stays identical.
_PARTITION_FIELDS = frozenset({
    "batch_sizes", "shard_counts", "shard_skew",
    "plan_cache_hits", "plan_cache_misses", "hash_lookups",
})

#: fields naming *which* delta-loop backend ran, not the logical work
#: done: interned databases may take the vectorised kernel while raw
#: ones cannot (it requires dictionary-encoded rows); all other
#: counters stay bit-identical across backends (asserted in
#: tests/test_vector_properties.py)
_BACKEND_FIELDS = frozenset({"backend", "vector_batches",
                             "vector_rows"})


def _comparable_stats(stats, engine):
    shape = dict(vars(stats))
    for field in _BACKEND_FIELDS:
        shape.pop(field, None)
    if engine == "sharded":
        for field in _PARTITION_FIELDS:
            shape.pop(field, None)
    return shape


class TestModeParity:
    @pytest.mark.parametrize("paper_class", sorted(CLASS_ENTRIES))
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 7), tuples=st.integers(4, 10))
    def test_answers_stats_and_traces_identical(self, paper_class,
                                                engine, seed, tuples):
        system, interned, raw, query = _twin_workload(
            paper_class, seed, tuples)
        # warm the process-wide plan cache for both code spaces (the
        # cache key includes the symbol-table token, so each fresh
        # database misses on its first evaluation)
        for db in (interned, raw):
            ENGINES[engine]().evaluate(system, db.copy(), query,
                                       EvaluationStats())
        stats_i, stats_r = EvaluationStats(), EvaluationStats()
        trace_i, trace_r = Tracer(), Tracer()
        answers_i = ENGINES[engine]().evaluate(
            system, interned.copy(), query, stats_i, trace=trace_i)
        answers_r = ENGINES[engine]().evaluate(
            system, raw.copy(), query, stats_r, trace=trace_r)
        assert answers_i == answers_r
        assert (_comparable_stats(stats_i, engine)
                == _comparable_stats(stats_r, engine))
        assert _trace_shape(trace_i) == _trace_shape(trace_r)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 7))
    def test_incremental_maintenance_identical(self, seed):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        base = random_edb(system, nodes=5, tuples_per_relation=6,
                          seed=seed)
        inserts = [("c0", "c3"), ("c9", "c0"), ("c3", "c9")]
        view_i = MaterializedRecursion(system, base)
        view_r = MaterializedRecursion(system, base.decoded())
        assert view_i.rows == view_r.rows
        added_i = view_i.insert_many("A", inserts)
        added_r = view_r.insert_many("A", inserts)
        assert added_i == added_r
        assert view_i.rows == view_r.rows
        assert view_i.stats.delta_sizes == view_r.stats.delta_sizes
        # membership agrees row-by-row, whatever the closure contains
        for row in [("c9", "c0"), ("c0", "c3"), ("c0", "c0")]:
            assert (row in view_i) == (row in view_r)


# -- session-level encoding behaviour -----------------------------------


def _tc_session(intern):
    session = DeductiveDatabase(intern=intern)
    session.load("P(x, y) :- A(x, z), P(z, y).\n"
                 "P(x, y) :- A(x, y).\n")
    session.add_facts("A", [(f"n{i}", f"n{i + 1}") for i in range(5)])
    return session


class TestUnseenConstantShortCircuit:
    @pytest.mark.parametrize("engine",
                             ["naive", "semi-naive", "compiled",
                              "top-down", "sharded"])
    def test_unseen_constant_is_empty_without_fixpoint(self, engine):
        session = _tc_session(intern=True)
        stats = EvaluationStats()
        answers = session.query("P(never_seen, Y)", stats,
                                engine=engine)
        assert answers == frozenset()
        assert stats.answers == 0
        # the fixpoint never ran: no rounds, no probes
        assert stats.rounds == 0 and stats.probes == 0

    def test_raw_session_agrees_on_the_answer(self):
        for intern in (True, False):
            session = _tc_session(intern)
            assert session.query("P(never_seen, Y)") == frozenset()

    def test_seen_constants_still_evaluate(self):
        session = _tc_session(intern=True)
        assert session.query("P(n0, Y)") == frozenset(
            {("n0", f"n{j}") for j in range(1, 6)})


class TestAnswerCache:
    def test_repeat_query_hits_and_counts(self):
        session = _tc_session(intern=True)
        first, second = EvaluationStats(), EvaluationStats()
        answers = session.query("P(X, Y)", first, engine="semi-naive")
        again = session.query("P(X, Y)", second, engine="semi-naive")
        assert answers == again
        assert first.answer_cache_hits == 0
        assert second.answer_cache_hits == 1
        assert second.engine == first.engine
        assert second.answers == len(answers)

    def test_distinct_engines_and_patterns_miss(self):
        session = _tc_session(intern=True)
        session.query("P(X, Y)", engine="semi-naive")
        for follow_up in [("P(X, Y)", "naive"),
                          ("P(n0, Y)", "semi-naive")]:
            stats = EvaluationStats()
            session.query(follow_up[0], stats, engine=follow_up[1])
            assert stats.answer_cache_hits == 0

    def test_fact_mutation_invalidates(self):
        session = _tc_session(intern=True)
        before = session.query("P(n0, Y)")
        session.add_fact("A", "n5", "n6")
        stats = EvaluationStats()
        after = session.query("P(n0, Y)", stats)
        assert stats.answer_cache_hits == 0
        assert after == before | {("n0", "n6")}

    def test_rule_change_invalidates(self):
        session = _tc_session(intern=True)
        session.query("P(X, Y)")
        session.add_rule("Q(x) :- A(x, y).")
        stats = EvaluationStats()
        session.query("P(X, Y)", stats)
        assert stats.answer_cache_hits == 0

    def test_traced_queries_bypass_the_cache(self):
        session = _tc_session(intern=True)
        session.query("P(X, Y)", engine="semi-naive")
        stats = EvaluationStats()
        tracer = Tracer()
        session.query("P(X, Y)", stats, engine="semi-naive",
                      trace=tracer)
        assert stats.answer_cache_hits == 0
        assert tracer.trace is not None and tracer.trace.rounds
