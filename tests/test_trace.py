"""Unit tests for the execution-tracing layer (EXPLAIN ANALYZE)."""

import json

import pytest

from repro.datalog.parser import parse_system
from repro.engine import (MaterializedRecursion, SemiNaiveEngine,
                          ShardedSemiNaiveEngine, TopDownEngine)
from repro.engine.stats import EvaluationStats
from repro.engine.trace import (TRACE_SCHEMA_VERSION, Tracer,
                                validate_trace_dict)
from repro.ra import Database
from repro.session import DeductiveDatabase
from repro.workloads import chain

GENEALOGY = """
    anc(x, y) :- parent(x, z), anc(z, y).
    anc(x, y) :- parent(x, y).
    parent(ann, bea).  parent(bea, cal).  parent(cal, dee).
"""


@pytest.fixture
def ddb():
    session = DeductiveDatabase()
    session.load(GENEALOGY)
    return session


class TestTracerLifecycle:
    def test_round_counters_are_stat_deltas(self):
        stats = EvaluationStats()
        tracer = Tracer()
        tracer.begin("test", predicate="P", query="P(_)", workers=2,
                     note="hello")
        stats.probes, stats.hash_builds, stats.hash_lookups = 5, 1, 1
        tracer.begin_round("delta", 3, stats)
        stats.probes += 7
        stats.derived += 4
        stats.hash_builds += 1
        stats.hash_lookups += 3
        tracer.end_round(2, stats, depth=1)
        trace = tracer.finish(2, stats)
        assert trace.engine == "test"
        assert trace.workers == 2
        assert trace.meta == {"note": "hello"}
        (span,) = trace.rounds
        assert span.kind == "delta"
        assert span.delta_in == 3 and span.delta_out == 2
        assert span.probes == 7 and span.derived == 4
        assert span.hash_builds == 1
        assert span.hash_reuses == 2   # 3 lookups - 1 build
        assert span.fan_out == pytest.approx(4 / 3)
        assert span.detail == {"depth": 1}
        assert trace.delta_total == 2

    def test_finish_closes_unterminated_round(self):
        tracer = Tracer()
        tracer.begin("test")
        tracer.begin_round("delta", 1)
        trace = tracer.finish(0)
        assert len(trace.rounds) == 1
        assert trace.rounds[0].delta_out == 0

    def test_rule_subspans(self):
        stats = EvaluationStats()
        tracer = Tracer()
        tracer.begin("test")
        tracer.begin_round("exit", 0, stats)
        tracer.begin_rule("exit[0]: r", stats)
        stats.probes += 2
        stats.derived += 2
        tracer.end_rule(stats)
        tracer.end_round(2, stats)
        trace = tracer.finish(2, stats)
        (rule,) = trace.rounds[0].rules
        assert rule.label == "exit[0]: r"
        assert rule.probes == 2 and rule.derived == 2

    def test_events_attach_to_round_or_trace(self):
        tracer = Tracer()
        tracer.begin("test")
        tracer.event("outside", detail=1)
        tracer.begin_round("delta", 1)
        tracer.event("inside")
        tracer.shards([3, 2], [0.1, 0.2])
        tracer.end_round(1)
        trace = tracer.finish(1)
        assert trace.events == [{"name": "outside", "detail": 1}]
        assert trace.rounds[0].events == [{"name": "inside"}]
        assert trace.rounds[0].shard_sizes == [3, 2]
        assert trace.rounds[0].shard_wall_s == [0.1, 0.2]

    def test_begin_resets_for_reuse(self):
        tracer = Tracer()
        tracer.begin("one")
        tracer.begin_round("delta", 1)
        tracer.end_round(1)
        tracer.finish(1)
        tracer.begin("two")
        trace = tracer.finish(0)
        assert trace.engine == "two"
        assert trace.rounds == []


class TestSchema:
    def test_round_trips_through_json(self, ddb):
        tracer = Tracer()
        ddb.query("anc(X, Y)", engine="semi-naive", trace=tracer)
        document = json.loads(tracer.trace.to_json())
        validate_trace_dict(document)
        assert document["version"] == TRACE_SCHEMA_VERSION

    def test_wrong_version_rejected(self, ddb):
        tracer = Tracer()
        ddb.query("anc(X, Y)", engine="semi-naive", trace=tracer)
        document = tracer.trace.to_dict()
        document["version"] = 99
        with pytest.raises(ValueError, match="version"):
            validate_trace_dict(document)

    def test_missing_and_unknown_fields_rejected(self, ddb):
        tracer = Tracer()
        ddb.query("anc(X, Y)", engine="semi-naive", trace=tracer)
        document = tracer.trace.to_dict()
        document.pop("answers")
        with pytest.raises(ValueError, match="missing"):
            validate_trace_dict(document)
        document = tracer.trace.to_dict()
        document["surprise"] = 1
        with pytest.raises(ValueError, match="unknown"):
            validate_trace_dict(document)
        document = tracer.trace.to_dict()
        document["rounds"][0]["events"] = [{"no_name": True}]
        with pytest.raises(ValueError, match="event"):
            validate_trace_dict(document)


class TestRender:
    def test_render_mentions_engine_rounds_and_rules(self, ddb):
        text = ddb.explain_analyze("anc(ann, Y)", engine="semi-naive")
        assert "engine=semi-naive" in text
        assert "exit[0]" in text
        assert "delta[1]" in text
        assert "fan-out=" in text
        assert "hash=" in text

    def test_compiled_header_has_plan_and_observations(self, ddb):
        text = ddb.explain_analyze("anc(ann, Y)")
        assert "strategy:" in text        # the compiled formula...
        assert "engine=compiled" in text  # ...then the observed trace
        assert "answers=3" in text


class TestEngineTraces:
    @pytest.mark.parametrize("engine", ["compiled", "semi-naive",
                                        "naive", "top-down", "sharded"])
    def test_every_engine_emits_a_valid_trace(self, ddb, engine):
        tracer = Tracer()
        answers = ddb.query("anc(X, Y)", engine=engine, trace=tracer)
        assert tracer.trace is not None
        validate_trace_dict(tracer.trace.to_dict())
        assert tracer.trace.engine == ddb.ENGINES[engine].name
        assert tracer.trace.answers == len(answers) == 6

    def test_trace_does_not_change_answers(self, ddb):
        plain = ddb.query("anc(X, Y)", engine="semi-naive")
        traced = ddb.query("anc(X, Y)", engine="semi-naive",
                           trace=Tracer())
        assert plain == traced

    def test_topdown_trace_has_subgoals(self, ddb):
        tracer = Tracer()
        ddb.query("anc(ann, Y)", engine="top-down", trace=tracer)
        kinds = {span.kind for span in tracer.trace.rounds}
        assert kinds == {"subgoal"}
        assert any("anc" in span.detail.get("subgoal", "")
                   for span in tracer.trace.rounds)

    def test_incremental_trace(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        db = Database.from_dict({"A": chain(3),
                                 "P__exit": [("n3", "n3")]})
        view = MaterializedRecursion(system, db)
        tracer = Tracer()
        added = view.insert("A", ("n4", "n0"), trace=tracer)
        validate_trace_dict(tracer.trace.to_dict())
        assert tracer.trace.engine == "incremental"
        assert tracer.trace.rounds[0].kind == "seed"
        assert tracer.trace.delta_total == len(added) > 0

    def test_incremental_duplicate_insert_traces_zero(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        db = Database.from_dict({"A": chain(3),
                                 "P__exit": [("n3", "n3")]})
        view = MaterializedRecursion(system, db)
        tracer = Tracer()
        assert view.insert("A", ("n1", "n2"), trace=tracer) == frozenset()
        assert tracer.trace.answers == 0


class TestShardedTraces:
    def test_inprocess_rounds_record_shard_sizes(self, tc_system,
                                                 tc_chain_db):
        tracer = Tracer()
        ShardedSemiNaiveEngine(workers=0).evaluate(
            tc_system, tc_chain_db, trace=tracer)
        parallel = [span for span in tracer.trace.rounds
                    if span.shard_sizes is not None]
        assert parallel
        for span in parallel:
            assert sum(span.shard_sizes) == span.delta_in
            assert len(span.shard_wall_s) == len(span.shard_sizes)
        validate_trace_dict(tracer.trace.to_dict())

    def test_small_delta_records_sequential_event(self, tc_system,
                                                  tc_chain_db):
        tracer = Tracer()
        ShardedSemiNaiveEngine(workers=2).evaluate(  # default threshold
            tc_system, tc_chain_db, trace=tracer)
        events = [event for span in tracer.trace.rounds
                  for event in span.events]
        assert any(event["name"] == "sequential_round"
                   for event in events)

    def test_pool_unavailable_records_fallback_event(
            self, tc_system, tc_chain_db, monkeypatch):
        monkeypatch.setattr(ShardedSemiNaiveEngine, "_ensure_pool",
                            lambda self: None)
        tracer = Tracer()
        stats = EvaluationStats()
        answers = ShardedSemiNaiveEngine(
            workers=2, min_parallel_rows=1).evaluate(
            tc_system, tc_chain_db, stats=stats, trace=tracer)
        assert answers == SemiNaiveEngine().evaluate(tc_system,
                                                     tc_chain_db)
        events = [event for span in tracer.trace.rounds
                  for event in span.events]
        fallbacks = [event for event in events
                     if event["name"] == "pool_fallback"]
        assert len(fallbacks) == stats.pool_fallbacks > 0
        assert fallbacks[0]["reason"] == "pool_unavailable"

    def test_pool_death_records_dispatch_error(self, tc_system,
                                               tc_chain_db):
        class BrokenPool:
            def map(self, fn, items):
                raise RuntimeError("worker died")

            def terminate(self):
                pass

            def join(self):
                pass

        engine = ShardedSemiNaiveEngine(workers=2, min_parallel_rows=1)
        engine._ensure_pool = lambda: engine._pool
        original_begin = engine._begin_fixpoint

        def begin(system, database, run_stats):
            original_begin(system, database, run_stats)
            engine._pool = BrokenPool()

        engine._begin_fixpoint = begin
        tracer = Tracer()
        engine.evaluate(tc_system, tc_chain_db, trace=tracer)
        events = [event for span in tracer.trace.rounds
                  for event in span.events]
        assert {"name": "pool_fallback",
                "reason": "dispatch_error"} in events


class TestTopDownEngineDirect:
    def test_bound_query_traces_root_growth(self, tc_system,
                                            tc_chain_db):
        from repro.engine.query import Query
        tracer = Tracer()
        answers = TopDownEngine().evaluate(
            tc_system, tc_chain_db, Query.parse("P(n0, Y)"),
            trace=tracer)
        assert tracer.trace.delta_total == len(answers)


class TestPassiveTracer:
    """``Tracer(passive=True)`` observes the production path without
    steering it: the answer cache and the unseen-constant shortcut
    stay enabled and get recorded instead of bypassed."""

    def test_active_tracer_bypasses_answer_cache(self, ddb):
        ddb.query("anc(ann, Y)")  # populate the cache
        tracer = Tracer()
        ddb.query("anc(ann, Y)", trace=tracer)
        assert not tracer.trace.meta.get("cache_hit")
        assert all(span.kind != "cache"
                   for span in tracer.trace.rounds)

    def test_passive_tracer_records_the_cache_hit(self, ddb):
        first = ddb.query("anc(ann, Y)")
        tracer = Tracer(passive=True)
        again = ddb.query("anc(ann, Y)", trace=tracer)
        assert again == first
        assert tracer.trace.meta == {"cache_hit": True}
        (span,) = tracer.trace.rounds
        assert span.kind == "cache"
        assert tracer.trace.answers == 3
        validate_trace_dict(tracer.trace.to_dict())

    def test_passive_tracer_records_unseen_constant(self):
        session = DeductiveDatabase(intern=True)
        session.load(GENEALOGY)
        tracer = Tracer(passive=True)
        answers = session.query("anc(zoe, Y)", trace=tracer)
        assert answers == frozenset()
        assert tracer.trace.meta == {"unseen_constant": True}
        assert tracer.trace.rounds == []
        validate_trace_dict(tracer.trace.to_dict())

    def test_query_id_threads_into_the_log(self):
        import io

        from repro.logutil import QueryLogger
        session = DeductiveDatabase(
            query_log=QueryLogger(io.StringIO()))
        session.load(GENEALOGY)
        session.query("anc(ann, Y)", query_id="given-1")
        session.query("anc(bea, Y)")
        lines = [json.loads(line) for line in
                 session.query_log.stream.getvalue().splitlines()]
        assert lines[0]["query_id"] == "given-1"
        assert lines[1]["query_id"]  # auto-generated, non-empty
        assert lines[1]["query_id"] != "given-1"
