"""Tests for the DeductiveDatabase session facade."""

import pytest

from repro.datalog.errors import (EvaluationError, RuleValidationError)
from repro.engine import EvaluationStats, Query, SemiNaiveEngine
from repro.session import DeductiveDatabase

GENEALOGY = """
    parent(ann, bea).  parent(bea, cal).  parent(cal, dee).
    female(ann). female(cal).
    mother(x, y) :- parent(x, y), female(x).
    anc(x, y) :- parent(x, z), anc(z, y).
    anc(x, y) :- parent(x, y).
    matriline(x, y) :- mother(x, z), matriline(z, y).
    matriline(x, y) :- mother(x, y).
"""


@pytest.fixture
def ddb():
    session = DeductiveDatabase()
    session.load(GENEALOGY)
    return session


class TestLoading:
    def test_rules_and_facts_split(self, ddb):
        assert len(ddb.program.rules) == 5
        assert ddb.idb_predicates == {"mother", "anc", "matriline"}

    def test_add_fact_and_rule_incrementally(self):
        session = DeductiveDatabase()
        session.add_rule("p(x, y) :- e(x, y).")
        session.add_fact("e", "a", "b")
        assert session.query("p(X, Y)") == {("a", "b")}

    def test_add_facts_bulk(self):
        session = DeductiveDatabase()
        session.add_facts("e", [("a", "b"), ("b", "c")])
        assert session.query(Query.parse("e(X, Y)")) == {
            ("a", "b"), ("b", "c")}

    def test_non_ground_fact_rejected(self):
        """Regression: a fact atom carrying a variable used to be
        silently truncated to the prefix of its constant arguments."""
        from repro.datalog.atoms import Atom
        from repro.datalog.terms import Constant, Variable
        session = DeductiveDatabase()
        with pytest.raises(RuleValidationError, match="not ground"):
            session._add_fact_atom(
                Atom("parent", (Variable("X"), Constant("bea"))))
        # nothing was half-loaded
        assert session._edb.total_facts() == 0


class TestStructure:
    def test_system_for_recursive_predicate(self, ddb):
        system = ddb.system_for("anc")
        assert system is not None
        assert system.predicate == "anc"
        assert len(system.exits) == 1

    def test_system_for_view_is_none(self, ddb):
        assert ddb.system_for("mother") is None

    def test_classification_cached(self, ddb):
        first = ddb.classification("anc")
        second = ddb.classification("anc")
        assert first is second
        assert first.is_strongly_stable

    def test_classification_of_view_rejected(self, ddb):
        with pytest.raises(EvaluationError):
            ddb.classification("mother")

    def test_mutual_recursion_rejected(self):
        session = DeductiveDatabase()
        session.load("""
            p(x) :- q(x).
            q(x) :- p(x).
        """)
        with pytest.raises(RuleValidationError, match="mutually"):
            session.materialise()

    def test_recursive_without_exit_rejected(self):
        session = DeductiveDatabase()
        session.add_rule("p(x, y) :- e(x, z), p(z, y).")
        with pytest.raises(RuleValidationError, match="no exit"):
            session.query("p(a, Y)")


class TestQuerying:
    def test_edb_query(self, ddb):
        assert ddb.query("parent(ann, Y)") == {("ann", "bea")}

    def test_view_query(self, ddb):
        assert ddb.query("mother(X, Y)") == {("ann", "bea"),
                                             ("cal", "dee")}

    def test_recursion_over_base(self, ddb):
        assert sorted(ddb.query("anc(ann, Y)")) == [
            ("ann", "bea"), ("ann", "cal"), ("ann", "dee")]

    def test_recursion_over_view(self, ddb):
        """matriline recurses through the *mother* view — stratified
        evaluation materialises the view first."""
        assert ddb.query("matriline(ann, Y)") == {("ann", "bea")}
        assert ddb.query("matriline(cal, Y)") == {("cal", "dee")}

    def test_unknown_predicate_rejected(self, ddb):
        """No rule and no facts mention the predicate: a clear error,
        not a silently empty result (regression: used to return
        ``frozenset()``)."""
        with pytest.raises(EvaluationError, match="unknown predicate"):
            ddb.query("nothing(X)")

    def test_arity_mismatch_rejected(self, ddb):
        with pytest.raises(EvaluationError, match="arity"):
            ddb.query("anc(A, B, C)")
        with pytest.raises(EvaluationError, match="arity"):
            ddb.query("parent(A, B, C)")

    def test_stats_filled(self, ddb):
        stats = EvaluationStats()
        ddb.query("anc(ann, Y)", stats=stats)
        assert stats.answers == 3
        assert stats.probes > 0

    def test_stats_filled_on_view_path(self, ddb):
        """Regression: the non-recursive-view path used to leave the
        caller's stats object untouched."""
        stats = EvaluationStats()
        answers = ddb.query("mother(X, Y)", stats=stats)
        assert stats.engine == "view"
        assert stats.answers == len(answers) == 2

    def test_stats_filled_on_edb_path(self, ddb):
        stats = EvaluationStats()
        answers = ddb.query("parent(ann, Y)", stats=stats)
        assert stats.engine == "edb"
        assert stats.answers == len(answers) == 1

    def test_matches_plain_engine(self, ddb):
        answers = ddb.query("anc(X, Y)")
        system = ddb.system_for("anc")
        direct = SemiNaiveEngine().evaluate(system, ddb.materialise())
        assert answers == direct


class TestPlanCache:
    def test_same_adornment_reuses_plan(self, ddb):
        ddb.query("anc(ann, Y)")
        first = ddb._plan_cache[("anc", frozenset({0}))]
        ddb.query("anc(bea, Y)")   # same form, different constant
        assert ddb._plan_cache[("anc", frozenset({0}))] is first

    def test_new_rule_invalidates(self, ddb):
        ddb.query("anc(ann, Y)")
        assert ddb._plan_cache
        ddb.add_rule("other(x, y) :- parent(x, y).")
        assert not ddb._plan_cache

    def test_new_fact_keeps_plans_but_rematerialises(self, ddb):
        ddb.query("matriline(ann, Y)")
        before = ddb.query("anc(ann, Y)")
        ddb.add_fact("parent", "dee", "eve")
        after = ddb.query("anc(ann, Y)")
        assert ("ann", "eve") in after
        assert len(after) == len(before) + 1


class TestExplain:
    def test_explain_recursive(self, ddb):
        text = ddb.explain("anc(ann, Y)")
        assert "strategy:   stable" in text
        assert "σparent^k" in text

    def test_explain_view(self, ddb):
        assert "not recursive" in ddb.explain("mother(X, Y)")


class TestUnindexedAblation:
    def test_unindexed_session_gives_same_answers(self):
        fast = DeductiveDatabase(indexed=True)
        slow = DeductiveDatabase(indexed=False)
        for session in (fast, slow):
            session.load(GENEALOGY)
        assert fast.query("anc(ann, Y)") == slow.query("anc(ann, Y)")


class TestEngineParameter:
    @pytest.mark.parametrize("engine", ["compiled", "semi-naive",
                                        "naive", "top-down"])
    def test_every_engine_choice_agrees(self, ddb, engine):
        answers = ddb.query("anc(ann, Y)", engine=engine)
        assert answers == ddb.query("anc(ann, Y)")

    def test_unknown_engine_raises(self, ddb):
        """Regression: an unknown engine name used to surface as a raw
        ``KeyError`` from the engine-registry lookup."""
        with pytest.raises(EvaluationError, match="unknown engine"):
            ddb.query("anc(ann, Y)", engine="quantum")

    def test_sharded_engine_accepts_workers(self, ddb):
        answers = ddb.query("anc(ann, Y)", engine="sharded", workers=0)
        assert answers == ddb.query("anc(ann, Y)")

    def test_workers_upgrade_shardable_engines(self, ddb):
        for engine in ("compiled", "semi-naive"):
            stats = EvaluationStats()
            answers = ddb.query("anc(ann, Y)", engine=engine,
                                workers=0, stats=stats)
            assert answers == ddb.query("anc(ann, Y)")
            assert stats.engine == "sharded"

    @pytest.mark.parametrize("engine", ["naive", "top-down"])
    def test_workers_with_unshardable_engine_rejected(self, ddb,
                                                      engine):
        """Regression: ``workers=`` used to be silently ignored when an
        explicit non-sharded engine was requested."""
        with pytest.raises(ValueError, match="workers="):
            ddb.query("anc(ann, Y)", engine=engine, workers=4)


class TestProve:
    def test_derivations_for_answers(self, ddb):
        derivations = ddb.prove("anc(ann, Y)")
        assert len(derivations) == 3
        rendered = derivations[0].render()
        assert "anc(ann, bea)" in rendered

    def test_limit(self, ddb):
        assert len(ddb.prove("anc(ann, Y)", limit=1)) == 1

    def test_prove_through_views(self, ddb):
        """Provenance for a recursion over a materialised view shows
        the view's tuples as EDB facts of that stratum."""
        derivations = ddb.prove("matriline(ann, Y)")
        assert len(derivations) == 1
        assert "mother(ann, bea)" in derivations[0].render()

    def test_prove_view_rejected(self, ddb):
        from repro.datalog.errors import EvaluationError
        with pytest.raises(EvaluationError):
            ddb.prove("mother(X, Y)")
