"""White-box tests of the iterative plan factoring (general_plan)."""

from repro.core.bindings import adornment_from_string, binding_sequence
from repro.core.compile import general_plan
from repro.core.plans import render
from repro.datalog.parser import parse_system
from repro.workloads import CATALOGUE


def plan_text(name_or_system, form: str) -> str:
    system = (CATALOGUE[name_or_system].system()
              if isinstance(name_or_system, str)
              else name_or_system)
    adornment = adornment_from_string(form)
    sequence = binding_sequence(system.recursive, adornment)
    return render(general_plan(system, adornment, sequence))


class TestLevelUniformFactoring:
    """H1: per-level multisets agree → one level is the block."""

    def test_s11_down_chain(self):
        text = plan_text("s11", "dv")
        assert "σA-C-B-[{A, B}-C]^k-E" in text

    def test_s12_both_sides(self):
        text = plan_text("s12", "dvv")
        assert "[{A, B}-C]^k" in text       # down block
        assert "E-D^k-D" in text            # up block + shallow D


class TestSequenceAlignmentFactoring:
    """H2: atoms migrate between sides (class C) → align sequences."""

    def test_s9_bound_first_position(self):
        text = plan_text("s9", "dvv")
        assert "(σA) X" in text             # disconnected answer parts
        assert "^k" in text

    def test_s9_bound_last_position(self):
        text = plan_text("s9", "vvd")
        assert "∃(" in text                 # all-exists gate
        assert text.endswith("-A]")         # answers from A alone


class TestEarlySteps:
    """Expansions 1..period are listed concretely, like the paper's
    s11 presentation (σE, σA-C-B-E, ∪k …)."""

    def test_first_expansion_step_present(self):
        text = plan_text("s11", "dv")
        steps = text.split(",  ")
        assert steps[0] == "σE"
        assert steps[1] == "σA-C-B-E"
        assert steps[2].startswith("∪k≥1")

    def test_period_one_means_one_early_step(self):
        text = plan_text("s9", "dvv")
        assert text.count(",  ") == 2  # σE, early, union


class TestPeriodTwoFormulas:
    def test_two_periodic_binding_sequence(self):
        """A permutational swap coupled with a chain gives the binding
        a period of 2; the plan still renders."""
        system = parse_system(
            "P(x, y, z) :- A(x, t), P(t, z, y).")
        sequence = binding_sequence(system.recursive,
                                    adornment_from_string("vdv"))
        assert sequence.period == 2
        text = plan_text(system, "vdv")
        assert text.startswith("σE")
        assert "∪k≥1" in text
        # two early steps: expansions 1 and 2
        assert text.count(",  ") == 3


class TestDegenerateBodies:
    def test_pure_permutational_iterative_fallback(self):
        """A dependent permutational formula (class E, UNKNOWN
        boundedness) goes through the general plan with no EDB atoms
        except the chord."""
        system = parse_system("P(x, y) :- A(x, y), P(y, x).")
        text = plan_text(system, "dv")
        assert "E" in text and "A" in text

    def test_group_without_answers_wrapped_in_exists(self):
        system = CATALOGUE["s9"].system()
        text = plan_text(system, "vvd")
        assert text.count("∃(") >= 1
