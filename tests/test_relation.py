"""Unit tests for the Relation class and its algebra."""

import pytest

from repro.datalog.errors import SchemaError
from repro.ra.relation import Relation, relation_from_pairs


@pytest.fixture
def edges():
    return Relation(("src", "dst"), [("a", "b"), ("b", "c"), ("a", "c")])


class TestConstruction:
    def test_rows_are_frozenset(self, edges):
        assert isinstance(edges.rows, frozenset)
        assert len(edges) == 3

    def test_duplicate_rows_collapse(self):
        rel = Relation(("x",), [("a",), ("a",)])
        assert len(rel) == 1

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("x", "y"), [("a",)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("x", "x"), [])

    def test_equality(self, edges):
        same = Relation(("src", "dst"),
                        [("b", "c"), ("a", "b"), ("a", "c")])
        assert edges == same
        assert hash(edges) == hash(same)


class TestUnaryOps:
    def test_select(self, edges):
        assert edges.select(src="a").rows == {("a", "b"), ("a", "c")}
        assert edges.select(src="a", dst="c").rows == {("a", "c")}

    def test_select_unknown_column(self, edges):
        with pytest.raises(SchemaError, match="no column"):
            edges.select(nope="a")

    def test_where(self, edges):
        result = edges.where(lambda row: row[0] == row[1])
        assert result.is_empty

    def test_project(self, edges):
        assert edges.project(("dst",)).rows == {("b",), ("c",)}

    def test_project_reorders(self, edges):
        swapped = edges.project(("dst", "src"))
        assert ("b", "a") in swapped

    def test_rename(self, edges):
        renamed = edges.rename({"src": "from"})
        assert renamed.columns == ("from", "dst")
        assert renamed.rows == edges.rows


class TestBinaryOps:
    def test_union_and_difference(self, edges):
        more = Relation(("src", "dst"), [("c", "d")])
        assert len(edges.union(more)) == 4
        assert edges.difference(edges).is_empty

    def test_union_schema_checked(self, edges):
        with pytest.raises(SchemaError, match="mismatch"):
            edges.union(Relation(("a", "b"), []))

    def test_intersection(self, edges):
        other = Relation(("src", "dst"), [("a", "b"), ("z", "z")])
        assert edges.intersection(other).rows == {("a", "b")}

    def test_product_requires_disjoint_schemas(self, edges):
        with pytest.raises(SchemaError, match="overlap"):
            edges.product(edges)
        result = edges.product(Relation(("k",), [("1",), ("2",)]))
        assert len(result) == 6
        assert result.columns == ("src", "dst", "k")

    def test_natural_join_composes_paths(self, edges):
        hop2 = edges.rename({"src": "dst", "dst": "fin"})
        composed = edges.join(hop2)
        assert ("a", "b", "c") in composed

    def test_join_without_shared_columns_is_product(self, edges):
        other = Relation(("k",), [("1",)])
        assert edges.join(other) == edges.product(other)

    def test_semijoin(self, edges):
        keys = Relation(("src",), [("a",)])
        assert edges.semijoin(keys).rows == {("a", "b"), ("a", "c")}

    def test_semijoin_disjoint_schema_gates_on_emptiness(self, edges):
        assert edges.semijoin(Relation(("q",), [("x",)])) == edges
        assert edges.semijoin(Relation(("q",), [])).is_empty


class TestAlgebraicLaws:
    """The σ/⋈ laws the paper's evaluation principle relies on."""

    def test_selection_pushes_through_join(self, edges):
        hop2 = edges.rename({"src": "dst", "dst": "fin"})
        pushed = edges.select(src="a").join(hop2)
        late = edges.join(hop2).select(src="a")
        assert pushed == late

    def test_join_is_commutative_up_to_column_order(self, edges):
        hop2 = edges.rename({"src": "dst", "dst": "fin"})
        left = edges.join(hop2)
        right = hop2.join(edges)
        assert left.project(("src", "dst", "fin")) == \
            right.project(("src", "dst", "fin"))

    def test_union_idempotent_and_commutative(self, edges):
        other = Relation(("src", "dst"), [("z", "z")])
        assert edges.union(edges) == edges
        assert edges.union(other) == other.union(edges)


class TestHelpers:
    def test_relation_from_pairs(self):
        rel = relation_from_pairs([("a", "b")])
        assert rel.columns == ("src", "dst")
        assert ("a", "b") in rel


class TestDivision:
    def test_textbook_example(self):
        enrolled = Relation(("student", "course"),
                            [("ann", "db"), ("ann", "os"),
                             ("bob", "db"), ("cal", "os")])
        required = Relation(("course",), [("db",), ("os",)])
        assert enrolled.divide(required).rows == {("ann",)}

    def test_empty_divisor_keeps_all_quotients(self):
        rel = Relation(("x", "y"), [("a", "1"), ("b", "2")])
        empty = Relation(("y",), [])
        assert rel.divide(empty).rows == {("a",), ("b",)}

    def test_divisor_must_be_proper_subset(self):
        rel = Relation(("x", "y"), [("a", "1")])
        with pytest.raises(SchemaError):
            rel.divide(Relation(("x", "y"), []))
        with pytest.raises(SchemaError):
            rel.divide(Relation(("z",), []))

    def test_division_join_inequality(self):
        """(r ÷ s) × s ⊆ r — the defining property."""
        rel = Relation(("x", "y"), [("a", "1"), ("a", "2"), ("b", "1")])
        div = Relation(("y",), [("1",), ("2",)])
        quotient = rel.divide(div)
        rebuilt = quotient.product(div)
        assert rebuilt.rows <= rel.project(("x", "y")).rows
