"""Stress and scale sanity tests (kept fast but non-trivial)."""

from repro.core import classify, compile_query, to_stable
from repro.datalog.parser import parse_rule, parse_system
from repro.engine import (CompiledEngine, Query, SemiNaiveEngine)
from repro.ra import Database
from repro.workloads import chain, reflexive_exit


class TestDeepExpansion:
    def test_expansion_depth_forty(self, tc_system):
        deep = tc_system.expansion(40)
        assert len(deep.body_atoms_of("A")) == 40
        # all variables distinct
        assert len(deep.variables) == 42

    def test_exit_expansion_depth_forty(self, tc_system):
        deep = tc_system.exit_expansion(40)
        assert not deep.is_recursive()
        assert len(deep.body_atoms_of("A")) == 39


class TestLongChains:
    def test_tc_on_200_chain(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        db = Database.from_dict({"A": chain(200),
                                 "P__exit": reflexive_exit(200)})
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("P(n0, Y)"))
        assert len(answers) == 201
        assert ("n0", "n200") in answers

    def test_point_query_on_long_chain(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        db = Database.from_dict({"A": chain(300),
                                 "P__exit": reflexive_exit(300)})
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("P(n100, n300)"))
        assert answers == {("n100", "n300")}


class TestWideArity:
    def test_seven_ary_permutation_classifies(self):
        # a 7-cycle permutation: weight 7, class A4, bound 6
        rule = parse_rule(
            "P(x1, x2, x3, x4, x5, x6, x7) :- "
            "P(x2, x3, x4, x5, x6, x7, x1).")
        result = classify(rule)
        assert str(result.formula_class) == "A4"
        assert result.rank_bound == 6

    def test_eight_disjoint_unit_cycles(self):
        atoms = ", ".join(f"R{i}(x{i}, y{i})" for i in range(8))
        heads = ", ".join(f"x{i}" for i in range(8))
        bodies = ", ".join(f"y{i}" for i in range(8))
        rule = parse_rule(f"P({heads}) :- {atoms}, P({bodies}).")
        result = classify(rule)
        assert result.is_strongly_stable
        assert len(result.components) == 8

    def test_five_ary_mixed_permutation_lcm(self):
        # swap (b,c) weight 2 ⊕ rotation (a,d,e)?  positions: a→t via R
        # (weight-1 rotational), (b,c) swap, (d,e) swap -> LCM 2
        system = parse_system(
            "P(a, b, c, d, e) :- R(a, t), P(t, c, b, e, d).")
        result = classify(system)
        assert result.is_transformable
        assert result.unfold_times == 2


class TestMixedScale:
    def test_compile_large_unfolding(self):
        # weight-4 rotational cycle: unfold 4x, 4 exits
        system = parse_system(
            "P(x1, x2, x3, x4) :- A(x1, y4), B(x2, y1), C(x3, y2), "
            "D(x4, y3), P(y1, y2, y3, y4).")
        result = classify(system)
        assert result.unfold_times == 4
        transformed = to_stable(system, result)
        assert len(transformed.system.exits) == 4
        compiled = compile_query(system, "dvvv", result)
        assert compiled.plan_text

    def test_engines_agree_on_wide_stable_formula(self):
        atoms = ", ".join(f"R{i}(x{i}, y{i})" for i in range(5))
        heads = ", ".join(f"x{i}" for i in range(5))
        bodies = ", ".join(f"y{i}" for i in range(5))
        system = parse_system(f"P({heads}) :- {atoms}, P({bodies}).")
        db = Database()
        for i in range(5):
            db.bulk(f"R{i}", chain(3))
        db.bulk("P__exit", [tuple("n3" for _ in range(5))])
        query = Query("P", ("n0",) + (None,) * 4)
        compiled = CompiledEngine().evaluate(system, db, query)
        semi = SemiNaiveEngine().evaluate(system, db, query)
        assert compiled == semi
        assert len(compiled) == 1  # all positions must reach n3 together
