"""Tests for the realistic scenario generators."""

from repro.engine import CompiledEngine, Query, SemiNaiveEngine
from repro.ra import Database
from repro.session import DeductiveDatabase
from repro.workloads import (assembly, genealogy, genealogy_updown,
                             org_hierarchy)


class TestGenealogy:
    def test_population_size(self):
        rows = genealogy(3, families=2, children_per_couple=2)
        # 2 roots, then 4, 8, 16 children: 28 parent edges
        assert len(rows["parent"]) == 28

    def test_deterministic(self):
        assert genealogy(3, seed=5) == genealogy(3, seed=5)

    def test_generation_labels_nest(self):
        rows = genealogy(2, families=1)
        for parent, child in rows["parent"]:
            parent_gen = int(parent.split("_")[0][1:])
            child_gen = int(child.split("_")[0][1:])
            assert child_gen == parent_gen + 1

    def test_ancestor_query_spans_generations(self):
        rows = genealogy(4, families=1, children_per_couple=2)
        ddb = DeductiveDatabase()
        ddb.add_rule("anc(x, y) :- parent(x, z), anc(z, y).")
        ddb.add_rule("anc(x, y) :- parent(x, y).")
        ddb.add_facts("parent", rows["parent"])
        descendants = ddb.query("anc(g0_p0, Y)")
        # 2 + 4 + 8 + 16 descendants
        assert len(descendants) == 30


class TestUpDown:
    def test_shapes(self):
        rows = genealogy_updown(2, families=2)
        assert len(rows["up"]) == len(rows["down"])
        assert all(r == (r[0], r[0]) for r in rows["flat"])

    def test_same_generation_on_scenario(self):
        from repro.datalog import parse_system
        system = parse_system("""
            sg(x, y) :- up(x, u), sg(u, v), down(v, y).
            sg(x, y) :- flat(x, y).
        """)
        db = Database.from_dict(genealogy_updown(3, families=1))
        someone = sorted({r[0] for r in db.rows("up")})[0]
        compiled = CompiledEngine().evaluate(
            system, db, Query("sg", (someone, None)))
        semi = SemiNaiveEngine().evaluate(
            system, db, Query("sg", (someone, None)))
        assert compiled == semi
        # everyone in the same generation as `someone` shares its depth
        depth = someone.split("_")[0]
        assert all(answer[1].startswith(depth) for answer in compiled)


class TestOrgAndAssembly:
    def test_org_size(self):
        rows = org_hierarchy(3, span=2)
        assert len(rows["manages"]) == 2 + 4 + 8
        grades = {g for _, g in rows["grade"]}
        assert grades == {"L0", "L1", "L2", "L3"}

    def test_assembly_is_a_dag_with_shared_parts(self):
        rows = assembly(3, fanout=2, shared_parts=2)["subpart"]
        children: dict[str, int] = {}
        for _, child in rows:
            children[child] = children.get(child, 0) + 1
        # shared standard parts have several parents
        assert any(count > 1 for count in children.values())

    def test_parts_explosion_counts(self):
        rows = assembly(2, fanout=2, shared_parts=0)["subpart"]
        ddb = DeductiveDatabase()
        ddb.add_rule("contains(x, y) :- subpart(x, z), contains(z, y).")
        ddb.add_rule("contains(x, y) :- subpart(x, y).")
        ddb.add_facts("subpart", rows)
        everything = ddb.query("contains(product, Y)")
        assert len(everything) == 6  # 2 + 4 parts below the root
