"""Metamorphic properties of Datalog evaluation.

Instead of comparing against an oracle, these tests transform the
*input* in ways with a known effect on the *output*:

* **monotonicity** — adding facts never removes answers;
* **genericity** — renaming constants through a bijection maps the
  answers through the same bijection (pure Datalog can't look inside
  values);
* **body-order invariance** — permuting a rule body changes nothing;
* **atom duplication** — repeating a body atom changes nothing;
* **fresh-relation padding** — adding an always-satisfiable decoration
  over fresh variables changes nothing;
* **query/filter commutation** — evaluating bound queries equals
  filtering the free query's answers.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.program import RecursionSystem
from repro.datalog.rules import RecursiveRule, Rule
from repro.datalog.terms import Variable
from repro.engine import CompiledEngine, Query, SemiNaiveEngine
from repro.ra import Database
from repro.workloads import random_edb

from .strategies import linear_systems

RELAXED = settings(max_examples=30, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def evaluate_all(system, db):
    return SemiNaiveEngine().evaluate(system, db)


class TestMonotonicity:
    @RELAXED
    @given(linear_systems(max_arity=3, max_edb_atoms=3),
           st.integers(0, 3))
    def test_adding_facts_grows_answers(self, system, seed):
        small = random_edb(system, nodes=4, tuples_per_relation=4,
                           seed=seed)
        large = small.copy()
        extra = random_edb(system, nodes=4, tuples_per_relation=4,
                           seed=seed + 100)
        for name in extra.relation_names:
            large.bulk(name, extra.rows(name))
        assert evaluate_all(system, small) <= evaluate_all(system,
                                                           large)


class TestGenericity:
    @RELAXED
    @given(linear_systems(max_arity=3, max_edb_atoms=3),
           st.integers(0, 3))
    def test_constant_renaming_commutes(self, system, seed):
        db = random_edb(system, nodes=4, tuples_per_relation=6,
                        seed=seed)
        mapping = {value: f"renamed_{value}"
                   for value in db.active_domain()}
        renamed = Database()
        for name in db.relation_names:
            renamed.bulk(name, {tuple(mapping[v] for v in row)
                                for row in db.rows(name)})
        expected = {tuple(mapping[v] for v in row)
                    for row in evaluate_all(system, db)}
        assert evaluate_all(system, renamed) == frozenset(expected)


class TestSyntacticInvariances:
    @RELAXED
    @given(linear_systems(max_arity=3, max_edb_atoms=3),
           st.integers(0, 2), st.randoms(use_true_random=False))
    def test_body_order_is_irrelevant(self, system, seed, rng):
        db = random_edb(system, nodes=4, tuples_per_relation=6,
                        seed=seed)
        rule = system.recursive.rule
        shuffled_body = list(rule.body)
        rng.shuffle(shuffled_body)
        shuffled = RecursionSystem(
            RecursiveRule(Rule(rule.head, tuple(shuffled_body)),
                          strict=False),
            system.exits)
        assert evaluate_all(system, db) == evaluate_all(shuffled, db)

    @RELAXED
    @given(linear_systems(max_arity=3, max_edb_atoms=3),
           st.integers(0, 2))
    def test_duplicating_an_edb_atom_is_irrelevant(self, system, seed):
        db = random_edb(system, nodes=4, tuples_per_relation=6,
                        seed=seed)
        rule = system.recursive.rule
        edb_atoms = [a for a in rule.body
                     if a.predicate != system.predicate]
        if not edb_atoms:
            return
        doubled = RecursionSystem(
            RecursiveRule(Rule(rule.head,
                               rule.body + (edb_atoms[0],)),
                          strict=False),
            system.exits)
        assert evaluate_all(system, db) == evaluate_all(doubled, db)

    @RELAXED
    @given(linear_systems(max_arity=2, max_edb_atoms=2),
           st.integers(0, 2))
    def test_satisfiable_decoration_is_irrelevant(self, system, seed):
        """Adding Pad(f1, f2) over fresh variables with a non-empty
        Pad relation changes nothing."""
        db = random_edb(system, nodes=4, tuples_per_relation=6,
                        seed=seed)
        db.bulk("Pad", [("p1", "p2")])
        rule = system.recursive.rule
        padded = RecursionSystem(
            RecursiveRule(Rule(rule.head, rule.body + (
                Atom("Pad", (Variable("fresh1"), Variable("fresh2"))),)),
                strict=False),
            system.exits)
        assert evaluate_all(system, db) == evaluate_all(padded, db)


class TestQueryFilterCommutation:
    @RELAXED
    @given(linear_systems(max_arity=3, max_edb_atoms=3),
           st.integers(0, 2), st.integers(0, 7))
    def test_bound_query_equals_filtered_free_query(self, system, seed,
                                                    mask):
        db = random_edb(system, nodes=4, tuples_per_relation=6,
                        seed=seed)
        domain = sorted(db.active_domain()) or ["c0"]
        pattern = tuple(
            domain[i % len(domain)]
            if (mask >> i) & 1 and i < system.dimension else None
            for i in range(system.dimension))
        query = Query(system.predicate, pattern)
        free = CompiledEngine().evaluate(
            system, db, Query.all_free(system.predicate,
                                       system.dimension))
        bound = CompiledEngine().evaluate(system, db, query)
        assert bound == query.filter(free)
