"""Unit tests for the plan AST and its paper-notation renderer."""

from repro.core.plans import (Branches, Exists, JoinChain, Power, Product,
                              Rel, Select, Steps, UnionOverK,
                              relation_names, render)


class TestRendering:
    def test_relation_and_select(self):
        assert render(Rel("A")) == "A"
        assert render(Select(Rel("A"))) == "σA"
        assert render(Select(Rel("A"), binding="a")) == "σa·A"

    def test_join_chain_uses_dashes(self):
        chain = JoinChain((Select(Rel("A")), Rel("C"), Rel("B")))
        assert render(chain) == "σA-C-B"

    def test_branches_braced(self):
        assert render(Branches((Rel("A"), Rel("B")))) == "{A, B}"

    def test_power_of_single_relation(self):
        assert render(Power(Rel("A"))) == "A^k"

    def test_power_of_chain_bracketed(self):
        assert render(Power(JoinChain((Rel("B"), Rel("A"))))) == "[B-A]^k"

    def test_product_parenthesised(self):
        plan = Product((Select(Rel("A")), JoinChain((Rel("E"), Rel("B")))))
        assert render(plan) == "(σA) X (E-B)"

    def test_exists(self):
        assert render(Exists(JoinChain((Rel("E"), Rel("B"))))) == "∃(E-B)"

    def test_union_over_k(self):
        plan = UnionOverK(JoinChain((Select(Rel("A")), Rel("E"))), start=1)
        assert render(plan) == "∪k≥1 [σA-E]"

    def test_steps_comma_separated(self):
        plan = Steps((Select(Rel("E")), Rel("A")))
        assert render(plan) == "σE,  A"

    def test_paper_s9_plan_renders(self):
        """σE, (σA) X (∪k [(E⋈B)(BA)^k]) — the Example 9 shape."""
        plan = Steps((
            Select(Rel("E")),
            Product((Select(Rel("A")),
                     UnionOverK(JoinChain((
                         JoinChain((Rel("E"), Rel("B"))),
                         Power(JoinChain((Rel("B"), Rel("A")))))))))))
        text = render(plan)
        assert "σE" in text and "X" in text and "[B-A]^k" in text


class TestRelationNames:
    def test_collects_left_to_right(self):
        plan = Steps((Select(Rel("E")),
                      Product((Select(Rel("A")),
                               JoinChain((Rel("E"), Rel("B")))))))
        assert relation_names(plan) == ("E", "A", "E", "B")

    def test_through_every_node_kind(self):
        plan = UnionOverK(Exists(Branches((Power(Rel("A")), Rel("B")))))
        assert relation_names(plan) == ("A", "B")
