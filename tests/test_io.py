"""Tests for TSV persistence of fact stores."""

import pytest

from repro.datalog.errors import EvaluationError
from repro.ra import Database
from repro.ra.io import (load_database, load_relation, save_database,
                         save_relation)


@pytest.fixture
def db():
    return Database.from_dict({
        "A": [("a", "b"), ("b", "c")],
        "N": [(1,), (2,)],
        "M": [("x", 2.5)],
    })


class TestRoundTrip:
    def test_database_round_trip(self, db, tmp_path):
        save_database(db, tmp_path)
        again = load_database(tmp_path)
        for name in db.relation_names:
            assert again.rows(name) == db.rows(name)

    def test_types_recovered(self, db, tmp_path):
        save_database(db, tmp_path)
        again = load_database(tmp_path)
        assert again.rows("N") == {(1,), (2,)}
        assert again.rows("M") == {("x", 2.5)}

    def test_deterministic_files(self, db, tmp_path):
        save_database(db, tmp_path / "one")
        save_database(db, tmp_path / "two")
        first = (tmp_path / "one" / "A.tsv").read_text()
        second = (tmp_path / "two" / "A.tsv").read_text()
        assert first == second

    def test_empty_relation_round_trips(self, tmp_path):
        db = Database()
        db.declare("Empty", 2)
        save_database(db, tmp_path)
        again = load_database(tmp_path)
        assert again.rows("Empty") == frozenset()


class TestSingleRelation:
    def test_relation_round_trip(self, tmp_path):
        rows = [("a", 1), ("b", 2)]
        save_relation(rows, tmp_path / "r.tsv")
        assert sorted(load_relation(tmp_path / "r.tsv")) == sorted(rows)


class TestErrors:
    def test_tab_in_value_rejected(self, tmp_path):
        db = Database.from_dict({"A": [("a\tb",)]})
        with pytest.raises(EvaluationError, match="tabs"):
            save_database(db, tmp_path)

    def test_missing_directory(self):
        with pytest.raises(EvaluationError, match="not a directory"):
            load_database("/nonexistent/dir/for/sure")


class TestIntegrationWithEngines:
    def test_saved_edb_answers_identically(self, tmp_path):
        from repro.engine import SemiNaiveEngine
        from repro.workloads import CATALOGUE, chain_edb
        system = CATALOGUE["s1a"].system()
        db = chain_edb(system, 6)
        save_database(db, tmp_path)
        loaded = load_database(tmp_path)
        engine = SemiNaiveEngine()
        assert engine.evaluate(system, db) == engine.evaluate(
            system, loaded)
