"""Telemetry must be invisible to evaluation.

Two properties, engine × catalogue class (mirroring the tracing
suite's ``trace=None`` discipline):

* **Disabled is free** — a session without a registry or query log
  takes the pre-telemetry code path: answers and the evaluation's
  counters are bit-identical to an instrumented session's.
* **Reconciliation by construction** — the registry's counters equal
  the sum of the per-query stats deltas, because that is literally
  what is fed to them (snapshot-delta), even when one stats object is
  reused across queries.
"""

import io

import pytest

from repro.engine import Query
from repro.engine.plan import clear_plan_cache
from repro.engine.stats import EvaluationStats
from repro.logutil import QueryLogger
from repro.metrics import MetricsRegistry
from repro.session import DeductiveDatabase
from repro.workloads import CATALOGUE, random_edb

#: one catalogue representative per paper class A1 … C
CLASS_ENTRIES = {
    "A1": "s2a", "A3": "s4", "A4": "s5", "A5": "s1a",
    "B": "s8", "C": "s9",
}

ENGINES = ("compiled", "semi-naive", "naive", "top-down", "sharded")


def _sessions(name):
    """Two identically-loaded sessions: bare, and fully instrumented."""
    system = CATALOGUE[name].system()
    db = random_edb(system, nodes=5, tuples_per_relation=6, seed=0)
    bare = DeductiveDatabase()
    instrumented = DeductiveDatabase(
        metrics=MetricsRegistry(),
        query_log=QueryLogger(io.StringIO()))
    for session in (bare, instrumented):
        session.add_rule(system.recursive.rule)
        for exit_rule in system.exits:
            session.add_rule(exit_rule)
        for relation in db.relation_names:
            session.add_facts(relation, db.rows(relation))
    query = Query.all_free(system.predicate, system.dimension)
    return bare, instrumented, query


class TestDisabledTelemetryIsFree:
    @pytest.mark.parametrize("paper_class", sorted(CLASS_ENTRIES))
    @pytest.mark.parametrize("engine", ENGINES)
    def test_answers_and_stats_bit_identical(self, paper_class,
                                             engine):
        bare, instrumented, query = _sessions(
            CLASS_ENTRIES[paper_class])
        kwargs = ({"workers": 0} if engine == "sharded"
                  else {"engine": engine})
        bare_stats, inst_stats = EvaluationStats(), EvaluationStats()
        # The process-wide join-plan cache is shared by both runs;
        # clear it before each so hits/misses compare like-for-like.
        clear_plan_cache()
        plain = bare.query(query, stats=bare_stats, **kwargs)
        clear_plan_cache()
        observed = instrumented.query(query, stats=inst_stats,
                                      **kwargs)
        assert plain == observed
        assert bare_stats.to_dict() == inst_stats.to_dict()

    def test_error_paths_identical_too(self):
        bare, instrumented, _ = _sessions("s2a")
        for session in (bare, instrumented):
            with pytest.raises(Exception) as caught:
                session.query("no_such_predicate(X)")
            assert "no_such_predicate" in str(caught.value)


class TestRegistryReconciliation:
    @pytest.mark.parametrize("paper_class", sorted(CLASS_ENTRIES))
    def test_counters_equal_stats_delta_sums(self, paper_class):
        """Across several queries — including a *reused* stats object,
        the snapshot-delta's reason to exist — the registry's rounds/
        probes/derived counters equal the per-query sums."""
        _, session, query = _sessions(CLASS_ENTRIES[paper_class])
        reused = EvaluationStats()
        totals = {"rounds": 0, "probes": 0, "derived": 0}
        for _ in range(3):
            before = reused.to_dict()
            session.query(query, stats=reused, engine="semi-naive")
            after = reused.to_dict()
            for field in totals:
                totals[field] += after[field] - before[field]
        registry = session.metrics
        for field, metric in (("rounds", "repro_rounds_total"),
                              ("probes", "repro_probes_total"),
                              ("derived", "repro_derived_total")):
            counter = registry.get(metric)
            assert counter.value(engine="semi-naive") == totals[field]
        queries = registry.get("repro_queries_total")
        assert queries.value(engine="semi-naive",
                             formula_class=paper_class,
                             outcome="ok") == 3

    def test_error_counter_and_log_line(self):
        _, session, _ = _sessions("s2a")
        with pytest.raises(Exception):
            session.query("missing(X, Y)")
        errors = session.metrics.get("repro_query_errors_total")
        assert errors is not None
        total = sum(errors.value(**dict(zip(errors.label_names, key)))
                    for key in errors._series)
        assert total == 1
        log_text = session.query_log.stream.getvalue()
        assert '"outcome": "ok"' not in log_text
        assert log_text.count("\n") == 1
