"""Unit tests for the textual Datalog front end."""

import pytest

from repro.datalog.errors import DatalogSyntaxError
from repro.datalog.parser import (parse_atom, parse_program, parse_rule,
                                  parse_system)
from repro.datalog.terms import Constant, Variable


class TestParseAtom:
    def test_rule_context_makes_variables(self):
        parsed = parse_atom("A(x, y)")
        assert parsed.args == (Variable("x"), Variable("y"))

    def test_fact_context_makes_constants(self):
        parsed = parse_atom("A(a, b)", in_rule=False)
        assert parsed.args == (Constant("a"), Constant("b"))

    def test_numbers_and_strings_are_constants_everywhere(self):
        parsed = parse_atom("A(x, 3, 'lit')")
        assert parsed.args[1] == Constant(3)
        assert parsed.args[2] == Constant("lit")

    def test_propositional_atom(self):
        assert parse_atom("Go").arity == 0

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_atom("A(x) B")


class TestParseRule:
    def test_comma_and_wedge_separators(self):
        by_comma = parse_rule("P(x, y) :- A(x, z), P(z, y).")
        by_wedge = parse_rule("P(x, y) :- A(x, z) ∧ P(z, y).")
        by_amp = parse_rule("P(x, y) :- A(x, z) & P(z, y).")
        assert by_comma == by_wedge == by_amp

    def test_final_dot_optional(self):
        assert parse_rule("P(x) :- P(x)") == parse_rule("P(x) :- P(x).")

    def test_fact_text_is_rejected_as_rule(self):
        with pytest.raises(DatalogSyntaxError, match="fact"):
            parse_rule("A(a, b).")

    def test_error_carries_position(self):
        with pytest.raises(DatalogSyntaxError, match="line 2"):
            parse_rule("P(x) :- % comment\n)")

    def test_unterminated_string(self):
        with pytest.raises(DatalogSyntaxError, match="unterminated"):
            parse_rule("P(x) :- A(x, 'oops).")

    def test_unexpected_character(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("P(x) :- A(x @ y).")


class TestParseProgram:
    PROGRAM = """
        % transitive closure with an explicit exit rule
        P(x, y) :- A(x, z), P(z, y).
        P(x, y) :- E(x, y).
        A(a, b).  # facts: identifiers become constants
        A(b, c).
        E(c, c).
    """

    def test_rules_and_facts_split(self):
        program = parse_program(self.PROGRAM)
        assert len(program.rules) == 2
        assert len(program.facts) == 3

    def test_idb_edb_partition(self):
        program = parse_program(self.PROGRAM)
        assert program.idb_predicates == {"P"}
        assert program.edb_predicates == {"A", "E"}

    def test_facts_are_ground(self):
        program = parse_program(self.PROGRAM)
        assert all(f.is_ground for f in program.facts)

    def test_comments_ignored(self):
        assert len(parse_program("% nothing here\n# nor here\n").rules) == 0


class TestParseSystem:
    def test_explicit_exits_collected(self):
        system = parse_system("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
            P(x, x) :- V(x).
        """)
        assert len(system.exits) == 2

    def test_generic_exit_synthesised(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        assert len(system.exits) == 1
        assert system.exits[0].body[0].predicate == "P__exit"

    def test_rejects_zero_or_many_recursive_rules(self):
        with pytest.raises(DatalogSyntaxError, match="exactly one"):
            parse_system("P(x, y) :- E(x, y).")
        with pytest.raises(DatalogSyntaxError, match="exactly one"):
            parse_system("""
                P(x, y) :- A(x, z), P(z, y).
                P(x, y) :- P(x, z), B(z, y).
            """)


class TestQueryStatements:
    def test_query_lines_collected(self):
        program = parse_program("""
            P(x, y) :- A(x, z), P(z, y).
            A(a, b).
            ?- P(a, Y).
            ?- P(X, b).
        """)
        assert len(program.queries) == 2

    def test_query_mode_case_convention(self):
        program = parse_program("?- P(a, Y, _slot, 'Lit', 3).")
        goal = program.queries[0]
        kinds = [type(t).__name__ for t in goal.args]
        assert kinds == ["Constant", "Variable", "Variable",
                         "Constant", "Constant"]

    def test_with_facts_preserves_queries(self):
        from repro.datalog.atoms import fact
        program = parse_program("?- P(a, Y).")
        extended = program.with_facts([fact("A", "a", "b")])
        assert len(extended.queries) == 1
