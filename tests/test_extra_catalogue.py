"""The corner-case corpus: classifier verdicts and engine agreement."""

import pytest

from repro.core import classify
from repro.engine import (CompiledEngine, Query, SemiNaiveEngine,
                          TopDownEngine)
from repro.workloads import EXTRA_CATALOGUE, extra_systems, random_edb


@pytest.fixture(params=sorted(EXTRA_CATALOGUE))
def extra_entry(request):
    return EXTRA_CATALOGUE[request.param]


class TestVerdicts:
    def test_full_classification_matches_claims(self, extra_entry):
        result = classify(extra_entry.system())
        row = result.summary_row()
        assert row["class"] == extra_entry.paper_class
        assert row["components"] == extra_entry.paper_components
        assert row["stable"] == extra_entry.paper_stable
        assert row["transformable"] == extra_entry.paper_transformable
        assert row["unfold"] == extra_entry.paper_unfold
        assert row["bounded"] == extra_entry.paper_bounded
        assert row["rank_bound"] == extra_entry.paper_rank_bound


class TestEngines:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_engines_agree_on_corner_cases(self, extra_entry, seed):
        system = extra_entry.system()
        db = random_edb(system, nodes=5, tuples_per_relation=7,
                        seed=seed)
        domain = sorted(db.active_domain()) or ["c0"]
        for form in extra_entry.query_forms:
            pattern = tuple(
                domain[i % len(domain)] if ch == "d" else None
                for i, ch in enumerate(form))
            query = Query(system.predicate, pattern)
            semi = SemiNaiveEngine().evaluate(system, db, query)
            compiled = CompiledEngine().evaluate(system, db, query)
            top = TopDownEngine().evaluate(system, db, query)
            assert semi == compiled == top, (extra_entry.name, form)


class TestBoundsOnCornerCases:
    @pytest.mark.parametrize("name", ["dependent_bounded", "pure_a2",
                                      "double_d"])
    def test_measured_rank_within_bound(self, name):
        from repro.engine import SemiNaiveEngine
        entry = EXTRA_CATALOGUE[name]
        system = entry.system()
        for seed in range(5):
            db = random_edb(system, nodes=4, tuples_per_relation=10,
                            seed=seed)
            rank = SemiNaiveEngine().measured_rank(system, db)
            assert rank <= entry.paper_rank_bound, (name, seed)

    def test_unknown_case_is_empirically_bounded_looking(self):
        """The open corner: the classifier honestly says UNKNOWN even
        though small instances stop quickly."""
        entry = EXTRA_CATALOGUE["unknown_boundedness"]
        system = entry.system()
        db = random_edb(system, nodes=4, tuples_per_relation=8, seed=0)
        rank = SemiNaiveEngine().measured_rank(system, db)
        assert rank >= 0  # terminates; no bound is *claimed*


def test_extra_systems_builder():
    systems = extra_systems()
    assert systems.keys() == EXTRA_CATALOGUE.keys()
