"""Unit tests for the class taxonomy value objects."""

import pytest

from repro.core.classes import (Boundedness, ComponentClass, FormulaClass,
                                combine_component_classes)

A1, A2, A3, A4 = (ComponentClass.A1, ComponentClass.A2,
                  ComponentClass.A3, ComponentClass.A4)
B, C, D, E = (ComponentClass.B, ComponentClass.C, ComponentClass.D,
              ComponentClass.E)


class TestComponentClass:
    def test_one_directional_family(self):
        assert all(k.is_one_directional for k in (A1, A2, A3, A4))
        assert not any(k.is_one_directional for k in (B, C, D, E))

    def test_unit_family(self):
        assert A1.is_unit and A2.is_unit
        assert not A3.is_unit and not A4.is_unit

    def test_permutational_family(self):
        assert A2.is_permutational and A4.is_permutational
        assert not A1.is_permutational and not A3.is_permutational

    def test_str(self):
        assert str(A1) == "A1"
        assert str(E) == "E"


class TestCombine:
    def test_single_kind_keeps_label(self):
        assert combine_component_classes((A1, A1)) is FormulaClass.A1
        assert combine_component_classes((B, B)) is FormulaClass.B
        assert combine_component_classes((E,)) is FormulaClass.E

    def test_mixed_a_family_is_a5(self):
        assert combine_component_classes((A1, A2)) is FormulaClass.A5
        assert combine_component_classes((A3, A4, A1)) is FormulaClass.A5

    def test_cross_family_is_f(self):
        assert combine_component_classes((A1, D)) is FormulaClass.F
        assert combine_component_classes((B, C)) is FormulaClass.F
        assert combine_component_classes((E, A1)) is FormulaClass.F

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_component_classes(())


class TestFormulaClass:
    def test_one_directional_formula_classes(self):
        for label in ("A1", "A2", "A3", "A4", "A5"):
            assert FormulaClass(label).is_one_directional
        for label in ("B", "C", "D", "E", "F"):
            assert not FormulaClass(label).is_one_directional


class TestBoundedness:
    def test_str_values(self):
        assert str(Boundedness.BOUNDED) == "bounded"
        assert str(Boundedness.UNBOUNDED) == "unbounded"
        assert str(Boundedness.UNKNOWN) == "unknown"
