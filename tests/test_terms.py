"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (Constant, Variable, fresh_variables,
                                 is_constant, is_variable, variables_of)


class TestVariable:
    def test_equality_is_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable_and_usable_in_sets(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_renamed_appends_level_subscript(self):
        assert Variable("z").renamed(1) == Variable("z_1")
        assert Variable("z").renamed(1).renamed(2) == Variable("z_1_2")

    def test_str_is_bare_name(self):
        assert str(Variable("x1")) == "x1"

    def test_rejects_invalid_names(self):
        with pytest.raises(ValueError):
            Variable("")
        with pytest.raises(ValueError):
            Variable("1x")
        with pytest.raises(ValueError):
            Variable("a b")

    def test_primed_names_allowed(self):
        assert str(Variable("x'")) == "x'"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Variable("x").name = "y"


class TestConstant:
    def test_equality_is_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant(1) != Constant(2)

    def test_str_of_non_string_values(self):
        assert str(Constant(42)) == "42"

    def test_distinct_from_variable_of_same_text(self):
        assert Constant("x") != Variable("x")


class TestHelpers:
    def test_is_variable_and_is_constant(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant("x"))
        assert is_constant(Constant(3))
        assert not is_constant(Variable("x"))

    def test_variables_of_keeps_order_and_duplicates(self):
        x, y = Variable("x"), Variable("y")
        assert variables_of((x, Constant("a"), y, x)) == (x, y, x)

    def test_fresh_variables_are_distinct(self):
        fresh = fresh_variables(5)
        assert len(set(fresh)) == 5
        assert all(v.name.startswith("v") for v in fresh)
