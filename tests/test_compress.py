"""Unit tests for undirected-cluster compression (section 3 Remark)."""

from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.graphs.compress import reduce_graph
from repro.graphs.igraph import build_igraph

V = Variable


def reduced_of(text: str):
    return reduce_graph(build_igraph(parse_rule(text)))


class TestPaperRemark:
    """P(x,y) :- A(x,u) ∧ B(x,z) ∧ C(z,u) ∧ P(u,y) compresses the
    triangle x—z—u to one edge labelled ABC."""

    def test_triangle_compresses_to_single_edge(self):
        reduced = reduced_of(
            "P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).")
        assert len(reduced.compressed) == 1
        edge = reduced.compressed[0]
        assert edge.endpoints() == {V("x"), V("u")}
        assert edge.label == "ABC"

    def test_compressed_cluster_records_members(self):
        reduced = reduced_of(
            "P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).")
        assert reduced.compressed[0].cluster == {V("x"), V("z"), V("u")}


class TestClusterKinds:
    def test_two_anchor_cluster_with_internal_path(self):
        # x —A— m —B— z : the intermediate m vanishes
        reduced = reduced_of("P(x, y) :- A(x, m), B(m, z), P(z, y).")
        assert len(reduced.compressed) == 1
        assert reduced.compressed[0].endpoints() == {V("x"), V("z")}
        assert reduced.compressed[0].label == "AB"

    def test_hyper_cluster_from_s11(self):
        reduced = reduced_of(
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).")
        assert len(reduced.hyper) == 1
        assert reduced.hyper[0].anchors == {V("x"), V("x1"), V("y"),
                                            V("y1")}
        assert not reduced.compressed

    def test_decoration_cluster_ignored_for_cycles(self):
        # B(y, w): w dangles off the self-loop variable y
        reduced = reduced_of("P(x, y) :- A(x, z), B(y, w), P(z, y).")
        decorations = [d for d in reduced.decorations
                       if d.anchor == V("y")]
        assert len(decorations) == 1
        assert decorations[0].cluster == {V("y"), V("w")}
        assert len(reduced.compressed) == 1  # only the A edge

    def test_anchor_free_cluster_is_decoration_with_no_anchor(self):
        reduced = reduced_of("P(x, y) :- A(x, z), D(a, b), P(z, y).")
        floating = [d for d in reduced.decorations if d.anchor is None]
        assert len(floating) == 1
        assert floating[0].label == "D"


class TestReducedGraphStructure:
    def test_degree_in_reduced_graph(self):
        reduced = reduced_of("P(x, y) :- A(x, z), P(z, y).")
        assert reduced.degree(V("x")) == 2   # directed + compressed
        assert reduced.degree(V("y")) == 2   # self-loop counts twice

    def test_component_partition_over_anchors(self):
        reduced = reduced_of(
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).")
        parts = {frozenset(v.name for v in p)
                 for p in reduced.component_partition()}
        assert parts == {frozenset({"x", "u"}), frozenset({"y", "v"}),
                         frozenset({"z", "w"})}

    def test_hyper_connects_anchors_into_one_component(self):
        reduced = reduced_of(
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).")
        assert len(reduced.component_partition()) == 1

    def test_str_renders_all_edge_kinds(self):
        text = str(reduced_of(
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1)."))
        assert "hyper[" in text
        assert "→" in text
