"""Unit tests for repro.datalog.unify."""

from repro.datalog.atoms import atom, fact
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import (apply_to_atom, apply_to_rule,
                                 apply_to_term, compose, match_atom,
                                 rename_rule, unify_atoms)

X, Y, Z, U = (Variable(n) for n in "xyzu")


class TestApply:
    def test_apply_to_term(self):
        assert apply_to_term({X: Y}, X) == Y
        assert apply_to_term({X: Y}, Z) == Z
        assert apply_to_term({X: Y}, Constant("a")) == Constant("a")

    def test_apply_to_atom(self):
        applied = apply_to_atom({X: Constant("a")}, atom("A", "x", "y"))
        assert str(applied) == "A(a, y)"

    def test_apply_to_rule_touches_head_and_body(self):
        rule = parse_rule("P(x, y) :- A(x, z), P(z, y).")
        renamed = apply_to_rule({X: U}, rule)
        assert str(renamed) == "P(u, y) :- A(u, z) ∧ P(z, y)."


class TestCompose:
    def test_sequential_effect(self):
        composed = compose({X: Y}, {Y: Z})
        assert composed[X] == Z
        assert composed[Y] == Z

    def test_second_bindings_kept_when_not_shadowed(self):
        composed = compose({X: Y}, {Z: Constant("a")})
        assert composed[Z] == Constant("a")


class TestUnifyAtoms:
    def test_unifies_renamed_heads(self):
        mgu = unify_atoms(atom("P", "x1", "y1"), atom("P", "z", "u"))
        assert mgu is not None
        applied = apply_to_atom(mgu, atom("P", "x1", "y1"))
        assert applied == apply_to_atom(mgu, atom("P", "z", "u"))

    def test_respects_constants(self):
        assert unify_atoms(atom("P", Constant("a")),
                           atom("P", Constant("b"))) is None
        mgu = unify_atoms(atom("P", "x"), atom("P", Constant("a")))
        assert mgu == {X: Constant("a")}

    def test_different_predicates_fail(self):
        assert unify_atoms(atom("P", "x"), atom("Q", "x")) is None

    def test_different_arities_fail(self):
        assert unify_atoms(atom("P", "x"), atom("P", "x", "y")) is None

    def test_repeated_variable_forces_equality(self):
        mgu = unify_atoms(atom("P", "x", "x"), atom("P", "y", "z"))
        assert mgu is not None
        y_image = apply_to_term(mgu, Y)
        z_image = apply_to_term(mgu, Z)
        x_image = apply_to_term(mgu, X)
        assert y_image == z_image == x_image or len(
            {apply_to_term(mgu, t) for t in (X, Y, Z)}) == 1

    def test_chained_bindings_are_normalised(self):
        mgu = unify_atoms(atom("P", "x", "y", "x"),
                          atom("P", "y", "z", "u"))
        assert mgu is not None
        images = {apply_to_term(mgu, t) for t in (X, Y, Z)}
        assert len(images) == 1


class TestMatchAtom:
    def test_matches_ground_atom(self):
        bindings = match_atom(atom("A", "x", "y"), fact("A", "a", "b"))
        assert bindings == {X: Constant("a"), Y: Constant("b")}

    def test_constant_mismatch(self):
        assert match_atom(atom("A", Constant("a"), "y"),
                          fact("A", "b", "c")) is None

    def test_repeated_variable_must_agree(self):
        assert match_atom(atom("A", "x", "x"), fact("A", "a", "b")) is None
        assert match_atom(atom("A", "x", "x"),
                          fact("A", "a", "a")) is not None


class TestRenameRule:
    def test_all_variables_get_subscript(self):
        rule = parse_rule("P(x, y) :- A(x, z), P(z, y).")
        renamed = rename_rule(rule, 3)
        assert str(renamed) == "P(x_3, y_3) :- A(x_3, z_3) ∧ P(z_3, y_3)."

    def test_renaming_shares_no_variables_with_original(self):
        rule = parse_rule("P(x, y) :- A(x, z), P(z, y).")
        renamed = rename_rule(rule, 1)
        assert not (rule.variables & renamed.variables)
