"""Unit tests for the potential assignment (Ioannidis machinery)."""

from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.graphs.igraph import build_igraph
from repro.graphs.potential import (assign_potentials,
                                    directed_path_weight,
                                    has_nonzero_weight_cycle,
                                    max_path_weight)

V = Variable


def graph_of(text: str):
    return build_igraph(parse_rule(text))


class TestConsistency:
    def test_s8_consistent_with_bound_two(self):
        """Figure 3: the I-graph of (s8) has max path weight 2."""
        result = assign_potentials(graph_of(
            "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), "
            "P(z, y1, z1, u1)."))
        assert result.consistent
        assert result.max_path_weight == 2

    def test_s10_consistent_with_bound_two(self):
        """Example 10: upper bound 2."""
        assert max_path_weight(graph_of(
            "P(x, y) :- B(y), C(x, y1), P(x1, y1).")) == 2

    def test_s9_inconsistent(self):
        graph = graph_of("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).")
        assert has_nonzero_weight_cycle(graph)
        assert max_path_weight(graph) is None

    def test_unit_cycle_inconsistent(self):
        # transitive closure has a weight-1 cycle
        assert has_nonzero_weight_cycle(graph_of(
            "P(x, y) :- A(x, z), P(z, y)."))

    def test_conflict_witness_reported(self):
        result = assign_potentials(graph_of(
            "P(x, y) :- A(x, z), P(z, y)."))
        assert not result.consistent
        assert result.conflict is not None
        vertex, expected, found = result.conflict
        assert expected != found

    def test_per_component_spreads(self):
        # two components, each a decorated directed path of spread 1
        result = assign_potentials(graph_of(
            "P(x, y) :- A(y, w), C(x, m), P(x1, y1)."))
        assert result.consistent
        assert sorted(result.component_spreads.values()) == [1, 1]


class TestPotentialValues:
    def test_directed_edge_raises_potential_by_one(self):
        result = assign_potentials(graph_of(
            "P(x, y) :- B(y), C(x, y1), P(x1, y1)."))
        pot = result.potentials
        assert pot[V("x1")] - pot[V("x")] == 1
        assert pot[V("y1")] - pot[V("y")] == 1

    def test_undirected_edge_keeps_potential(self):
        result = assign_potentials(graph_of(
            "P(x, y) :- B(y), C(x, y1), P(x1, y1)."))
        pot = result.potentials
        assert pot[V("x")] == pot[V("y1")]


class TestDirectedPathWeight:
    def test_figure_2c_weight_two(self):
        """The resolution-graph fact: weight from x to z₁ is two."""
        from repro.datalog.parser import parse_system
        from repro.graphs.resolution import resolution_graph
        system = parse_system("P(x, y) :- A(x, z), P(z, u), B(u, y).")
        second = resolution_graph(system, 2)
        assert directed_path_weight(second.graph, V("x"), V("z_1")) == 2

    def test_unreachable_returns_none(self):
        graph = graph_of("P(x, y) :- A(x, z), P(z, y).")
        assert directed_path_weight(graph, V("z"), V("x")) is None

    def test_zero_length_path(self):
        graph = graph_of("P(x, y) :- A(x, z), P(z, y).")
        assert directed_path_weight(graph, V("x"), V("x")) == 0

    def test_self_loop_cycles_detected(self):
        graph = graph_of("P(x, y) :- A(x, z), P(z, y).")
        # following y's self-loop never reaches x
        assert directed_path_weight(graph, V("y"), V("x")) is None


class TestEmptyGraphEdgeCases:
    def test_pure_permutational_graph(self):
        result = assign_potentials(graph_of("P(x, y, z) :- P(y, z, x)."))
        assert not result.consistent  # the weight-3 cycle

    def test_trivial_component_has_spread_zero(self):
        # D(a, b) forms a trivial component; its spread is recorded as
        # 0 even though the recursive component is inconsistent
        result = assign_potentials(graph_of(
            "P(x, y) :- A(x, z), D(a, b), P(z, y)."))
        assert not result.consistent  # the weight-1 A-cycle
        assert 0 in result.component_spreads.values()
