"""Unit tests for I-graph construction (paper section 2, Figure 1)."""

import pytest

from repro.datalog.errors import RuleValidationError
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.graphs.igraph import build_igraph

V = Variable


class TestFigure1:
    """The I-graphs of Example 1 exactly as drawn in Figure 1."""

    def test_s1a_edges(self):
        graph = build_igraph(parse_rule("P(x, y) :- A(x, z), P(z, y)."))
        directed = {(e.tail.name, e.head.name, e.position)
                    for e in graph.directed}
        assert directed == {("x", "z", 0), ("y", "y", 1)}
        undirected = {(e.left.name, e.right.name, e.label)
                      for e in graph.undirected}
        assert undirected == {("x", "z", "A")}

    def test_s1a_self_loop_flag(self):
        graph = build_igraph(parse_rule("P(x, y) :- A(x, z), P(z, y)."))
        loops = [e for e in graph.directed if e.is_self_loop]
        assert len(loops) == 1
        assert loops[0].tail == V("y")

    def test_s1b_edges(self):
        graph = build_igraph(parse_rule(
            "P(x, y, z) :- A(x, y), P(u, z, v), B(u, v)."))
        directed = {(e.tail.name, e.head.name) for e in graph.directed}
        assert directed == {("x", "u"), ("y", "z"), ("z", "v")}
        labels = {e.label for e in graph.undirected}
        assert labels == {"A", "B"}


class TestDegreeStructure:
    def test_directed_in_out_degree_at_most_one(self):
        graph = build_igraph(parse_rule(
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z)."))
        for vertex in graph.vertices:
            out_edges = [e for e in graph.directed if e.tail == vertex]
            in_edges = [e for e in graph.directed if e.head == vertex]
            assert len(out_edges) <= 1
            assert len(in_edges) <= 1

    def test_out_edge_and_in_edge_lookup(self):
        graph = build_igraph(parse_rule("P(x, y) :- A(x, z), P(z, y)."))
        assert graph.out_edge(V("x")).head == V("z")
        assert graph.in_edge(V("z")).tail == V("x")
        assert graph.out_edge(V("z")) is None

    def test_degree_counts_self_loop_twice(self):
        graph = build_igraph(parse_rule("P(x, y) :- A(x, z), P(z, y)."))
        assert graph.degree(V("y")) == 2
        assert graph.degree(V("x")) == 2  # one directed + one undirected

    def test_anchors_are_directed_endpoints(self):
        graph = build_igraph(parse_rule(
            "P(x, y) :- B(y), C(x, y1), P(x1, y1)."))
        assert graph.anchors == {V("x"), V("x1"), V("y"), V("y1")}


class TestNonBinaryAtoms:
    def test_ternary_atom_makes_clique(self):
        graph = build_igraph(parse_rule(
            "P(x, y) :- T(x, y, z), P(x, y)."))
        pairs = {frozenset((e.left.name, e.right.name))
                 for e in graph.undirected}
        assert pairs == {frozenset("xy"), frozenset("xz"),
                         frozenset("yz")}

    def test_unary_atom_contributes_no_edge(self):
        graph = build_igraph(parse_rule("P(x, y) :- B(y), A(x, z), "
                                        "P(z, y)."))
        assert all(e.label != "B" for e in graph.undirected)

    def test_repeated_variable_in_edb_atom_no_self_edge(self):
        graph = build_igraph(parse_rule(
            "P(x, y) :- A(z, z), B(x, z), P(z, y)."))
        assert all(e.left != e.right for e in graph.undirected)


class TestDimensionsAndSummary:
    def test_dimension_equals_arity(self):
        graph = build_igraph(parse_rule(
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z)."))
        assert graph.dimension == 3

    def test_edge_summary_is_deterministic(self):
        rule = parse_rule("P(x, y) :- A(x, z), P(z, u), B(u, y).")
        assert (build_igraph(rule).edge_summary()
                == build_igraph(rule).edge_summary())

    def test_nontrivial_iff_directed_edges(self):
        graph = build_igraph(parse_rule("P(x, y) :- A(x, z), P(z, y)."))
        assert graph.is_nontrivial


class TestValidationThroughGraph:
    def test_plain_rule_is_validated_loosely(self):
        # deliberately not range restricted — allowed with strict=False
        build_igraph(parse_rule("P(x, y) :- A(x, z), P(z, x)."))

    def test_strict_mode_rejects(self):
        with pytest.raises(RuleValidationError):
            build_igraph(parse_rule("P(x, y) :- A(x, z), P(z, x)."),
                         strict=True)
