"""Unit tests for resolution graphs (paper section 2, Figure 2)."""

import pytest

from repro.datalog.parser import parse_system
from repro.datalog.terms import Variable
from repro.graphs.resolution import resolution_graph, resolution_trace

V = Variable


@pytest.fixture
def s2a():
    return parse_system("P(x, y) :- A(x, z), P(z, u), B(u, y).")


class TestFigure2:
    def test_first_resolution_graph_is_the_igraph(self, s2a):
        first = resolution_graph(s2a, 1)
        directed = {(e.tail.name, e.head.name) for e in first.graph.directed}
        assert directed == {("x", "z"), ("y", "u")}
        assert first.frontier == (V("z"), V("u"))

    def test_second_resolution_graph_retains_arrows(self, s2a):
        """Figure 2(c): arrows of both layers present."""
        second = resolution_graph(s2a, 2)
        directed = {(e.tail.name, e.head.name)
                    for e in second.graph.directed}
        assert directed == {("x", "z"), ("y", "u"),
                            ("z", "z_1"), ("u", "u_1")}

    def test_second_graph_undirected_layers(self, s2a):
        second = resolution_graph(s2a, 2)
        labelled = {(e.label, frozenset((e.left.name, e.right.name)))
                    for e in second.graph.undirected}
        assert ("A", frozenset({"x", "z"})) in labelled
        assert ("A", frozenset({"z", "z_1"})) in labelled
        assert ("B", frozenset({"u_1", "u"})) in labelled
        assert ("B", frozenset({"u", "y"})) in labelled

    def test_frontier_advances(self, s2a):
        assert resolution_graph(s2a, 2).frontier == (V("z_1"), V("u_1"))
        assert resolution_graph(s2a, 3).frontier == (V("z_2"), V("u_2"))

    def test_collapsed_igraph_is_figure_2d(self, s2a):
        """Figure 2(d): the 2nd expansion as a formula by itself."""
        collapsed = resolution_graph(s2a, 2).collapsed_igraph()
        directed = {(e.tail.name, e.head.name)
                    for e in collapsed.directed}
        assert directed == {("x", "z_1"), ("y", "u_1")}


class TestSelfLoops:
    def test_self_loop_persists_without_duplication(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        third = resolution_graph(system, 3)
        loops = [e for e in third.graph.directed if e.is_self_loop]
        assert len(loops) == 1
        non_loops = [e for e in third.graph.directed
                     if not e.is_self_loop]
        assert len(non_loops) == 3  # x→z, z→z_1, z_1→z_2


class TestTrace:
    def test_trace_levels(self, s2a):
        trace = resolution_trace(s2a, 3)
        assert [r.level for r in trace] == [1, 2, 3]
        assert len(trace[2].graph.directed) == 6

    def test_level_must_be_positive(self, s2a):
        with pytest.raises(ValueError):
            resolution_graph(s2a, 0)

    def test_expansion_field_matches_program_expansion(self, s2a):
        second = resolution_graph(s2a, 2)
        assert second.expansion == s2a.expansion(2)


class TestTheorem2Property1:
    """A weight-n one-directional formula becomes stable after each n
    expansions: the collapsed I-graph of the n-th expansion has
    disjoint unit cycles."""

    @pytest.mark.parametrize("text,weight", [
        ("P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), "
         "P(y1, y2, y3).", 3),
        ("P(x, y) :- A(x, z), P(y, z).", 2),
        ("P(x, y, z) :- P(y, z, x).", 3),
    ])
    def test_nth_expansion_is_stable(self, text, weight):
        from repro.core.classifier import classify
        system = parse_system(text)
        collapsed = resolution_graph(system, weight).collapsed_igraph()
        # classify the expansion rule directly
        result = classify(system.expansion(weight))
        assert result.is_strongly_stable
        assert collapsed.dimension == system.dimension

    @pytest.mark.parametrize("text,weight", [
        ("P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), "
         "P(y1, y2, y3).", 3),
    ])
    def test_intermediate_expansions_not_stable(self, text, weight):
        from repro.core.classifier import classify
        system = parse_system(text)
        for k in range(1, weight):
            assert not classify(system.expansion(k)).is_strongly_stable
