"""Tests for the tabled top-down (QSQR) engine."""

import pytest

from repro.engine import (CompiledEngine, EvaluationStats, Query,
                          SemiNaiveEngine, TopDownEngine)
from repro.ra import Database
from repro.workloads import chain, random_edb, reflexive_exit


class TestBasics:
    def test_bound_query_on_chain(self, tc_system, tc_chain_db):
        answers = TopDownEngine().evaluate(tc_system, tc_chain_db,
                                           Query.parse("P(n0, Y)"))
        assert len(answers) == 7

    def test_free_query(self, tc_system, tc_chain_db):
        answers = TopDownEngine().evaluate(tc_system, tc_chain_db,
                                           Query.parse("P(X, Y)"))
        assert answers == SemiNaiveEngine().evaluate(tc_system,
                                                     tc_chain_db)

    def test_boolean_query(self, tc_system, tc_chain_db):
        yes = TopDownEngine().evaluate(tc_system, tc_chain_db,
                                       Query.parse("P(n0, n6)"))
        no = TopDownEngine().evaluate(tc_system, tc_chain_db,
                                      Query.parse("P(n6, n0)"))
        assert yes == {("n0", "n6")}
        assert no == frozenset()

    def test_cyclic_data_terminates(self, tc_system):
        db = Database.from_dict({
            "A": [("a", "b"), ("b", "a")],
            "P__exit": [("a", "a"), ("b", "b")],
        })
        answers = TopDownEngine().evaluate(tc_system, db,
                                           Query.parse("P(a, Y)"))
        assert answers == {("a", "a"), ("a", "b")}

    def test_empty_exit(self, tc_system):
        db = Database.from_dict({"A": chain(3)})
        db.declare("P__exit", 2)
        assert TopDownEngine().evaluate(
            tc_system, db, Query.parse("P(n0, Y)")) == frozenset()


class TestGoalDirection:
    def test_only_reachable_subgoals_tabled(self, tc_system):
        """A bound query touches the queried chain suffix only."""
        db = Database.from_dict({
            "A": chain(20) + [("m0", "m1"), ("m1", "m2")],
            "P__exit": reflexive_exit(20) + [("m2", "m2")],
        })
        bound, free = EvaluationStats(), EvaluationStats()
        TopDownEngine().evaluate(tc_system, db, Query.parse("P(m0, Y)"),
                                 bound)
        TopDownEngine().evaluate(tc_system, db, Query.parse("P(X, Y)"),
                                 free)
        assert bound.probes < free.probes / 5

    def test_compiled_beats_interpreted_topdown(self, tc_system):
        """The paper's point: compile the top-down strategy instead of
        interpreting it."""
        db = Database.from_dict({"A": chain(30),
                                 "P__exit": reflexive_exit(30)})
        interpreted, compiled = EvaluationStats(), EvaluationStats()
        query = Query.parse("P(n0, Y)")
        a1 = TopDownEngine().evaluate(tc_system, db, query, interpreted)
        a2 = CompiledEngine().evaluate(tc_system, db, query, compiled)
        assert a1 == a2
        assert compiled.probes * 10 < interpreted.probes


class TestAgreement:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_against_seminaive_on_catalogue(self, catalogue_entry, seed):
        system = catalogue_entry.system()
        db = random_edb(system, nodes=5, tuples_per_relation=7,
                        seed=seed)
        domain = sorted(db.active_domain()) or ["c0"]
        forms = catalogue_entry.query_forms or (
            "v" * system.dimension,)
        for form in forms:
            pattern = tuple(
                domain[i % len(domain)] if ch == "d" else None
                for i, ch in enumerate(form))
            query = Query(system.predicate, pattern)
            top_down = TopDownEngine().evaluate(system, db, query)
            semi = SemiNaiveEngine().evaluate(system, db, query)
            assert top_down == semi, (catalogue_entry.name, query)
