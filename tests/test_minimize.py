"""Redundant-atom elimination (CQ minimisation) tests."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.minimize import (find_homomorphism, minimize_rule,
                                 minimize_system)
from repro.datalog.parser import parse_atom, parse_rule, parse_system
from repro.datalog.terms import Variable
from repro.engine import SemiNaiveEngine
from repro.workloads import random_edb

from .strategies import linear_rules

V = Variable


class TestFindHomomorphism:
    def test_fold_fresh_variable(self):
        hom = find_homomorphism(
            (parse_atom("A(x, w)"),), (parse_atom("A(x, z)"),),
            frozenset({V("x")}))
        assert hom == {V("w"): V("z")}

    def test_fixed_variables_must_map_to_themselves(self):
        hom = find_homomorphism(
            (parse_atom("A(x, w)"),), (parse_atom("A(y, z)"),),
            frozenset({V("x")}))
        assert hom is None

    def test_consistency_across_atoms(self):
        source = (parse_atom("A(x, w)"), parse_atom("B(w, q)"))
        target = (parse_atom("A(x, z)"), parse_atom("B(z, m)"))
        hom = find_homomorphism(source, target, frozenset({V("x")}))
        assert hom is not None
        assert hom[V("w")] == V("z")

    def test_inconsistent_sharing_fails(self):
        source = (parse_atom("A(x, w)"), parse_atom("B(w, w)"))
        target = (parse_atom("A(x, z)"), parse_atom("B(z, m)"))
        assert find_homomorphism(source, target,
                                 frozenset({V("x")})) is None

    def test_predicate_must_match(self):
        assert find_homomorphism(
            (parse_atom("A(x)"),), (parse_atom("B(x)"),),
            frozenset()) is None


class TestMinimizeRule:
    @pytest.mark.parametrize("text,expected", [
        ("P(x, y) :- A(x, z), A(x, w), P(z, y).",
         "P(x, y) :- A(x, z) ∧ P(z, y)."),
        ("P(x, y) :- A(x, z), A(x, z), P(z, y).",
         "P(x, y) :- A(x, z) ∧ P(z, y)."),
        ("P(x, y) :- A(x, z), P(z, y).",
         "P(x, y) :- A(x, z) ∧ P(z, y)."),
    ])
    def test_known_minimisations(self, text, expected):
        assert str(minimize_rule(parse_rule(text))) == expected

    def test_recursive_atom_variables_protected(self):
        # A(x, w) folds into A(x, z) ONLY when w is not the recursive
        # argument; here both feed the recursion, nothing drops
        rule = parse_rule("P(x, y, u) :- A(x, z), A(x, w), P(z, w, y).")
        assert len(minimize_rule(rule).body) == len(rule.body)

    def test_chain_subsumption(self):
        # B(z, w) folds into B(z, v) because w is unused downstream
        rule = parse_rule(
            "P(x, y) :- A(x, z), B(z, w), B(z, v), C(v, m), P(z, y).")
        minimised = minimize_rule(rule)
        predicates = [a.predicate for a in minimised.body]
        assert predicates.count("B") == 1
        assert "C" in predicates

    def test_idempotent(self):
        rule = parse_rule(
            "P(x, y) :- A(x, z), A(x, w), B(w, q), P(z, y).")
        once = minimize_rule(rule)
        assert minimize_rule(once) == once

    def test_whole_decoration_chain_folds(self):
        # B(w, q) rides on the foldable w: both disappear together
        rule = parse_rule(
            "P(x, y) :- A(x, z), A(x, w), B(w, q), B(z, m), P(z, y).")
        minimised = minimize_rule(rule)
        assert len(minimised.body) == 3  # A, B, P

    def test_exit_rule_minimised_on_head_vars_only(self):
        rule = parse_rule("P(x, y) :- E(x, y), E(x, w).")
        assert str(minimize_rule(rule)) == "P(x, y) :- E(x, y)."


class TestMinimizeSystem:
    def test_both_parts_minimised(self):
        system = parse_system("""
            P(x, y) :- A(x, z), A(x, w), P(z, y).
            P(x, y) :- E(x, y), E(x, q).
        """)
        minimised = minimize_system(system)
        assert len(minimised.recursive.rule.body) == 2
        assert len(minimised.exits[0].body) == 1

    def test_classification_can_improve(self):
        """Dropping a redundant decoration simplifies the I-graph."""
        from repro.core import classify
        system = parse_system(
            "P(x, y) :- A(x, z), A(x, w), P(z, y).")
        before = classify(system)
        after = classify(minimize_system(system))
        assert after.is_strongly_stable
        assert len(after.graph.vertices) < len(before.graph.vertices)


class TestEquivalenceProperty:
    RELAXED = settings(max_examples=30, deadline=None,
                       suppress_health_check=[HealthCheck.too_slow])

    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=4),
           st.integers(0, 2))
    def test_minimised_system_is_equivalent(self, rule, seed):
        from repro.datalog.program import RecursionSystem
        system = RecursionSystem(rule)
        minimised = minimize_system(system)
        db = random_edb(system, nodes=5, tuples_per_relation=7,
                        seed=seed)
        engine = SemiNaiveEngine()
        assert engine.evaluate(system, db) == engine.evaluate(
            minimised, db)

    @RELAXED
    @given(linear_rules(max_arity=3, max_edb_atoms=4))
    def test_minimisation_never_grows(self, rule):
        minimised = minimize_rule(rule.rule)
        assert len(minimised.body) <= len(rule.rule.body)
