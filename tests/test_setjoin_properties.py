"""Property tests: set-at-a-time plans ≡ tuple-at-a-time solving.

Two layers of agreement, both over random inputs:

* kernel level — :func:`apply_rule` equals a per-binding
  ``solve_project`` loop on random linear rules and EDBs (the exact
  contract the fixpoint engines rely on);
* engine level — both execution disciplines of the semi-naive engine
  produce the same fixpoint and the same per-round delta sizes on
  every catalogue formula (covering the paper classes A1–C) and on
  hypothesis-generated systems.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.terms import Variable
from repro.engine import (EvaluationStats, SemiNaiveEngine, apply_rule,
                          solve_project)
from repro.workloads import CATALOGUE, random_edb

from .strategies import linear_systems


@settings(max_examples=60, deadline=None)
@given(system=linear_systems(), seed=st.integers(0, 5),
       tuples=st.integers(2, 16))
def test_apply_rule_equals_solve_project_loop(system, seed, tuples):
    """Batch execution of the recursive body over random delta rows
    agrees with binding-at-a-time solve_project."""
    db = random_edb(system, nodes=5, tuples_per_relation=tuples,
                    seed=seed)
    rule = system.recursive
    body = rule.nonrecursive_atoms
    entry = rule.recursive_atom.args
    head = rule.head.args
    # delta rows: whatever the exits derive, plus junk rows (encoded
    # into storage space — the kernel contract for delta rows)
    delta = set(solve_project(db, system.exits[0].body,
                              system.exits[0].head.args))
    delta |= {db.encode_row(("zz",) * system.dimension)}

    expected: set[tuple] = set()
    for row in delta:
        binding: dict[Variable, object] = {}
        consistent = True
        for term, value in zip(entry, row):
            if binding.get(term, value) != value:
                consistent = False
                break
            binding[term] = value
        if consistent:
            expected |= solve_project(db, body, head, binding)

    assert apply_rule(db, body, entry, head, delta) == expected


@settings(max_examples=40, deadline=None)
@given(system=linear_systems(), seed=st.integers(0, 3))
def test_engine_disciplines_agree_on_random_systems(system, seed):
    db = random_edb(system, nodes=5, tuples_per_relation=10, seed=seed)
    fast_stats, slow_stats = EvaluationStats(), EvaluationStats()
    fast = SemiNaiveEngine(set_at_a_time=True).evaluate(
        system, db, stats=fast_stats)
    slow = SemiNaiveEngine(set_at_a_time=False).evaluate(
        system, db, stats=slow_stats)
    assert fast == slow
    assert fast_stats.delta_sizes == slow_stats.delta_sizes


@pytest.mark.parametrize("seed", [0, 1])
def test_engine_disciplines_agree_on_catalogue(catalogue_entry, seed):
    """Every paper formula (classes A1 through C) evaluates to the
    same fixpoint under both disciplines, round for round."""
    system = catalogue_entry.system()
    db = random_edb(system, nodes=6, tuples_per_relation=8, seed=seed)
    fast_stats, slow_stats = EvaluationStats(), EvaluationStats()
    fast = SemiNaiveEngine(set_at_a_time=True).evaluate(
        system, db, stats=fast_stats)
    slow = SemiNaiveEngine(set_at_a_time=False).evaluate(
        system, db, stats=slow_stats)
    assert fast == slow, catalogue_entry.paper_class
    assert fast_stats.delta_sizes == slow_stats.delta_sizes


def test_catalogue_spans_the_paper_classes():
    """The agreement sweep above really covers A1..A5, B and C (A2
    occurs only as a cycle component in the paper's examples)."""
    classes = {entry.paper_class for entry in CATALOGUE.values()}
    assert {"A1", "A3", "A4", "A5", "B", "C"} <= classes
    components = {c for entry in CATALOGUE.values()
                  for c in entry.paper_components.split("+")}
    assert "A2" in components
