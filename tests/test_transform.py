"""Theorems 2/4 (unfolding to stable) and bounded flattening —
including semantic equivalence checks on random databases."""

import pytest

from repro.core.classifier import classify
from repro.core.transform import to_nonrecursive, to_stable
from repro.datalog.errors import RuleValidationError
from repro.datalog.program import RecursionSystem
from repro.engine.seminaive import SemiNaiveEngine
from repro.workloads import CATALOGUE, random_edb


def answers_of(system: RecursionSystem, db) -> frozenset:
    return SemiNaiveEngine().evaluate(system, db)


class TestToStable:
    @pytest.mark.parametrize("name,unfold", [
        ("s4", 3), ("s5", 3), ("s6", 6), ("s7", 6), ("thm1", 2),
    ])
    def test_unfold_counts(self, name, unfold):
        transformed = to_stable(CATALOGUE[name].system())
        assert transformed.unfold_times == unfold

    @pytest.mark.parametrize("name", ["s4", "s5", "s6", "s7", "thm1"])
    def test_result_is_strongly_stable(self, name):
        transformed = to_stable(CATALOGUE[name].system())
        assert transformed.classification.is_strongly_stable

    @pytest.mark.parametrize("name", ["s1a", "s2a", "s3"])
    def test_already_stable_is_identity(self, name):
        transformed = to_stable(CATALOGUE[name].system())
        assert transformed.is_identity
        assert transformed.system is transformed.original

    @pytest.mark.parametrize("name", ["s8", "s9", "s10", "s11", "s12"])
    def test_nontransformable_rejected(self, name):
        """Corollary 3: only one-directional cycles transform."""
        with pytest.raises(RuleValidationError, match="not.*transformable"):
            to_stable(CATALOGUE[name].system())

    def test_exit_count_scales_with_unfolding(self):
        transformed = to_stable(CATALOGUE["s4"].system())
        assert len(transformed.system.exits) == 3

    @pytest.mark.parametrize("name", ["s4", "s5", "thm1"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equivalence_on_random_databases(self, name, seed):
        """The transformed system computes exactly the original's
        fixpoint (Theorem 2: 'logically equivalent to the original
        set')."""
        system = CATALOGUE[name].system()
        db = random_edb(system, nodes=6, tuples_per_relation=10,
                        seed=seed)
        transformed = to_stable(system)
        assert answers_of(system, db) == answers_of(transformed.system, db)

    def test_s7_equivalence_small(self):
        system = CATALOGUE["s7"].system()
        db = random_edb(system, nodes=4, tuples_per_relation=6, seed=3)
        transformed = to_stable(system)
        assert answers_of(system, db) == answers_of(transformed.system, db)


class TestToNonrecursive:
    @pytest.mark.parametrize("name,rule_count", [
        ("s8", 3),   # bound 2 -> depths 1..3
        ("s10", 3),  # bound 2
        ("s5", 3),   # bound 2 (LCM 3 - 1)
        ("s6", 6),   # bound 5
    ])
    def test_flattened_rule_count(self, name, rule_count):
        assert len(to_nonrecursive(CATALOGUE[name].system())) == rule_count

    def test_flattened_rules_are_nonrecursive(self):
        for rule in to_nonrecursive(CATALOGUE["s8"].system()):
            assert not rule.is_recursive()

    @pytest.mark.parametrize("name", ["s8", "s10", "s5", "s6"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_flattening_is_equivalent(self, name, seed):
        """Pseudo recursion: the finite set computes the same answers
        as the recursion on any database."""
        from repro.datalog.program import Program
        from repro.engine.naive import NaiveEngine
        system = CATALOGUE[name].system()
        db = random_edb(system, nodes=6, tuples_per_relation=9, seed=seed)
        recursive_answers = answers_of(system, db)
        flat_program = Program(to_nonrecursive(system))
        flat_answers = NaiveEngine().evaluate(flat_program, db)
        assert flat_answers == recursive_answers

    @pytest.mark.parametrize("name", ["s9", "s11", "s1a"])
    def test_unbounded_rejected(self, name):
        with pytest.raises(RuleValidationError, match="not bounded"):
            to_nonrecursive(CATALOGUE[name].system())


class TestClassificationReuse:
    def test_explicit_classification_accepted(self):
        system = CATALOGUE["s4"].system()
        classification = classify(system)
        transformed = to_stable(system, classification)
        assert transformed.unfold_times == classification.unfold_times
