"""Incremental maintenance: agrees with from-scratch at every step."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.parser import parse_system
from repro.engine import SemiNaiveEngine
from repro.engine.incremental import MaterializedRecursion
from repro.ra import Database
from repro.workloads import CATALOGUE, random_edb

from .strategies import linear_systems

RELAXED = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


@pytest.fixture
def tc_view():
    system = parse_system(
        "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
    db = Database.from_dict({"A": [("a", "b")], "E": [("c", "c")]})
    return MaterializedRecursion(system, db), system


class TestBasics:
    def test_initial_materialisation(self, tc_view):
        view, _ = tc_view
        assert view.rows == {("c", "c")}

    def test_insert_extends_chain(self, tc_view):
        view, _ = tc_view
        added = view.insert("A", ("b", "c"))
        assert added == {("b", "c"), ("a", "c")}
        assert ("a", "c") in view

    def test_insert_exit_fact(self, tc_view):
        view, _ = tc_view
        view.insert("A", ("b", "c"))
        added = view.insert("E", ("b", "b"))
        assert ("b", "b") in added
        assert ("a", "b") in added  # via the existing A edge

    def test_duplicate_insert_is_noop(self, tc_view):
        view, _ = tc_view
        view.insert("A", ("b", "c"))
        assert view.insert("A", ("b", "c")) == frozenset()

    def test_len_and_repr(self, tc_view):
        view, _ = tc_view
        assert len(view) == 1
        assert "P" in repr(view)

    def test_unrelated_predicate_insert(self, tc_view):
        view, _ = tc_view
        assert view.insert("Zzz", ("q",)) == frozenset()


class TestAgainstFromScratch:
    def test_chain_built_edge_by_edge(self):
        system = parse_system(
            "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
        db = Database.from_dict({"E": [("n5", "n5")]})
        view = MaterializedRecursion(system, db)
        for i in reversed(range(5)):
            view.insert("A", (f"n{i}", f"n{i + 1}"))
            scratch = SemiNaiveEngine().evaluate(system, view.database)
            assert view.rows == scratch
        assert ("n0", "n5") in view

    def test_insert_order_does_not_matter(self):
        system = parse_system(
            "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
        edges = [("a", "b"), ("b", "c"), ("c", "d")]
        forward = MaterializedRecursion(
            system, Database.from_dict({"E": [("d", "d")]}))
        backward = MaterializedRecursion(
            system, Database.from_dict({"E": [("d", "d")]}))
        for edge in edges:
            forward.insert("A", edge)
        for edge in reversed(edges):
            backward.insert("A", edge)
        assert forward.rows == backward.rows

    @pytest.mark.parametrize("name", ["s3", "s8", "s10", "s11", "s12"])
    def test_catalogue_formulas_incrementally(self, name):
        system = CATALOGUE[name].system()
        full = random_edb(system, nodes=4, tuples_per_relation=6,
                          seed=3)
        view = MaterializedRecursion(system)  # start empty
        for relation in full.relation_names:
            for row in sorted(full.rows(relation), key=repr):
                view.insert(relation, row)
        scratch = SemiNaiveEngine().evaluate(system, full)
        assert view.rows == scratch


class TestIncrementalProperty:
    @RELAXED
    @given(linear_systems(max_arity=2, max_edb_atoms=2),
           st.integers(0, 3))
    def test_stepwise_equals_scratch(self, system, seed):
        full = random_edb(system, nodes=4, tuples_per_relation=5,
                          seed=seed)
        view = MaterializedRecursion(system)
        inserted = Database()
        for relation in full.relation_names:
            for row in sorted(full.rows(relation), key=repr):
                view.insert(relation, row)
                inserted.add(relation, row)
                assert view.rows == SemiNaiveEngine().evaluate(
                    system, inserted)
