"""Tests for the RA expression optimiser."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ra import Database, evaluate, scan, select
from repro.ra.expr import (Join, Projection, Renaming,
                           UnionOp)
from repro.ra.optimize import (count_nodes, optimize, output_columns,
                               selection_depths)


@pytest.fixture
def db():
    return Database.from_dict({
        "A": [("a", "b"), ("b", "c"), ("a", "c")],
        "B": [("b", "1"), ("c", "2")],
    })


class TestOutputColumns:
    def test_scan(self):
        assert output_columns(scan("A", "x", "y")) == ("x", "y")

    def test_join_merges(self):
        expr = Join(scan("A", "x", "y"), scan("B", "y", "z"))
        assert output_columns(expr) == ("x", "y", "z")

    def test_rename_and_projection(self):
        expr = Projection(
            Renaming(scan("A", "x", "y"), (("y", "w"),)), ("w",))
        assert output_columns(expr) == ("w",)


class TestRewrites:
    def test_selection_pushes_into_join(self, db):
        expr = select(Join(scan("A", "x", "y"), scan("B", "y", "z")),
                      x="a", z="2")
        optimised = optimize(expr)
        # the selection split: x=a onto A's side, z=2 onto B's side
        assert selection_depths(optimised) != selection_depths(expr)
        assert max(selection_depths(optimised)) > 0
        assert evaluate(optimised, db) == evaluate(expr, db)

    def test_selection_through_rename(self, db):
        expr = select(Renaming(scan("A", "x", "y"), (("x", "src"),)),
                      src="a")
        optimised = optimize(expr)
        assert evaluate(optimised, db) == evaluate(expr, db)
        # the pushed selection sits below the rename
        assert selection_depths(optimised)[0] > 0

    def test_selection_distributes_over_union(self, db):
        expr = select(UnionOp(scan("A", "x", "y"), scan("B", "x", "y")),
                      x="b")
        optimised = optimize(expr)
        assert isinstance(optimised, UnionOp)
        assert evaluate(optimised, db) == evaluate(expr, db)

    def test_nested_selections_merge(self, db):
        expr = select(select(scan("A", "x", "y"), x="a"), y="b")
        optimised = optimize(expr)
        assert evaluate(optimised, db).rows == {("a", "b")}

    def test_projection_of_projection_collapses(self, db):
        expr = Projection(Projection(scan("A", "x", "y"), ("x", "y")),
                          ("y",))
        optimised = optimize(expr)
        assert count_nodes(optimised) < count_nodes(expr)
        assert evaluate(optimised, db) == evaluate(expr, db)

    def test_identity_projection_dropped(self, db):
        expr = Projection(scan("A", "x", "y"), ("x", "y"))
        assert optimize(expr) == scan("A", "x", "y")

    def test_identity_rename_dropped(self, db):
        expr = Renaming(scan("A", "x", "y"), (("x", "x"),))
        assert optimize(expr) == scan("A", "x", "y")

    def test_fixpoint_terminates_on_deep_tree(self, db):
        expr = scan("A", "x", "y")
        for _ in range(10):
            expr = Projection(expr, ("x", "y"))
        assert optimize(expr) == scan("A", "x", "y")


class TestEquivalenceOnCompiledTrees:
    """Optimising the algebra translation of compiled formulas never
    changes their answers — and pushes the σ down."""

    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_tc_terms(self, depth):
        from repro.core.algebra import term_expression
        from repro.core.compile import compile_stable
        from repro.workloads import CATALOGUE, chain, reflexive_exit
        system = CATALOGUE["s1a"].system()
        comp = compile_stable(system)
        db = Database.from_dict({"A": chain(6),
                                 "P__exit": reflexive_exit(6)})
        term = term_expression(comp, ("n0", None), depth)
        optimised = optimize(term)
        assert evaluate(optimised, db) == evaluate(term, db)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_s3_terms(self, seed):
        from repro.core.algebra import term_expression
        from repro.core.compile import compile_stable
        from repro.workloads import CATALOGUE, random_edb
        system = CATALOGUE["s3"].system()
        comp = compile_stable(system)
        db = random_edb(system, nodes=6, tuples_per_relation=10,
                        seed=seed)
        for depth in (0, 1, 2):
            term = term_expression(comp, ("c0", None, None), depth)
            optimised = optimize(term)
            assert evaluate(optimised, db) == evaluate(term, db)


class TestRandomisedEquivalence:
    RELAXED = settings(max_examples=40, deadline=None,
                       suppress_health_check=[HealthCheck.too_slow])

    @RELAXED
    @given(st.lists(st.tuples(st.sampled_from("abc"),
                              st.sampled_from("abc")), max_size=8),
           st.sampled_from("abc"), st.sampled_from("abc"))
    def test_pushdown_preserves_semantics(self, rows, x_value, z_value):
        db = Database.from_dict({"A": rows, "B": rows})
        expr = select(Join(scan("A", "x", "y"), scan("B", "y", "z")),
                      x=x_value, z=z_value)
        assert evaluate(optimize(expr), db) == evaluate(expr, db)
