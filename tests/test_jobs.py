"""The background job queue: lifecycle, pinning, expiry, HTTP API.

The first half drives :class:`~repro.jobs.JobQueue` directly — with
the worker threads deliberately poisoned where a test needs a job to
*stay* queued (epoch pinning, queued-cancel, drain) — and the second
half goes over a real socket against :class:`~repro.server.QueryServer`
so submission, polling, result streaming and cancellation are observed
exactly as a disconnecting-and-reconnecting client would.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.jobs import Job, JobQueue, JobQueueFull, JobStates, UnknownJob
from repro.metrics import MetricsRegistry
from repro.server import QueryServer
from repro.service import EpochManager, QueryService, ServiceDraining
from repro.session import DeductiveDatabase

PROGRAM = """
    P(x, y) :- A(x, z), P(z, y).
    P(x, y) :- A(x, y).
    A(a, b). A(b, c). A(c, d).
"""

CLOSURE = {("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"),
           ("b", "d"), ("c", "d")}


def make_service(program=PROGRAM, metrics=False):
    session = DeductiveDatabase(
        metrics=MetricsRegistry() if metrics else None)
    session.load(program)
    return QueryService(EpochManager(session))


def make_queue(service=None, **kwargs):
    return JobQueue(service or make_service(), **kwargs)


def poison_workers(queue: JobQueue) -> None:
    """Kill the worker threads so queued jobs stay queued."""
    for _ in queue._threads:
        queue._backlog.put(None)
    for thread in queue._threads:
        thread.join(timeout=5)


def run_one(queue: JobQueue) -> Job:
    """Mimic one worker iteration (requires poisoned workers)."""
    job = queue._backlog.get_nowait()
    with queue._lock:
        assert job.state == JobStates.QUEUED
        job.state = JobStates.RUNNING
        job.started_at = time.time()
        job._queue_wait_s = job.started_at - job.submitted_at
        queue._queued -= 1
        queue._running += 1
    queue._run_job(job)
    return job


def wait_finished(queue: JobQueue, job_id: str, timeout=10.0) -> Job:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = queue.get(job_id)
        if job.finished:
            return job
        time.sleep(0.005)
    raise AssertionError(f"job {job_id} never finished")


class TestLifecycle:
    def test_submit_runs_to_done(self):
        queue = make_queue()
        job = queue.submit("P(X, Y)")
        assert job.state == JobStates.QUEUED
        job = wait_finished(queue, job.id)
        assert job.state == JobStates.DONE
        assert set(job.result.answers) == CLOSURE
        assert job.started_at >= job.submitted_at
        assert job.finished_at >= job.started_at
        assert queue.submitted_total == 1
        assert queue.finished_total == 1
        assert queue.outcomes[JobStates.DONE] == 1

    def test_timeout_job_finishes_as_timeout(self):
        queue = make_queue()
        job = wait_finished(
            queue, queue.submit("P(X, Y)", timeout_s=0.0).id)
        assert job.state == JobStates.TIMEOUT
        assert job.error_status == 408
        assert job.result is None

    def test_row_budget_job_finishes_as_truncated(self):
        queue = make_queue()
        job = wait_finished(
            queue, queue.submit("P(X, Y)", max_rows=1).id)
        assert job.state == JobStates.TRUNCATED
        assert job.result is not None
        assert set(job.result.answers) < CLOSURE

    def test_bad_query_finishes_as_error_400(self):
        queue = make_queue()
        job = wait_finished(
            queue, queue.submit("NoSuchPredicate(X)").id)
        assert job.state == JobStates.ERROR
        assert job.error_status == 400
        assert job.error

    def test_progress_document_shape(self):
        queue = make_queue()
        job = wait_finished(queue, queue.submit("P(X, Y)").id)
        progress = job.progress()
        assert progress["rounds"] >= 1
        assert progress["rows"] >= 1
        document = job.to_dict()
        assert document["state"] == "done"
        assert document["answers"] == len(CLOSURE)
        assert document["epoch"] == 0


class TestEpochPinning:
    def test_job_sees_submit_time_snapshot(self):
        service = make_service()
        queue = make_queue(service, workers=1)
        poison_workers(queue)
        queue.submit("P(X, Y)")
        # a write batch lands *after* submission but *before* the run
        service.apply_batch(add={"A": [["d", "e"]]})
        finished = run_one(queue)
        assert finished.state == JobStates.DONE
        # the job read the pinned epoch: no tuple involves "e"
        assert set(finished.result.answers) == CLOSURE
        assert finished.result.epoch == 0
        # a fresh submission pins the post-batch epoch and sees it
        later = queue.submit("P(X, Y)")
        assert later.epoch.number == 1
        assert ("a", "e") in set(run_one(queue).result.answers)


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self):
        queue = make_queue(workers=1)
        poison_workers(queue)
        job = queue.submit("P(X, Y)")
        cancelled = queue.request_cancel(job.id)
        assert cancelled.state == JobStates.CANCELLED
        assert cancelled.finished_at is not None
        assert queue.queued == 0
        assert queue.outcomes[JobStates.CANCELLED] == 1

    def test_cancel_running_job_aborts_at_round_boundary(self):
        # a deep chain gives the fixpoint hundreds of rounds to be
        # interrupted in; the cancel lands at the next boundary
        chain = "\n".join(f"A(n{i}, n{i + 1})." for i in range(800))
        program = ("P(x, y) :- A(x, z), P(z, y).\n"
                   "P(x, y) :- A(x, y).\n" + chain)
        queue = make_queue(make_service(program))
        job = queue.submit("P(X, Y)", engine="semi-naive")
        deadline = time.monotonic() + 10
        while (queue.get(job.id).state == JobStates.QUEUED
               and time.monotonic() < deadline):
            time.sleep(0.001)
        queue.request_cancel(job.id)
        job = wait_finished(queue, job.id, timeout=30)
        assert job.state == JobStates.CANCELLED
        assert job.result is None

    def test_cancel_finished_job_is_noop(self):
        queue = make_queue()
        job = wait_finished(queue, queue.submit("P(a, Y)").id)
        again = queue.request_cancel(job.id)
        assert again.state == JobStates.DONE
        assert queue.outcomes[JobStates.CANCELLED] == 0

    def test_cancel_unknown_job_raises(self):
        with pytest.raises(UnknownJob):
            make_queue().request_cancel("job-nope")


class TestRetention:
    def test_ttl_expires_finished_jobs(self):
        queue = make_queue(ttl_s=0.2)
        job = wait_finished(queue, queue.submit("P(a, Y)").id)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                queue.get(job.id)
            except UnknownJob:
                return  # expired, as promised
            time.sleep(0.05)
        raise AssertionError("finished job never expired")

    def test_max_retained_evicts_oldest_finished(self):
        queue = make_queue(max_retained=1)
        first = wait_finished(queue, queue.submit("P(a, Y)").id)
        second = wait_finished(queue, queue.submit("P(b, Y)").id)
        retained = queue.jobs()
        assert [job.id for job in retained] == [second.id]
        with pytest.raises(UnknownJob):
            queue.get(first.id)

    def test_backlog_bound_rejects_submissions(self):
        queue = make_queue(max_queued=0)
        with pytest.raises(JobQueueFull):
            queue.submit("P(X, Y)")


class TestDrain:
    def test_drain_cancels_queued_and_blocks_intake(self):
        queue = make_queue(workers=1)
        poison_workers(queue)
        job = queue.submit("P(X, Y)")
        assert queue.drain(grace_s=1.0)
        assert queue.get(job.id).state == JobStates.CANCELLED
        with pytest.raises(ServiceDraining):
            queue.submit("P(X, Y)")


# -- over the wire ---------------------------------------------------------

@pytest.fixture()
def server():
    session = DeductiveDatabase(metrics=MetricsRegistry())
    session.load(PROGRAM)
    instance = QueryServer(session, port=0, job_workers=1,
                           drain_grace_s=3.0)
    thread = threading.Thread(target=instance.serve_forever,
                              daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.close()
    thread.join(timeout=5)


def _request(server, method, path, document=None):
    url = f"http://{server.host}:{server.port}{path}"
    data = (json.dumps(document).encode("utf-8")
            if document is not None else None)
    request = urllib.request.Request(
        url, data, {"Content-Type": "application/json"},
        method=method)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll(server, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = _request(server, "GET", f"/jobs/{job_id}")
        assert status == 200
        if body["state"] not in ("queued", "running"):
            return body
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never finished")


class TestHTTP:
    def test_async_mode_roundtrip_matches_sync(self, server):
        sync_status, sync_body = _request(
            server, "POST", "/query", {"query": "P(X, Y)"})
        assert sync_status == 200
        status, submitted = _request(
            server, "POST", "/query",
            {"query": "P(X, Y)", "mode": "async"})
        assert status == 202
        assert submitted["state"] == "queued"
        assert submitted["status_url"].startswith("/jobs/")
        final = _poll(server, submitted["id"])
        assert final["state"] == "done"
        status, result = _request(
            server, "GET", f"/jobs/{submitted['id']}/result")
        assert status == 200
        assert result["answers"] == sync_body["answers"]
        assert result["outcome"] == "ok"
        assert result["epoch"] == submitted["epoch"]

    def test_post_jobs_endpoint(self, server):
        status, body = _request(server, "POST", "/jobs",
                                {"query": "P(a, Y)"})
        assert status == 202
        final = _poll(server, body["id"])
        assert final["state"] == "done"
        assert final["answers"] == 3

    def test_jobs_listing(self, server):
        _, submitted = _request(server, "POST", "/jobs",
                                {"query": "P(a, Y)"})
        _poll(server, submitted["id"])
        status, body = _request(server, "GET", "/jobs")
        assert status == 200
        assert submitted["id"] in {job["id"] for job in body["jobs"]}

    def test_timeout_job_result_is_408(self, server):
        _, submitted = _request(
            server, "POST", "/jobs",
            {"query": "P(X, Y)", "timeout_s": 0.0})
        final = _poll(server, submitted["id"])
        assert final["state"] == "timeout"
        status, body = _request(
            server, "GET", f"/jobs/{submitted['id']}/result")
        assert status == 408
        assert body["state"] == "timeout"

    def test_truncated_job_result_streams_partial(self, server):
        _, submitted = _request(
            server, "POST", "/jobs",
            {"query": "P(X, Y)", "max_rows": 1})
        final = _poll(server, submitted["id"])
        assert final["state"] == "truncated"
        status, body = _request(
            server, "GET", f"/jobs/{submitted['id']}/result")
        assert status == 200
        assert body["truncated"] is True
        assert {tuple(row) for row in body["answers"]} < CLOSURE

    def test_running_job_result_is_409_then_cancel(self, server):
        # grow a deep chain so the async fixpoint is observably slow
        edges = [[f"n{i}", f"n{i + 1}"] for i in range(700)]
        status, _ = _request(server, "POST", "/facts",
                             {"add": {"A": edges}})
        assert status == 200
        _, submitted = _request(
            server, "POST", "/jobs",
            {"query": "P(X, Y)", "engine": "semi-naive"})
        job_id = submitted["id"]
        deadline = time.monotonic() + 10
        state = "queued"
        while state == "queued" and time.monotonic() < deadline:
            _, body = _request(server, "GET", f"/jobs/{job_id}")
            state = body["state"]
            time.sleep(0.001)
        if state == "running":
            status, body = _request(server, "GET",
                                    f"/jobs/{job_id}/result")
            assert status == 409
            assert "progress" in body
        status, body = _request(server, "DELETE", f"/jobs/{job_id}")
        assert status == 200
        assert body["cancel_requested"] is True
        final = _poll(server, job_id, timeout=30)
        # the cancel raced the fixpoint: either it landed at a round
        # boundary, or the job finished first — never anything else
        assert final["state"] in ("cancelled", "done")
        if final["state"] == "cancelled":
            status, _ = _request(server, "GET",
                                 f"/jobs/{job_id}/result")
            assert status == 409

    def test_unknown_job_routes_are_404(self, server):
        for method, path in (("GET", "/jobs/job-nope"),
                             ("GET", "/jobs/job-nope/result"),
                             ("DELETE", "/jobs/job-nope"),
                             ("GET", "/jobs/x/y/z")):
            status, _ = _request(server, method, path)
            assert status == 404

    def test_validation_rejects_malformed_fields(self, server):
        for document in ({"query": "P(X, Y)", "timeout_s": "5"},
                         {"query": "P(X, Y)", "workers": True},
                         {"query": "P(X, Y)", "max_rows": -1},
                         {"query": "P(X, Y)", "mode": "later"},
                         {"query": 42},
                         {}):
            for path in ("/query", "/jobs"):
                status, body = _request(server, "POST", path,
                                        document)
                assert status == 400, (path, document)
                assert "error" in body

    def test_healthz_and_stats_carry_job_counters(self, server):
        _, submitted = _request(server, "POST", "/jobs",
                                {"query": "P(a, Y)"})
        _poll(server, submitted["id"])
        _, health = _request(server, "GET", "/healthz")
        assert health["jobs"]["submitted_total"] >= 1
        assert health["jobs"]["outcomes"]["done"] >= 1
        _, stats = _request(server, "GET", "/stats")
        assert (stats["server"]["jobs"]["finished_total"]
                == stats["server"]["jobs"]["submitted_total"])

    def test_async_jobs_do_not_inflate_queries_served(self, server):
        _, before = _request(server, "GET", "/healthz")
        _, submitted = _request(server, "POST", "/jobs",
                                {"query": "P(X, Y)"})
        _poll(server, submitted["id"])
        _request(server, "GET", f"/jobs/{submitted['id']}/result")
        _, after = _request(server, "GET", "/healthz")
        # the sync counter reconciles per-response; jobs are counted
        # in their own ledger
        assert after["queries_served"] == before["queries_served"]
        assert after["jobs"]["submitted_total"] == (
            before["jobs"]["submitted_total"] + 1)
