"""Shared fixtures: paper systems, small databases, engine instances."""

from __future__ import annotations

import pytest

from repro.datalog import parse_system
from repro.engine import CompiledEngine, NaiveEngine, SemiNaiveEngine
from repro.ra import Database
from repro.workloads import CATALOGUE, chain


@pytest.fixture
def tc_system():
    """Transitive closure, the paper's (s1a)."""
    return parse_system("P(x, y) :- A(x, z), P(z, y).")


@pytest.fixture
def tc_chain_db():
    """A 6-edge chain with reflexive exit for transitive closure."""
    return Database.from_dict({
        "A": chain(6),
        "P__exit": [(f"n{i}", f"n{i}") for i in range(7)],
    })


@pytest.fixture(params=sorted(CATALOGUE))
def catalogue_entry(request):
    """Every formula of the paper catalogue, one at a time."""
    return CATALOGUE[request.param]


@pytest.fixture
def engines():
    """One instance of each engine."""
    return (NaiveEngine(), SemiNaiveEngine(), CompiledEngine())


def paper_system(name: str):
    """A fresh recursion system for a named catalogue entry."""
    return CATALOGUE[name].system()
