"""Unit tests for the sharded engine: partitioning, pool lifecycle,
fallback semantics, snapshots, and the CLI/session wiring."""

import pickle

import pytest

from repro.cli import main
from repro.datalog.parser import parse_system
from repro.engine import (EvaluationStats, SemiNaiveEngine,
                          ShardedSemiNaiveEngine, compile_plan,
                          partition_rows, probe_key_positions)
from repro.engine.plan import entry_layout
from repro.ra.database import Database
from repro.session import DeductiveDatabase
from repro.workloads import chain


class TestPartitioning:
    def test_probe_key_positions_transitive_closure(self, tc_system,
                                                    tc_chain_db):
        """For P(x,y) :- A(x,z), P(z,y) the first probe keys A on z —
        column 0 of the delta rows."""
        rule = tc_system.recursive
        plan = compile_plan(rule.nonrecursive_atoms,
                            rule.recursive_atom.args, rule.head.args,
                            tc_chain_db)
        layout = entry_layout(rule.recursive_atom.args)
        assert probe_key_positions(plan, layout) == (0,)

    def test_probe_key_positions_cartesian_plan_hashes_whole_row(self):
        system = parse_system("P(x, y) :- B(x), C(y), P(x, y).")
        rule = system.recursive
        db = Database.from_dict({"B": [("a",)], "C": [("b",)]})
        plan = compile_plan(rule.nonrecursive_atoms,
                            rule.recursive_atom.args, rule.head.args,
                            db)
        layout = entry_layout(rule.recursive_atom.args)
        # every body atom keys on an entry column here; build a plan
        # with no entry-bound keys instead: exit-style full evaluation
        free_plan = compile_plan(rule.nonrecursive_atoms[:1], (),
                                 rule.nonrecursive_atoms[0].args, db)
        free_layout = entry_layout(())
        assert probe_key_positions(free_plan, free_layout) == ()
        assert probe_key_positions(plan, layout) != ()

    def test_partition_is_exact_and_key_coherent(self):
        rows = [(f"n{i % 7}", i) for i in range(100)]
        shards = partition_rows(rows, (0,), 4)
        assert len(shards) == 4
        rejoined = [row for shard in shards for row in shard]
        assert sorted(rejoined) == sorted(rows)
        # rows agreeing on the key column share a shard
        home = {}
        for index, shard in enumerate(shards):
            for row in shard:
                assert home.setdefault(row[0], index) == index

    def test_single_shard_passthrough(self):
        rows = [(1,), (2,)]
        assert partition_rows(rows, (0,), 1) == [rows]

    def test_record_shards_skew(self):
        stats = EvaluationStats()
        stats.record_shards([5, 5, 5, 5])
        stats.record_shards([9, 1, 1, 1])
        stats.record_shards([])
        assert stats.shard_counts == [4, 4, 0]
        assert stats.shard_skew[0] == 1.0
        assert stats.shard_skew[1] == 3.0
        assert stats.shard_skew[2] == 1.0


class TestShardedEngine:
    def test_workers0_bit_identical(self, tc_system, tc_chain_db):
        seq_stats, sh_stats = EvaluationStats(), EvaluationStats()
        seq = SemiNaiveEngine().evaluate(tc_system, tc_chain_db,
                                         stats=seq_stats)
        sharded = ShardedSemiNaiveEngine(workers=0).evaluate(
            tc_system, tc_chain_db, stats=sh_stats)
        assert sharded == seq
        assert sh_stats.delta_sizes == seq_stats.delta_sizes
        assert sh_stats.probes == seq_stats.probes
        assert sh_stats.shard_counts  # the partitioned path really ran

    def test_worker_pool_round(self, tc_system, tc_chain_db):
        stats = EvaluationStats()
        engine = ShardedSemiNaiveEngine(workers=2, min_parallel_rows=1)
        answers = engine.evaluate(tc_system, tc_chain_db, stats=stats)
        assert answers == SemiNaiveEngine().evaluate(tc_system,
                                                     tc_chain_db)
        assert stats.workers == 2
        assert stats.pool_fallbacks == 0
        assert stats.shard_counts
        assert engine._pool is None  # torn down with the fixpoint

    def test_small_deltas_skip_the_pool(self, tc_system, tc_chain_db):
        stats = EvaluationStats()
        ShardedSemiNaiveEngine(workers=2).evaluate(  # default threshold
            tc_system, tc_chain_db, stats=stats)
        assert stats.sequential_rounds == stats.rounds - 1
        assert not stats.shard_counts

    def test_pool_unavailable_falls_back(self, tc_system, tc_chain_db,
                                         monkeypatch):
        monkeypatch.setattr(ShardedSemiNaiveEngine, "_ensure_pool",
                            lambda self: None)
        stats = EvaluationStats()
        answers = ShardedSemiNaiveEngine(
            workers=2, min_parallel_rows=1).evaluate(
            tc_system, tc_chain_db, stats=stats)
        assert answers == SemiNaiveEngine().evaluate(tc_system,
                                                     tc_chain_db)
        assert stats.pool_fallbacks == stats.rounds - 1 > 0

    def test_pool_death_falls_back(self, tc_system, tc_chain_db):
        class BrokenPool:
            terminated = False

            def map(self, fn, items):
                raise RuntimeError("worker died")

            def terminate(self):
                self.terminated = True

            def join(self):
                pass

        broken = BrokenPool()
        engine = ShardedSemiNaiveEngine(workers=2, min_parallel_rows=1)
        engine._ensure_pool = lambda: engine._pool
        stats = EvaluationStats()

        original_begin = engine._begin_fixpoint

        def begin(system, database, run_stats):
            original_begin(system, database, run_stats)
            engine._pool = broken

        engine._begin_fixpoint = begin
        answers = engine.evaluate(tc_system, tc_chain_db, stats=stats)
        assert answers == SemiNaiveEngine().evaluate(tc_system,
                                                     tc_chain_db)
        assert stats.pool_fallbacks >= 1
        assert broken.terminated  # the dead pool was reaped

    def test_max_rounds_cap_respected(self, tc_system, tc_chain_db):
        seq_stats, sh_stats = EvaluationStats(), EvaluationStats()
        seq = SemiNaiveEngine().evaluate(tc_system, tc_chain_db,
                                         stats=seq_stats, max_rounds=2)
        sharded = ShardedSemiNaiveEngine(workers=0).evaluate(
            tc_system, tc_chain_db, stats=sh_stats, max_rounds=2)
        assert sharded == seq
        assert sh_stats.delta_sizes == seq_stats.delta_sizes

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedSemiNaiveEngine(workers=-1)

    def test_shards_default_tracks_workers(self):
        assert ShardedSemiNaiveEngine(workers=3).shards == 3
        assert ShardedSemiNaiveEngine(workers=0).shards == 4
        assert ShardedSemiNaiveEngine(workers=2, shards=8).shards == 8


class TestSnapshot:
    def test_pickle_roundtrip_preserves_rows_and_versions(self):
        db = Database.from_dict({"A": chain(5)})
        db.add("A", ("extra", "row"))
        clone = pickle.loads(pickle.dumps(db))
        assert clone.rows("A") == db.rows("A")
        assert clone.arity("A") == 2
        assert clone.version("A") == db.version("A")

    def test_pickle_drops_derived_structures(self):
        db = Database.from_dict({"A": chain(5)})
        db.hash_table("A", (0,))
        list(db.match("A", ("n0", None)))
        clone = pickle.loads(pickle.dumps(db))
        assert clone._hash_tables == {}
        assert clone._indexes == {}
        # and they rebuild on demand
        assert set(clone.match("A", ("n0", None))) == {("n0", "n1")}


PROGRAM = """\
P(x, y) :- A(x, z), P(z, y).
P(x, y) :- A(x, y).
A(a, b).
A(b, c).
"""


class TestCliWorkers:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "tc.dl"
        path.write_text(PROGRAM, encoding="utf-8")
        return str(path)

    def test_run_sharded_engine(self, program_file, capsys):
        assert main(["run", program_file, "--engine", "sharded",
                     "--workers", "0"]) == 0
        out = capsys.readouterr().out
        assert "P(a, c)" in out

    def test_workers_implies_sharded(self, program_file, capsys):
        assert main(["run", program_file, "--engine", "semi-naive",
                     "--workers", "0"]) == 0
        assert "P(a, c)" in capsys.readouterr().out

    def test_workers_rejected_for_other_engines(self, program_file,
                                                capsys):
        assert main(["run", program_file, "--engine", "compiled",
                     "--workers", "2"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestSessionWorkers:
    @pytest.fixture
    def ddb(self):
        session = DeductiveDatabase()
        session.load("""
            anc(x, y) :- parent(x, z), anc(z, y).
            anc(x, y) :- parent(x, y).
            parent(ann, bea).
            parent(bea, cal).
        """)
        return session

    def test_sharded_engine_by_name(self, ddb):
        assert ddb.query("anc(ann, Y)", engine="sharded") == \
            ddb.query("anc(ann, Y)")

    def test_workers_parameter_selects_sharding(self, ddb):
        stats = EvaluationStats()
        answers = ddb.query("anc(X, Y)", stats=stats, workers=0)
        assert answers == ddb.query("anc(X, Y)")
        assert stats.engine == "sharded"
