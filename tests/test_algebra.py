"""Compiled stable formulas as executable relational algebra.

These tests pin the semantics of every translation step and then
cross-check the full ∪_k evaluation against the compiled engine —
the compiled formula *is* algebra, as the paper intends.
"""

import pytest

from repro.core.algebra import (algebraic_answers, atom_expression,
                                chain_step_expression,
                                conjunction_expression, exit_expression,
                                filter_expression, term_expression)
from repro.core.compile import compile_stable
from repro.datalog.parser import parse_atom, parse_system
from repro.datalog.terms import Variable
from repro.engine import CompiledEngine, Query
from repro.ra import Database, evaluate
from repro.workloads import CATALOGUE, chain, random_edb, reflexive_exit

V = Variable


@pytest.fixture
def db():
    return Database.from_dict({
        "A": [("a", "b"), ("b", "c"), ("a", "a")],
        "B": [("b",), ("c",)],
    })


class TestAtomExpression:
    def test_columns_named_after_variables(self, db):
        rel = evaluate(atom_expression(parse_atom("A(x, y)")), db)
        assert rel.columns == ("x", "y")
        assert len(rel) == 3

    def test_repeated_variable_selects_diagonal(self, db):
        rel = evaluate(atom_expression(parse_atom("A(x, x)")), db)
        assert rel.rows == {("a",)}

    def test_unary_atom(self, db):
        rel = evaluate(atom_expression(parse_atom("B(y)")), db)
        assert rel.rows == {("b",), ("c",)}


class TestConjunctionExpression:
    def test_shared_variables_join(self, db):
        atoms = (parse_atom("A(x, y)"), parse_atom("A(y, z)"))
        rel = evaluate(conjunction_expression(
            atoms, (V("x"), V("z"))), db)
        assert ("a", "c") in rel
        assert ("a", "b") in rel  # via the a→a self edge

    def test_repeated_output_variable_extended(self, db):
        rel = evaluate(conjunction_expression(
            (parse_atom("B(y)"),), (V("y"), V("y"))), db)
        assert rel.rows == {("b", "b"), ("c", "c")}

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            conjunction_expression((), ())


class TestPieces:
    def test_exit_expression_columns(self):
        system = CATALOGUE["s3"].system()
        comp = compile_stable(system)
        db = random_edb(system, nodes=4, tuples_per_relation=6, seed=0)
        rel = evaluate(exit_expression(comp), db)
        assert rel.columns == ("e0", "e1", "e2")
        assert rel.rows == db.rows("P__exit")

    def test_exit_with_repeated_head_variable(self):
        system = parse_system("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, x) :- B(x).
        """)
        comp = compile_stable(system)
        db = Database.from_dict({"A": [], "B": [("v",)]})
        rel = evaluate(exit_expression(comp), db)
        assert rel.rows == {("v", "v")}

    def test_chain_step_expression(self, db):
        system = parse_system("P(x, y) :- A(x, z), P(z, y).")
        spec = compile_stable(system).spec_at(0)
        rel = evaluate(chain_step_expression(spec, "s", "t"), db)
        assert rel.columns == ("s", "t")
        assert rel.rows == db.rows("A")

    def test_filter_expression(self):
        system = parse_system("P(x, y) :- A(x, z), B(y, w), P(z, y).")
        spec = compile_stable(system).spec_at(1)
        db = Database.from_dict({"A": [], "B": [("ok", "w1")]})
        rel = evaluate(filter_expression(spec, "v"), db)
        assert rel.columns == ("v",)
        assert rel.rows == {("ok",)}


class TestTermExpression:
    def test_depth_zero_is_selected_exit(self):
        system = CATALOGUE["s1a"].system()
        comp = compile_stable(system)
        db = Database.from_dict({"A": chain(4),
                                 "P__exit": reflexive_exit(4)})
        rel = evaluate(term_expression(comp, ("n1", None), 0), db)
        assert rel.rows == {("n1", "n1")}

    def test_depth_k_walks_k_steps(self):
        system = CATALOGUE["s1a"].system()
        comp = compile_stable(system)
        db = Database.from_dict({"A": chain(6),
                                 "P__exit": reflexive_exit(6)})
        for k in range(4):
            rel = evaluate(term_expression(comp, ("n0", None), k), db)
            assert rel.rows == {("n0", f"n{k}")}

    def test_fully_bound_query_gates(self):
        system = CATALOGUE["s1a"].system()
        comp = compile_stable(system)
        db = Database.from_dict({"A": chain(4),
                                 "P__exit": reflexive_exit(4)})
        hit = evaluate(term_expression(comp, ("n0", "n2"), 2), db)
        miss = evaluate(term_expression(comp, ("n2", "n0"), 2), db)
        assert hit.rows == {("n0", "n2")}
        assert miss.is_empty


class TestAgainstEngine:
    """The union of terms equals the compiled engine's answers."""

    CASES = [
        ("s1a", ("n0", None)),
        ("s1a", (None, "n3")),
        ("s1a", (None, None)),
        ("s2a", ("n0", None)),
        ("s2a", (None, None)),
    ]

    @pytest.mark.parametrize("name,pattern", CASES)
    def test_chain_database(self, name, pattern):
        system = CATALOGUE[name].system()
        comp = compile_stable(system)
        from repro.workloads import chain_edb
        db = chain_edb(system, 6)
        algebraic = algebraic_answers(comp, pattern, db, max_depth=8)
        engine = CompiledEngine().evaluate(system, db,
                                           Query("P", pattern))
        assert algebraic == engine

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_s3_random_database(self, seed):
        system = CATALOGUE["s3"].system()
        comp = compile_stable(system)
        db = random_edb(system, nodes=6, tuples_per_relation=10,
                        seed=seed)
        domain = sorted(db.active_domain())
        for pattern in ((domain[0], None, None), (None, None, None)):
            algebraic = algebraic_answers(comp, pattern, db,
                                          max_depth=18)
            engine = CompiledEngine().evaluate(system, db,
                                               Query("P", pattern))
            assert algebraic == engine

    def test_transformed_system_runs_as_algebra(self):
        """Unfold (s4) to stable, then execute the result as algebra."""
        from repro.core import to_stable
        system = CATALOGUE["s4"].system()
        transformed = to_stable(system)
        comp = compile_stable(transformed.system,
                              transformed.classification)
        db = random_edb(system, nodes=5, tuples_per_relation=8, seed=7)
        pattern = (None, None, None)
        algebraic = algebraic_answers(comp, pattern, db, max_depth=10)
        engine = CompiledEngine().evaluate(system, db,
                                           Query("P", pattern))
        assert algebraic == engine
