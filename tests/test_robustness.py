"""Robustness: unusual but legal values, shapes, and inputs."""

from repro.datalog.parser import parse_program, parse_system
from repro.engine import (CompiledEngine, Query, SemiNaiveEngine,
                          TopDownEngine)
from repro.ra import Database


class TestValueTypes:
    def test_integer_constants_flow_through(self, tc_system):
        db = Database.from_dict({
            "A": [(1, 2), (2, 3)],
            "P__exit": [(3, 3)],
        })
        answers = CompiledEngine().evaluate(tc_system, db,
                                            Query.parse("P(1, Y)"))
        assert answers == {(1, 3)}

    def test_mixed_types_never_unify(self, tc_system):
        db = Database.from_dict({
            "A": [(1, "1"), ("1", 2)],
            "P__exit": [(2, 2), ("1", "1")],
        })
        # 1 (int) steps to "1" (str) which steps to 2 (int)
        answers = SemiNaiveEngine().evaluate(tc_system, db,
                                             Query.parse("P(1, Y)"))
        assert (1, 2) in answers

    def test_unicode_constants(self, tc_system):
        db = Database.from_dict({
            "A": [("Δ", "λ"), ("λ", "Ω")],
            "P__exit": [("Ω", "Ω")],
        })
        answers = CompiledEngine().evaluate(
            tc_system, db, Query("P", ("Δ", None)))
        assert ("Δ", "Ω") in answers

    def test_tuple_valued_constants(self, tc_system):
        db = Database.from_dict({
            "A": [((1, 2), (3, 4))],
            "P__exit": [((3, 4), (3, 4))],
        })
        answers = SemiNaiveEngine().evaluate(
            tc_system, db, Query("P", ((1, 2), None)))
        assert ((1, 2), (3, 4)) in answers


class TestDegenerateShapes:
    def test_unary_recursive_predicate(self):
        system = parse_system("""
            reach(x) :- edge(y, x), reach(y).
            reach(x) :- start(x).
        """)
        db = Database.from_dict({
            "edge": [("a", "b"), ("b", "c")],
            "start": [("a",)],
        })
        for engine in (SemiNaiveEngine(), CompiledEngine(),
                       TopDownEngine()):
            answers = engine.evaluate(system, db,
                                      Query.all_free("reach", 1))
            assert answers == {("a",), ("b",), ("c",)}

    def test_empty_database_everywhere(self, tc_system):
        db = Database()
        for engine in (SemiNaiveEngine(), CompiledEngine(),
                       TopDownEngine()):
            assert engine.evaluate(tc_system, db,
                                   Query.parse("P(a, Y)")) == frozenset()

    def test_constants_absent_from_domain(self, tc_system, tc_chain_db):
        answers = CompiledEngine().evaluate(
            tc_system, tc_chain_db, Query.parse("P(nowhere, Y)"))
        assert answers == frozenset()

    def test_self_loop_data(self, tc_system):
        db = Database.from_dict({
            "A": [("a", "a")],
            "P__exit": [("a", "a")],
        })
        for engine in (SemiNaiveEngine(), CompiledEngine()):
            answers = engine.evaluate(tc_system, db,
                                      Query.parse("P(a, Y)"))
            assert answers == {("a", "a")}


class TestLargePrograms:
    def test_many_facts_parse(self):
        lines = [f"A(n{i}, n{i + 1})." for i in range(500)]
        program = parse_program("\n".join(lines))
        assert len(program.facts) == 500

    def test_long_rule_body(self):
        atoms = ", ".join(f"R{i}(x{i}, x{i + 1})" for i in range(20))
        system = parse_system(
            f"P(x0, y) :- {atoms}, P(x20, y).")
        from repro.core import classify
        result = classify(system)
        # a weight-1 rotational cycle through a 20-relation chain
        assert result.is_transformable


class TestPropositionalGuards:
    """0-ary atoms act as global on/off switches for the recursion."""

    def make(self):
        system = parse_system("""
            P(x, y) :- A(x, z), Enabled, P(z, y).
            P(x, y) :- E(x, y).
        """)
        db = Database.from_dict({"A": [("a", "b"), ("b", "c")],
                                 "E": [("c", "c")]})
        return system, db

    def test_guard_present_allows_recursion(self):
        system, db = self.make()
        db.add("Enabled", ())
        for engine in (SemiNaiveEngine(), CompiledEngine(),
                       TopDownEngine()):
            answers = engine.evaluate(system, db,
                                      Query.parse("P(a, Y)"))
            assert answers == {("a", "c")}, engine.name

    def test_guard_absent_blocks_recursion(self):
        system, db = self.make()
        for engine in (SemiNaiveEngine(), CompiledEngine()):
            assert engine.evaluate(
                system, db, Query.parse("P(a, Y)")) == frozenset()

    def test_guard_does_not_affect_classification(self):
        from repro.core import classify
        system, _ = self.make()
        assert classify(system).is_strongly_stable
