"""Unit tests for the benchmark harness."""

from repro.bench import POINT_HEADERS, run_point
from repro.engine import Query
from repro.ra import Database
from repro.workloads import CATALOGUE, chain, reflexive_exit


def make_point():
    system = CATALOGUE["s1a"].system()
    db = Database.from_dict({"A": chain(8),
                             "P__exit": reflexive_exit(8)})
    return run_point("chain-8", system, db, Query.parse("P(n0, Y)"))


class TestRunPoint:
    def test_all_engines_run_and_agree(self):
        point = make_point()
        assert set(point.runs) == {"naive", "semi-naive", "compiled"}
        assert point.agreed

    def test_speedup_direction(self):
        point = make_point()
        assert point.speedup("naive", "compiled") > 1.0

    def test_row_shape(self):
        point = make_point()
        row = point.row()
        assert len(row) == len(POINT_HEADERS)
        assert row[0] == "chain-8"
        assert row[-1] == "yes"

    def test_engine_subset(self):
        system = CATALOGUE["s1a"].system()
        db = Database.from_dict({"A": chain(4),
                                 "P__exit": reflexive_exit(4)})
        point = run_point("small", system, db, Query.parse("P(n0, Y)"),
                          engines=("semi-naive", "compiled"))
        assert set(point.runs) == {"semi-naive", "compiled"}

    def test_timings_recorded(self):
        point = make_point()
        assert all(run.seconds >= 0 for run in point.runs.values())
