"""The bench-regression gate: green on parity, red on regression.

``benchmarks/compare.py`` guards CI against performance regressions by
comparing each workload's machine-relative speedup against the
committed baselines.  These tests exercise the gate's verdicts end to
end through ``main()`` — including the required failure when a
baseline is hand-inflated, which is how the gate itself is known to
work.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_COMPARE = Path(__file__).resolve().parent.parent / "benchmarks" / "compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE)
compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare)


def _write(directory: Path, speedups: dict[str, float]) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    payload = {"bench": "demo", "results": [
        {"workload": name, "speedup": value}
        for name, value in speedups.items()]}
    (directory / "BENCH_demo.json").write_text(
        json.dumps(payload), encoding="utf-8")


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "baselines", tmp_path / "output"


def _run(dirs, capsys):
    baselines, output = dirs
    code = compare.main(["--baselines", str(baselines),
                         "--current", str(output)])
    return code, capsys.readouterr().out


class TestVerdicts:
    def test_parity_passes(self, dirs, capsys):
        _write(dirs[0], {"tc": 4.0})
        _write(dirs[1], {"tc": 4.0})
        code, out = _run(dirs, capsys)
        assert code == 0
        assert "| ok |" in out

    def test_small_drop_within_threshold_passes(self, dirs, capsys):
        _write(dirs[0], {"tc": 4.0})
        _write(dirs[1], {"tc": 3.1})  # -22.5% < 25% threshold
        assert _run(dirs, capsys)[0] == 0

    def test_inflated_baseline_goes_red(self, dirs, capsys):
        """The acceptance check: hand-inflate the baseline and the job
        must fail."""
        _write(dirs[0], {"tc": 40.0})  # nobody measured this
        _write(dirs[1], {"tc": 4.0})
        code, out = _run(dirs, capsys)
        assert code == 1
        assert "regression" in out

    def test_missing_workload_goes_red(self, dirs, capsys):
        _write(dirs[0], {"tc": 4.0, "gone": 2.0})
        _write(dirs[1], {"tc": 4.0})
        code, out = _run(dirs, capsys)
        assert code == 1
        assert "missing" in out

    def test_new_workload_is_informational(self, dirs, capsys):
        _write(dirs[0], {"tc": 4.0})
        _write(dirs[1], {"tc": 4.0, "fresh": 9.9})
        code, out = _run(dirs, capsys)
        assert code == 0
        assert "| new |" in out

    def test_absent_current_run_goes_red(self, dirs, capsys):
        _write(dirs[0], {"tc": 4.0})
        dirs[1].mkdir()
        assert _run(dirs, capsys)[0] == 1

    def test_no_baselines_is_an_error(self, dirs, capsys):
        dirs[0].mkdir()
        dirs[1].mkdir()
        assert _run(dirs, capsys)[0] == 1


class TestTable:
    def test_markdown_shape_and_delta(self, dirs, capsys):
        _write(dirs[0], {"tc": 4.0})
        _write(dirs[1], {"tc": 5.0})
        _, out = _run(dirs, capsys)
        assert "| bench | workload | baseline | current |" in out
        assert "| 4.00x | 5.00x | +25% | ok |" in out

    def test_repo_baselines_match_their_own_shape(self, capsys):
        """The committed baselines must always satisfy the gate when
        compared against themselves."""
        baselines = _COMPARE.parent / "baselines"
        code = compare.main(["--baselines", str(baselines),
                             "--current", str(baselines)])
        assert code == 0
        assert "**regression**" not in capsys.readouterr().out
