"""Unit tests for paper-style pretty-printing."""

from repro.datalog.parser import parse_rule, parse_system
from repro.datalog.pretty import expansion_trace, format_rule, subscript


class TestSubscript:
    def test_plain_name_untouched(self):
        assert subscript("z") == "z"

    def test_trailing_digits(self):
        assert subscript("x1") == "x₁"
        assert subscript("y23") == "y₂₃"

    def test_renaming_suffix(self):
        assert subscript("z_1") == "z₁"
        assert subscript("u_12") == "u₁₂"

    def test_double_renaming_gets_comma(self):
        assert subscript("x1_2") == "x₁,₂"
        assert subscript("z_1_2") == "z₁,₂"


class TestFormatRule:
    def test_variables_subscripted_predicates_untouched(self):
        rule = parse_rule("P(x1, y) :- A(x1, z_1), P(z_1, y).")
        assert format_rule(rule) == \
            "P(x₁, y) :- A(x₁, z₁) ∧ P(z₁, y)."

    def test_unsubscripted_mode(self):
        rule = parse_rule("P(x1, y) :- A(x1, z), P(z, y).")
        assert "x1" in format_rule(rule, subscripted=False)


class TestExpansionTrace:
    def test_trace_lines(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, u), B(u, y).")
        trace = expansion_trace(system, 2)
        lines = trace.splitlines()
        assert lines[0].startswith("expansion 1:")
        assert lines[1].startswith("expansion 2:")
        assert "z₁" in lines[1]

    def test_trace_matches_paper_s2c(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, u), B(u, y).")
        trace = expansion_trace(system, 2)
        assert ("P(x, y) :- A(x, z) ∧ A(z, z₁) ∧ P(z₁, u₁) ∧ "
                "B(u₁, u) ∧ B(u, y).") in trace
