"""Witness databases: constructive tightness of the rank bounds."""

import pytest

from repro.core import classify
from repro.core.witness import (freeze_body, witness_database,
                                witness_rank)
from repro.datalog.parser import parse_atom
from repro.engine import SemiNaiveEngine
from repro.workloads import CATALOGUE

BOUNDED = ["s8", "s10", "s5", "s6"]


class TestFreezeBody:
    def test_variables_become_fresh_constants(self):
        body = (parse_atom("A(x, y)"), parse_atom("B(y, z)"))
        db, assignment = freeze_body(body)
        assert db.count("A") == 1 and db.count("B") == 1
        assert len(assignment) == 3
        (a_row,) = db.rows("A")
        (b_row,) = db.rows("B")
        assert a_row[1] == b_row[0]  # shared variable y stays shared

    def test_repeated_variable_same_constant(self):
        db, _ = freeze_body((parse_atom("A(x, x)"),))
        (row,) = db.rows("A")
        assert row[0] == row[1]


class TestWitnessDatabase:
    def test_depth_one_freezes_the_exit_rule(self):
        system = CATALOGUE["s8"].system()
        db = witness_database(system, 1)
        assert db.count("P__exit") == 1
        assert db.count("A") == 0

    def test_depth_three_has_two_rule_layers(self):
        system = CATALOGUE["s8"].system()
        db = witness_database(system, 3)
        assert db.count("A") == 2
        assert db.count("P__exit") == 1


class TestTightness:
    """The paper's bounds are *tight*: a witness attains each."""

    @pytest.mark.parametrize("name", BOUNDED)
    def test_witness_attains_the_bound(self, name):
        system = CATALOGUE[name].system()
        bound = classify(system).rank_bound
        assert witness_rank(system, bound + 1) == bound

    @pytest.mark.parametrize("name", BOUNDED)
    def test_witness_never_exceeds_the_bound(self, name):
        """Even on the witness for a deeper expansion, the rank stays
        within the bound — boundedness is database-independent."""
        system = CATALOGUE[name].system()
        bound = classify(system).rank_bound
        deeper = witness_rank(system, bound + 3)
        assert deeper <= bound

    def test_unbounded_witnesses_grow(self):
        """For the unbounded (s1a), deeper witnesses reach deeper
        ranks — no finite bound exists."""
        system = CATALOGUE["s1a"].system()
        ranks = [witness_rank(system, depth) for depth in (2, 4, 6)]
        assert ranks == [1, 3, 5]

    def test_witness_supports_expected_head_tuple(self):
        """The frozen head tuple is actually derived."""
        system = CATALOGUE["s8"].system()
        flattened = system.exit_expansion(3)
        db, assignment = freeze_body(tuple(flattened.body))
        answers = SemiNaiveEngine().evaluate(system, db)
        frozen_head = tuple(assignment[t] for t in flattened.head.args)
        assert frozen_head in answers
