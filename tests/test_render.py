"""Unit tests for figure rendering (ASCII and DOT)."""

from repro.datalog.parser import parse_rule, parse_system
from repro.graphs.igraph import build_igraph
from repro.graphs.render import ascii_figure, ascii_resolution, to_dot
from repro.graphs.resolution import resolution_graph


class TestAsciiFigure:
    def test_lists_vertices_and_edges(self):
        text = ascii_figure(build_igraph(parse_rule(
            "P(x, y) :- A(x, z), P(z, y).")), title="Figure 1(a)")
        assert text.splitlines()[0] == "Figure 1(a)"
        assert "vertices: x, y, z" in text
        assert "x →(1) z" in text
        assert "self-loop" in text
        assert "x —(A)— z" in text

    def test_subscripts_rendered(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, u), B(u, y).")
        text = ascii_figure(resolution_graph(system, 2).graph)
        assert "z₁" in text
        assert "u₁" in text

    def test_deterministic(self):
        rule = parse_rule(
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).")
        assert (ascii_figure(build_igraph(rule))
                == ascii_figure(build_igraph(rule)))


class TestAsciiResolution:
    def test_frontier_line(self):
        system = parse_system("P(x, y) :- A(x, z), P(z, u), B(u, y).")
        text = ascii_resolution(resolution_graph(system, 2))
        assert "frontier" in text
        assert "z₁, u₁" in text


class TestDot:
    def test_dot_syntax_and_content(self):
        dot = to_dot(build_igraph(parse_rule(
            "P(x, y) :- A(x, z), P(z, y).")), name="s1a")
        assert dot.startswith("graph s1a {")
        assert dot.rstrip().endswith("}")
        assert '"x" -- "z" [dir=forward' in dot
        assert 'label="A"' in dot


class TestAsciiReduced:
    def test_hyper_cluster_shown(self):
        from repro.graphs import ascii_reduced, reduce_graph
        reduced = reduce_graph(build_igraph(parse_rule(
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).")))
        text = ascii_reduced(reduced, "reduced:")
        assert "hyper[ABC]" in text
        assert "dependent" in text

    def test_compressed_edge_shown(self):
        from repro.graphs import ascii_reduced, reduce_graph
        reduced = reduce_graph(build_igraph(parse_rule(
            "P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).")))
        text = ascii_reduced(reduced)
        assert "—[ABC]—" in text and "(compressed)" in text

    def test_decoration_shown(self):
        from repro.graphs import ascii_reduced, reduce_graph
        reduced = reduce_graph(build_igraph(parse_rule(
            "P(x, y) :- A(x, z), B(y, w), P(z, y).")))
        text = ascii_reduced(reduced)
        assert "decoration[B] at y" in text
