"""Unit tests for the indexed fact store."""

import pytest

from repro.datalog.atoms import fact
from repro.datalog.errors import EvaluationError
from repro.datalog.parser import parse_program
from repro.ra.database import Database


@pytest.fixture
def db():
    return Database.from_dict({
        "A": [("a", "b"), ("b", "c"), ("a", "c")],
        "N": [("a",), ("b",)],
    })


@pytest.fixture
def raw_db():
    """Same contents, but on the raw (intern=False) storage path, so
    hash-table keys are the stored values themselves."""
    return Database.from_dict({
        "A": [("a", "b"), ("b", "c"), ("a", "c")],
        "N": [("a",), ("b",)],
    }, intern=False)


class TestConstruction:
    def test_from_atoms(self):
        db = Database.from_atoms([fact("A", "a", "b"), fact("A", "a", "b")])
        assert db.count("A") == 1

    def test_from_atoms_rejects_non_ground(self):
        """Regression: an atom with a variable argument used to be
        silently truncated to its constant prefix."""
        from repro.datalog.atoms import Atom
        from repro.datalog.errors import RuleValidationError
        from repro.datalog.terms import Constant, Variable
        atom = Atom("A", (Constant("a"), Variable("X")))
        with pytest.raises(RuleValidationError, match="not ground"):
            Database.from_atoms([atom])

    def test_from_program(self):
        program = parse_program("A(a, b).\nA(b, c).\nP(x) :- P(x).")
        db = Database.from_program(program)
        assert db.count("A") == 2

    def test_copy_is_independent(self, db):
        clone = db.copy()
        clone.add("A", ("z", "z"))
        assert db.count("A") == 3
        assert clone.count("A") == 4


class TestMutation:
    def test_add_reports_novelty(self, db):
        assert db.add("A", ("x", "y"))
        assert not db.add("A", ("x", "y"))

    def test_bulk_counts_new_rows(self, db):
        assert db.bulk("A", [("a", "b"), ("q", "q")]) == 1

    def test_arity_enforced(self, db):
        with pytest.raises(EvaluationError, match="arity"):
            db.add("A", ("only-one",))

    def test_declare_registers_empty_relation(self):
        db = Database()
        db.declare("P", 2)
        assert db.rows("P") == frozenset()
        assert db.arity("P") == 2


class TestRemoval:
    def test_remove_reports_presence(self, db):
        assert db.remove("A", ("a", "b"))
        assert not db.remove("A", ("a", "b"))
        assert not db.remove("missing", ("a", "b"))

    def test_remove_updates_match_index(self, db):
        list(db.match("A", ("a", None)))  # force index build
        db.remove("A", ("a", "b"))
        assert set(db.match("A", ("a", None))) == {("a", "c")}

    def test_bulk_remove_counts_removed_rows(self, db):
        assert db.bulk_remove("A", [("a", "b"), ("zz", "zz")]) == 1
        assert db.count("A") == 2

    def test_bulk_remove_invalidates_hash_tables(self, raw_db):
        """Cached hash tables must never serve deleted rows — the
        version counter has to move on removal exactly as on
        insertion."""
        db = raw_db
        before = db.hash_table("A", (0,))
        assert ("a", "b") in before["a"]
        db.bulk_remove("A", [("a", "b")])
        after = db.hash_table("A", (0,))
        assert ("a", "b") not in after.get("a", [])
        assert ("a", "c") in after["a"]

    def test_remove_only_bulk_bumps_version_once(self, db):
        version = db.version("A")
        db.bulk_remove("A", [("a", "b"), ("b", "c")])
        assert db.version("A") == version + 1

    def test_bulk_with_removals_but_no_new_rows_invalidates(self, raw_db):
        """Regression: the old per-call "did I add anything" check
        skipped the version bump when a bulk batch only removed rows
        (the adds were all duplicates), leaving hash tables stale."""
        db = raw_db
        stale = db.hash_table("A", (0,))
        assert ("b", "c") in stale["b"]

        def batch():
            db.remove("A", ("b", "c"))  # removal nested in the bulk
            yield ("a", "b")            # duplicate: adds nothing

        assert db.bulk("A", batch()) == 0
        fresh = db.hash_table("A", (0,))
        assert ("b", "c") not in fresh.get("b", [])

    def test_nested_bulk_invalidates_every_dirty_relation(self, raw_db):
        """A bulk load that triggers a nested bulk on another relation
        must bump both relations' versions when the outermost call
        ends."""
        db = raw_db
        table_a = db.hash_table("A", (0,))
        table_n = db.hash_table("N", (0,))
        assert "q" not in table_n

        def batch():
            yield ("x", "y")
            db.bulk("N", [("q",)])  # nested bulk, different relation
            yield ("y", "z")

        assert db.bulk("A", batch()) == 2
        assert "q" in db.hash_table("N", (0,))
        assert "x" in db.hash_table("A", (0,))
        assert "x" not in table_a  # the stale table really was stale


class TestSnapshotPickling:
    def test_roundtrip_preserves_rows_arities_versions(self, db):
        import pickle
        clone = pickle.loads(pickle.dumps(db))
        assert clone.rows("A") == db.rows("A")
        assert clone.rows("N") == db.rows("N")
        assert clone.arity("A") == 2
        assert clone.version("A") == db.version("A")

    def test_roundtrip_drops_caches_and_rebuilds_lazily(self, db):
        import pickle
        db.hash_table("A", (0,))
        list(db.match("A", ("a", None)))
        clone = pickle.loads(pickle.dumps(db))
        assert clone.hash_builds == 0
        assert clone.index_rebuilds == 0
        # the symbol table travels with the pickle, so storage-space
        # keys survive the round trip
        key = clone.symbols.lookup("a")
        assert key is not None
        assert clone.hash_table("A", (0,))[key]
        assert clone.hash_builds == 1


class TestAccess:
    def test_rows_of_unknown_relation_is_empty(self, db):
        assert db.rows("missing") == frozenset()

    def test_match_full_wildcard(self, db):
        assert set(db.match("A", (None, None))) == db.rows("A")

    def test_match_uses_bound_positions(self, db):
        assert set(db.match("A", ("a", None))) == {("a", "b"), ("a", "c")}
        assert set(db.match("A", (None, "c"))) == {("b", "c"), ("a", "c")}
        assert set(db.match("A", ("a", "c"))) == {("a", "c")}

    def test_match_after_insert_sees_new_rows(self, db):
        list(db.match("A", ("a", None)))  # force index build
        db.add("A", ("a", "z"))
        assert ("a", "z") in set(db.match("A", ("a", None)))

    def test_has_match(self, db):
        assert db.has_match("A", ("a", None))
        assert not db.has_match("A", ("zz", None))

    def test_contains_protocol(self, db):
        assert ("A", ("a", "b")) in db
        assert ("A", ("b", "a")) not in db

    def test_relation_view(self, db):
        view = db.relation("A", ("src", "dst"))
        assert view.columns == ("src", "dst")
        assert len(view) == 3

    def test_active_domain(self, db):
        assert db.active_domain() == {"a", "b", "c"}

    def test_total_facts(self, db):
        assert db.total_facts() == 5

    def test_relation_names_sorted(self, db):
        assert db.relation_names == ("A", "N")
