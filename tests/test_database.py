"""Unit tests for the indexed fact store."""

import pytest

from repro.datalog.atoms import fact
from repro.datalog.errors import EvaluationError
from repro.datalog.parser import parse_program
from repro.ra.database import Database


@pytest.fixture
def db():
    return Database.from_dict({
        "A": [("a", "b"), ("b", "c"), ("a", "c")],
        "N": [("a",), ("b",)],
    })


class TestConstruction:
    def test_from_atoms(self):
        db = Database.from_atoms([fact("A", "a", "b"), fact("A", "a", "b")])
        assert db.count("A") == 1

    def test_from_program(self):
        program = parse_program("A(a, b).\nA(b, c).\nP(x) :- P(x).")
        db = Database.from_program(program)
        assert db.count("A") == 2

    def test_copy_is_independent(self, db):
        clone = db.copy()
        clone.add("A", ("z", "z"))
        assert db.count("A") == 3
        assert clone.count("A") == 4


class TestMutation:
    def test_add_reports_novelty(self, db):
        assert db.add("A", ("x", "y"))
        assert not db.add("A", ("x", "y"))

    def test_bulk_counts_new_rows(self, db):
        assert db.bulk("A", [("a", "b"), ("q", "q")]) == 1

    def test_arity_enforced(self, db):
        with pytest.raises(EvaluationError, match="arity"):
            db.add("A", ("only-one",))

    def test_declare_registers_empty_relation(self):
        db = Database()
        db.declare("P", 2)
        assert db.rows("P") == frozenset()
        assert db.arity("P") == 2


class TestAccess:
    def test_rows_of_unknown_relation_is_empty(self, db):
        assert db.rows("missing") == frozenset()

    def test_match_full_wildcard(self, db):
        assert set(db.match("A", (None, None))) == db.rows("A")

    def test_match_uses_bound_positions(self, db):
        assert set(db.match("A", ("a", None))) == {("a", "b"), ("a", "c")}
        assert set(db.match("A", (None, "c"))) == {("b", "c"), ("a", "c")}
        assert set(db.match("A", ("a", "c"))) == {("a", "c")}

    def test_match_after_insert_sees_new_rows(self, db):
        list(db.match("A", ("a", None)))  # force index build
        db.add("A", ("a", "z"))
        assert ("a", "z") in set(db.match("A", ("a", None)))

    def test_has_match(self, db):
        assert db.has_match("A", ("a", None))
        assert not db.has_match("A", ("zz", None))

    def test_contains_protocol(self, db):
        assert ("A", ("a", "b")) in db
        assert ("A", ("b", "a")) not in db

    def test_relation_view(self, db):
        view = db.relation("A", ("src", "dst"))
        assert view.columns == ("src", "dst")
        assert len(view) == 3

    def test_active_domain(self, db):
        assert db.active_domain() == {"a", "b", "c"}

    def test_total_facts(self, db):
        assert db.total_facts() == 5

    def test_relation_names_sorted(self, db):
        assert db.relation_names == ("A", "N")
