"""Unit tests for EDB generators and the formula catalogue."""

from repro.core.classifier import classify
from repro.datalog.parser import parse_rule
from repro.workloads import (CATALOGUE, EXTRAS, PAPER_ORDER, binary_tree,
                             chain, chain_edb, cycle, grid, paper_systems,
                             random_digraph, random_edb, random_tuples,
                             reflexive_exit)


class TestGenerators:
    def test_chain_shape(self):
        edges = chain(3)
        assert edges == [("n0", "n1"), ("n1", "n2"), ("n2", "n3")]

    def test_cycle_wraps(self):
        assert ("n2", "n0") in cycle(3)
        assert len(cycle(5)) == 5

    def test_binary_tree_node_and_edge_count(self):
        edges = binary_tree(3)
        # complete binary tree with 15 nodes has 14 edges
        assert len(edges) == 14
        children: dict[str, int] = {}
        for parent, _ in edges:
            children[parent] = children.get(parent, 0) + 1
        assert all(count == 2 for count in children.values())

    def test_random_digraph_deterministic(self):
        assert random_digraph(10, 20, seed=4) == \
            random_digraph(10, 20, seed=4)
        assert random_digraph(10, 20, seed=4) != \
            random_digraph(10, 20, seed=5)

    def test_random_digraph_edge_count(self):
        assert len(random_digraph(10, 20, seed=1)) == 20

    def test_grid_edge_count(self):
        # width*height*2 - width - height edges
        assert len(grid(3, 4)) == 3 * 4 * 2 - 3 - 4

    def test_random_tuples_arity(self):
        rows = random_tuples(5, 8, arity=3, seed=2)
        assert all(len(r) == 3 for r in rows)

    def test_reflexive_exit(self):
        rows = reflexive_exit(2, arity=3)
        assert ("n0", "n0", "n0") in rows
        assert len(rows) == 3


class TestEdbBuilders:
    def test_random_edb_covers_all_predicates(self):
        system = CATALOGUE["s12"].system()
        db = random_edb(system, nodes=5, tuples_per_relation=6, seed=0)
        assert set(db.relation_names) == {"A", "B", "C", "D", "P__exit"}

    def test_random_edb_respects_arity(self):
        system = CATALOGUE["s8"].system()
        db = random_edb(system, seed=0)
        assert db.arity("P__exit") == 4
        assert db.arity("A") == 2

    def test_chain_edb_binary_relations_share_chain(self):
        system = CATALOGUE["s2a"].system()
        db = chain_edb(system, 5)
        assert db.rows("A") == db.rows("B")
        assert db.count("A") == 5

    def test_chain_edb_reflexive_exit(self):
        system = CATALOGUE["s1a"].system()
        db = chain_edb(system, 4)
        assert ("n0", "n0") in db.rows("P__exit")
        assert db.count("P__exit") == 5

    def test_chain_edb_unary_relations_cover_nodes(self):
        system = CATALOGUE["s10"].system()
        db = chain_edb(system, 3)
        assert db.count("B") == 4


class TestCatalogue:
    def test_paper_order_complete(self):
        assert len(PAPER_ORDER) == 13
        assert all(name in CATALOGUE for name in PAPER_ORDER)

    def test_every_entry_parses_and_classifies(self, catalogue_entry):
        system = catalogue_entry.system()
        assert classify(system) is not None

    def test_paper_systems_returns_fresh_objects(self):
        first = paper_systems()
        second = paper_systems()
        assert first.keys() == second.keys()
        assert first["s3"] is not second["s3"]

    def test_extras_are_stable_recursions(self):
        anc = classify(parse_rule(EXTRAS["ancestor"]))
        sg = classify(parse_rule(EXTRAS["same_generation"]))
        assert anc.is_strongly_stable
        assert sg.is_strongly_stable

    def test_query_forms_match_arity(self, catalogue_entry):
        system = catalogue_entry.system()
        for form in catalogue_entry.query_forms:
            assert len(form) == system.dimension
