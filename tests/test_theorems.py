"""One test class per theorem of the paper, machine-checked.

Where a theorem is universally quantified, the property suite
(test_properties.py) covers random instances; here each theorem is
checked on the paper's own material plus targeted instances.
"""

import pytest

from repro.core.classes import Boundedness, ComponentClass
from repro.core.classifier import classify
from repro.core.stability import (is_semantically_stable,
                                  is_syntactically_stable)
from repro.core.transform import to_stable
from repro.datalog.parser import parse_rule
from repro.engine.seminaive import SemiNaiveEngine
from repro.workloads import CATALOGUE, random_edb


class TestTheorem1:
    """Strongly stable ⟺ disjoint unit cycles."""

    def test_forward_direction_on_unit_cycle_formulas(self):
        for name in ("s1a", "s2a", "s3", "compressed"):
            rule = CATALOGUE[name].system().recursive
            assert is_syntactically_stable(rule)
            assert is_semantically_stable(rule)

    def test_backward_direction_on_counterexample(self):
        rule = parse_rule("P(x, y) :- A(x, z), P(y, z).")
        assert not is_syntactically_stable(rule)
        assert not is_semantically_stable(rule)


class TestTheorem2:
    """A weight-n one-directional cycle stabilises every n expansions
    and unfolds to an equivalent stable formula with n exits."""

    def test_property_1_stability_at_multiples_of_n(self):
        system = CATALOGUE["s4"].system()
        for k in (3, 6):
            assert classify(system.expansion(k)).is_strongly_stable
        for k in (1, 2, 4, 5):
            assert not classify(system.expansion(k)).is_strongly_stable

    def test_property_2_equivalent_stable_system(self):
        system = CATALOGUE["s4"].system()
        transformed = to_stable(system)
        assert transformed.unfold_times == 3
        assert len(transformed.system.exits) == 3
        db = random_edb(system, nodes=5, tuples_per_relation=8, seed=11)
        engine = SemiNaiveEngine()
        assert engine.evaluate(system, db) == \
            engine.evaluate(transformed.system, db)


class TestTheorem3:
    """Disjoint combinations of permutational cycles are permutational:
    the formula returns to itself once stable."""

    def test_s6_returns_to_itself_after_lcm(self):
        system = CATALOGUE["s6"].system()
        sixth = system.expansion(6)
        # after 6 expansions the recursive atom carries the original
        # argument variables in the original order
        recursive_atom = next(a for a in sixth.body
                              if a.predicate == "P")
        assert recursive_atom.args == sixth.head.args

    def test_combination_is_still_permutational(self):
        result = classify(CATALOGUE["s6"].system())
        assert all(k.is_permutational for k in result.component_kinds)


class TestTheorem4:
    """Disjoint one-directional cycles unfold by the LCM of weights."""

    def test_s7_lcm_six(self):
        assert classify(CATALOGUE["s7"].system()).unfold_times == 6

    def test_mixed_weights_lcm(self):
        result = classify(parse_rule(
            "P(x, y, z, u, v) :- A(x, t), P(t, z, y, v, u)."))
        weights = sorted(c.cycle_weight for c in result.components)
        assert weights == [1, 2, 2]
        assert result.unfold_times == 2


class TestTheorem5:
    """Independent multi-directional cycles are not transformable."""

    @pytest.mark.parametrize("name", ["s8", "s9", "s1b"])
    def test_multi_directional_not_transformable(self, name):
        result = classify(CATALOGUE[name].system())
        assert not result.is_transformable

    def test_expansions_never_become_stable(self):
        system = CATALOGUE["s9"].system()
        for k in range(1, 7):
            assert not classify(system.expansion(k)).is_strongly_stable


class TestIoannidisTheorem:
    """Bounded ⟺ no non-zero-weight cycle (no permutational patterns);
    tight bound = max path weight."""

    def test_s8_bound_is_tight_on_witness_database(self):
        """A database realising the depth-2 derivation."""
        system = CATALOGUE["s8"].system()
        db = random_edb(system, nodes=4, tuples_per_relation=14, seed=5)
        measured = SemiNaiveEngine().measured_rank(system, db)
        assert measured <= 2

    def test_s8_rank_two_reachable(self):
        """Some database attains the bound (tightness)."""
        system = CATALOGUE["s8"].system()
        best = 0
        for seed in range(25):
            db = random_edb(system, nodes=3, tuples_per_relation=16,
                            seed=seed)
            best = max(best,
                       SemiNaiveEngine().measured_rank(system, db))
        assert best == 2

    def test_unbounded_formula_rank_grows_with_data(self):
        from repro.workloads import chain_edb
        system = CATALOGUE["s1a"].system()
        short = SemiNaiveEngine().measured_rank(
            system, chain_edb(system, 4))
        long = SemiNaiveEngine().measured_rank(
            system, chain_edb(system, 12))
        assert long > short


class TestTheorem6And11:
    """Disjoint combinations of bounded components are bounded."""

    def test_two_bounded_cycles_combined(self):
        # (s8)'s weight-0 cycle pattern duplicated over 8 positions
        result = classify(parse_rule(
            "P(x, y, z, u, x2, y2, z2, u2) :- A(x, y), B(y1, u), "
            "C(z1, u1), A2(x2, y2), B2(y3, u2), C2(z3, u3), "
            "P(z, y1, z1, u1, z2, y3, z3, u3)."))
        assert result.boundedness is Boundedness.BOUNDED

    def test_a2_a4_b_d_combination_bounded(self):
        # A4 swap (x,y) ⊕ D-ish fresh chain on z
        result = classify(parse_rule(
            "P(x, y, z) :- C(z, z1), P(y, x, z2)."))
        assert result.boundedness is Boundedness.BOUNDED

    def test_bounded_plus_unbounded_is_unbounded(self):
        result = classify(CATALOGUE["s12"].system())
        assert result.boundedness is Boundedness.UNBOUNDED


class TestTheorem7:
    """Acyclic non-trivial components: not stable (and bounded, Cor 2)."""

    def test_s10(self):
        result = classify(CATALOGUE["s10"].system())
        assert result.component_kinds == (ComponentClass.D,)
        assert not result.is_strongly_stable
        assert not result.is_transformable
        assert result.boundedness is Boundedness.BOUNDED

    def test_single_dangling_arrow(self):
        result = classify(parse_rule("P(x) :- A(x, y), P(y1)."))
        assert result.component_kinds == (ComponentClass.D,)


class TestTheorem8:
    """Dependent cycles are not transformable."""

    def test_case1_multidirectional_subcycle(self):
        result = classify(CATALOGUE["s11"].system())
        assert result.formula_class.value == "E"
        assert not result.is_transformable

    def test_case3_extra_edge_on_one_directional_cycle(self):
        # a unit cycle x→z—x with an extra undirected edge into the
        # other cycle makes both dependent
        result = classify(parse_rule(
            "P(x, y) :- A(x, z), B(y, u), C(z, u), P(z, u)."))
        assert result.formula_class.value == "E"
        assert not result.is_transformable


class TestTheorem9:
    """Mixed combinations are not transformable."""

    def test_s12_not_transformable(self):
        result = classify(CATALOGUE["s12"].system())
        assert not result.is_transformable

    def test_a_class_plus_bounded_not_transformable(self):
        result = classify(parse_rule(
            "P(x, y, z, u, v) :- A(x, y), B(y1, u), C(z1, u1), D(v, t), "
            "P(z, y1, z1, u1, t)."))
        assert str(result.formula_class) == "F"
        assert not result.is_transformable


class TestTheorem10:
    """Pure permutational formulas: tight bound LCM − 1."""

    def test_s5_bound(self):
        result = classify(CATALOGUE["s5"].system())
        assert result.rank_bound == 2

    def test_s6_bound(self):
        result = classify(CATALOGUE["s6"].system())
        assert result.rank_bound == 5

    def test_s6_bound_is_attained(self):
        """A database whose exit relation makes depth 5 productive."""
        system = CATALOGUE["s6"].system()
        best = 0
        for seed in range(8):
            db = random_edb(system, nodes=3, tuples_per_relation=10,
                            seed=seed)
            best = max(best,
                       SemiNaiveEngine().measured_rank(system, db))
        assert best == 5

    def test_rank_never_exceeds_bound(self):
        system = CATALOGUE["s6"].system()
        for seed in range(6):
            db = random_edb(system, nodes=4, tuples_per_relation=12,
                            seed=seed)
            assert SemiNaiveEngine().measured_rank(system, db) <= 5


class TestTheorem12:
    """Completeness: covered per-formula in test_classifier and on
    random rules in test_properties; here: the four component
    possibilities are mutually exclusive on a showcase formula each."""

    @pytest.mark.parametrize("name,kind", [
        ("s10", ComponentClass.D),
        ("s3", ComponentClass.A1),
        ("s8", ComponentClass.B),
        ("s11", ComponentClass.E),
    ])
    def test_component_kind(self, name, kind):
        result = classify(CATALOGUE[name].system())
        assert result.component_kinds == (kind,) * len(
            result.component_kinds)
