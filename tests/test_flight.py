"""The flight recorder: capture policy, bounded memory, concurrency,
and the torn-log-line guarantee of the JSON query logger."""

import io
import json
import threading

import pytest

from repro.flight import FlightRecorder, RequestContext, class_of
from repro.logutil import QueryLogger, valid_query_id
from repro.metrics import MetricsRegistry
from repro.session import DeductiveDatabase


def _finalize(recorder, ctx, *, duration_s=0.001, outcome="ok",
              **kwargs):
    return recorder.finalize(ctx, duration_s=duration_s,
                             outcome=outcome, engine="compiled",
                             formula_class="A2", epoch=0, answers=3,
                             **kwargs)


class TestCapturePolicy:
    def test_disabled_recorder_captures_nothing(self):
        recorder = FlightRecorder(8)
        ctx = recorder.context("q-1", query="P(a, Y)")
        assert ctx.tracer is None
        assert _finalize(recorder, ctx) is None
        assert recorder.captured_total == 0
        assert recorder.summaries() == []
        assert recorder.get("q-1") is None

    def test_forced_capture_wins_over_sampling(self):
        recorder = FlightRecorder(8, sample_rate=1.0)
        ctx = recorder.context("q-1", query="P(a, Y)", force=True)
        assert ctx.sampled  # the sampler said yes too
        assert _finalize(recorder, ctx) == "forced"
        assert recorder.forced_total == 1
        assert recorder.sampled_total == 0

    def test_slow_capture_without_sampling(self):
        recorder = FlightRecorder(8, slow_query_ms=10.0)
        fast = recorder.context("q-fast")
        slow = recorder.context("q-slow")
        assert _finalize(recorder, fast, duration_s=0.001) is None
        assert _finalize(recorder, slow, duration_s=0.5) == "slow"
        assert recorder.slow_total == 1
        assert recorder.get("q-slow")["captured_reason"] == "slow"

    def test_slow_query_log_event_emitted_even_when_sampled(self):
        stream = io.StringIO()
        log = QueryLogger(stream)
        recorder = FlightRecorder(8, sample_rate=1.0,
                                  slow_query_ms=1.0)
        ctx = recorder.context("q-1", query="P(X, Y)")
        reason = _finalize(recorder, ctx, duration_s=0.2,
                           query_log=log)
        assert reason == "sampled"  # sampling wins the attribution
        event = json.loads(stream.getvalue())
        assert event["event"] == "slow_query"
        assert event["query_id"] == "q-1"
        assert event["threshold_ms"] == 1.0

    def test_reconciliation_identity_holds(self):
        recorder = FlightRecorder(64, sample_rate=0.5,
                                  slow_query_ms=50.0, seed=7)
        for index in range(40):
            ctx = recorder.context(f"q-{index}",
                                   force=(index % 10 == 0))
            _finalize(recorder, ctx,
                      duration_s=(0.2 if index % 7 == 0 else 0.001))
        assert recorder.captured_total == (recorder.sampled_total
                                           + recorder.forced_total
                                           + recorder.slow_total)
        assert recorder.forced_total == 4

    def test_capture_counter_exported_to_registry(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(8, metrics=registry)
        _finalize(recorder, recorder.context("q-1", force=True))
        counter = registry.get("repro_traces_captured_total")
        assert counter.value(reason="forced") == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)
        with pytest.raises(ValueError):
            FlightRecorder(8, sample_rate=1.5)


class TestBoundedMemory:
    def test_eviction_is_oldest_first(self):
        recorder = FlightRecorder(3, sample_rate=1.0)
        for index in range(5):
            _finalize(recorder, recorder.context(f"q-{index}"))
        retained = [s["query_id"] for s in recorder.summaries()]
        assert retained == ["q-4", "q-3", "q-2"]  # newest first
        assert recorder.get("q-0") is None
        assert recorder.get("q-1") is None
        assert recorder.evicted_total == 2
        assert recorder.captured_total == 5

    def test_reused_id_replaces_without_eviction(self):
        recorder = FlightRecorder(2, sample_rate=1.0)
        _finalize(recorder, recorder.context("q-a"))
        _finalize(recorder, recorder.context("q-a", force=True))
        assert recorder.get("q-a")["captured_reason"] == "forced"
        assert recorder.evicted_total == 0
        assert recorder.captured_total == 2
        assert recorder.stats()["retained"] == 1


class TestSamplingDeterminism:
    def test_seeded_samplers_agree(self):
        decisions = []
        for _ in range(2):
            recorder = FlightRecorder(8, sample_rate=0.5, seed=42)
            decisions.append([
                recorder.context(f"q-{i}").sampled for i in range(64)])
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_rate_zero_and_one_are_exact(self):
        never = FlightRecorder(8, sample_rate=0.0)
        always = FlightRecorder(8, sample_rate=1.0)
        assert not any(never.context(f"q-{i}").sampled
                       for i in range(32))
        assert all(always.context(f"q-{i}").sampled
                   for i in range(32))


class TestConcurrency:
    def test_counters_and_capacity_exact_under_threads(self):
        recorder = FlightRecorder(16, sample_rate=1.0)
        per_thread = 50

        def worker(tag: int) -> None:
            for index in range(per_thread):
                ctx = recorder.context(f"q-{tag}-{index}")
                _finalize(recorder, ctx)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = recorder.stats()
        assert stats["captured_total"] == 8 * per_thread
        assert stats["captured_total"] == (stats["sampled_total"]
                                           + stats["forced_total"]
                                           + stats["slow_total"])
        assert stats["retained"] == 16
        assert stats["evicted_total"] == 8 * per_thread - 16
        assert len(recorder.summaries()) == 16

    def test_query_logger_lines_never_tear(self):
        """8 writer threads × 200 events on one stream: every line is
        one complete JSON object — the per-line lock holds."""
        stream = io.StringIO()
        log = QueryLogger(stream)
        per_thread = 200

        def worker(tag: int) -> None:
            for index in range(per_thread):
                log.log(event="query", query_id=f"q-{tag}-{index}",
                        payload="x" * 50)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 8 * per_thread
        seen = {json.loads(line)["query_id"] for line in lines}
        assert len(seen) == 8 * per_thread


class TestRequestContext:
    def test_phases_record_in_order_with_detail(self):
        ctx = RequestContext("q-1", query="P(a, Y)")
        with ctx.phase("admission"):
            pass
        with ctx.phase("engine", epoch=3):
            pass
        names = [span["name"] for span in ctx.phases]
        assert names == ["admission", "engine"]
        offsets = [span["offset_s"] for span in ctx.phases]
        assert offsets == sorted(offsets)
        assert all(span["duration_s"] >= 0 for span in ctx.phases)
        assert ctx.phases[1]["detail"] == {"epoch": 3}

    def test_tracer_allocated_only_when_capturing(self):
        assert RequestContext("q-1").tracer is None
        assert RequestContext("q-1", sampled=True).tracer.passive
        assert RequestContext("q-1", force=True).tracer.passive


class TestHelpers:
    def test_valid_query_id(self):
        assert valid_query_id("q-123")
        assert valid_query_id("client:abc_1.x")
        assert not valid_query_id("")
        assert not valid_query_id("has space")
        assert not valid_query_id("x" * 129)
        assert not valid_query_id(42)
        assert not valid_query_id("path/../traversal")

    def test_class_of_labels_and_never_raises(self):
        session = DeductiveDatabase()
        session.load("P(x, y) :- A(x, z), P(z, y).\n"
                     "P(x, y) :- A(x, y).\nA(a, b).")
        assert class_of(session, "P(a, Y)") == "A5"
        assert class_of(session, "A(a, Y)") == "edb"
        assert class_of(session, "???not a query") == "unknown"
        assert class_of(session, "") == "unknown"
