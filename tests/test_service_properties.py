"""Snapshot-isolation laws of the epoch manager.

The service's concurrency claim is all-or-nothing visibility: a
reader holding an epoch sees exactly the database state that epoch
published — a write batch applied concurrently is either entirely
invisible (the reader pinned the pre-batch epoch) or entirely visible
(the post-batch one), never a mix of the two.

Two layers pin this down:

* **deterministic** — hypothesis generates an EDB, a batch of adds
  and removals over it, for catalogue representatives of classes
  A1 … C × every engine; the pre-batch epoch must keep answering the
  pre-batch fixpoint bit-exactly after the batch lands, and the new
  epoch must answer a freshly-built post-batch session bit-exactly;
* **threaded** — reader threads race a writer publishing a chain of
  epochs; every observed answer set must equal the ground truth *of
  the epoch the reader pinned* (a torn read — part old edges, part
  new — matches no epoch's truth and fails).
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.query import Query
from repro.service import EpochManager
from repro.session import DeductiveDatabase
from repro.workloads import CATALOGUE
from repro.workloads.edb import _predicate_arities

#: one catalogue representative per paper class A1 … C
CLASS_ENTRIES = {
    "A1": "s2a", "A3": "s4", "A5": "s1a", "B": "s8", "C": "s9",
}

ENGINES = ["compiled", "semi-naive", "naive", "top-down"]

#: a small shared universe so joins connect with useful probability
NAMES = ["a", "b", "c", "d"]


def _session_for(entry_name: str, facts: dict) -> DeductiveDatabase:
    system = CATALOGUE[entry_name].system()
    session = DeductiveDatabase()
    session.add_rule(system.recursive.rule)
    for exit_rule in system.exits:
        session.add_rule(exit_rule)
    # declare every EDB predicate so empty relations are empty, not
    # unknown
    for predicate, arity in _predicate_arities(system).items():
        session._edb.declare(predicate, arity)
        if facts.get(predicate):
            session.add_facts(predicate, facts[predicate])
    return session


def _free_query(entry_name: str) -> Query:
    system = CATALOGUE[entry_name].system()
    return Query.all_free(system.predicate, system.dimension)


def _facts_strategy(entry_name: str):
    node = st.sampled_from(NAMES)
    arities = _predicate_arities(CATALOGUE[entry_name].system())
    return st.fixed_dictionaries({
        predicate: st.lists(st.tuples(*[node] * arity),
                            unique=True, max_size=6)
        for predicate, arity in sorted(arities.items())})


@pytest.mark.parametrize("entry_name", sorted(CLASS_ENTRIES.values()))
@pytest.mark.parametrize("engine", ENGINES)
class TestSnapshotIsolationDeterministic:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_epochs_see_all_or_nothing(self, entry_name, engine,
                                       data):
        initial = data.draw(_facts_strategy(entry_name),
                            label="initial")
        extra = data.draw(_facts_strategy(entry_name), label="added")
        removals = {
            predicate: (data.draw(
                st.lists(st.sampled_from(rows), unique=True,
                         max_size=len(rows)),
                label=f"removed[{predicate}]") if rows else [])
            for predicate, rows in initial.items()}
        post = {
            predicate: (sorted((set(rows) - set(removals[predicate]))
                               | set(extra[predicate])))
            for predicate, rows in initial.items()}
        query = _free_query(entry_name)

        pre_truth = frozenset(
            _session_for(entry_name, initial).query(query,
                                                    engine=engine))
        post_truth = frozenset(
            _session_for(entry_name, post).query(query,
                                                 engine=engine))

        manager = EpochManager(_session_for(entry_name, initial))
        pinned = manager.current
        assert frozenset(pinned.session.query(
            query, engine=engine)) == pre_truth

        def batch(session: DeductiveDatabase) -> None:
            for predicate, rows in removals.items():
                if rows:
                    session.remove_facts(predicate, rows)
            for predicate, rows in extra.items():
                if rows:
                    session.add_facts(predicate, rows)

        manager.apply(batch)

        # the pinned pre-batch epoch is untouched by the batch …
        assert frozenset(pinned.session.query(
            query, engine=engine)) == pre_truth
        # … and the published epoch answers the post-batch fixpoint
        assert manager.current.number == pinned.number + 1
        assert frozenset(manager.current.session.query(
            query, engine=engine)) == post_truth


class TestSnapshotIsolationThreaded:
    EDGES = [(f"n{i}", f"n{i + 1}") for i in range(8)]
    BASE = 3  # edges present at epoch 0

    @classmethod
    def _closure(cls, edges) -> frozenset:
        reach = set(edges)
        while True:
            grown = {(x, w) for (x, y) in reach
                     for (z, w) in reach if y == z} - reach
            if not grown:
                return frozenset(reach)
            reach |= grown

    @classmethod
    def _tc_session(cls, edges) -> DeductiveDatabase:
        session = DeductiveDatabase()
        session.load("P(x, y) :- A(x, z), P(z, y).\n"
                     "P(x, y) :- A(x, y).")
        session.add_facts("A", edges)
        return session

    @pytest.mark.parametrize("engine", ENGINES)
    def test_racing_readers_never_see_a_torn_epoch(self, engine):
        truths = {
            k: self._closure(self.EDGES[:self.BASE + k])
            for k in range(len(self.EDGES) - self.BASE + 1)}
        manager = EpochManager(
            self._tc_session(self.EDGES[:self.BASE]))
        done = threading.Event()
        failures: list[str] = []

        def read() -> None:
            while not done.is_set():
                epoch = manager.current
                observed = frozenset(epoch.session.query(
                    "P(X, Y)", engine=engine))
                if observed != truths[epoch.number]:
                    failures.append(
                        f"epoch {epoch.number}: saw {len(observed)} "
                        f"answers, truth has "
                        f"{len(truths[epoch.number])}")
                    return

        readers = [threading.Thread(target=read) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            for edge in self.EDGES[self.BASE:]:
                manager.apply(
                    lambda s, edge=edge: s.add_fact("A", *edge))
        finally:
            done.set()
            for thread in readers:
                thread.join(timeout=10)
        assert not failures, failures
        assert manager.current.number == len(self.EDGES) - self.BASE
