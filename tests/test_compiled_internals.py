"""White-box tests of the compiled engine's strategy internals."""

from repro.core.compile import Strategy, compile_query
from repro.datalog.parser import parse_system
from repro.engine import (CompiledEngine, EvaluationStats, Query,
                          SemiNaiveEngine)
from repro.ra import Database
from repro.workloads import CATALOGUE, chain, cycle, reflexive_exit


class TestStableStrategy:
    def test_cyclic_chain_state_detection(self):
        """The frontier on a 3-cycle revisits its state; the loop must
        stop by state repetition, not by emptiness."""
        system = CATALOGUE["s1a"].system()
        db = Database.from_dict({
            "A": cycle(3),
            "P__exit": [("n0", "n0")],
        })
        stats = EvaluationStats()
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("P(n0, Y)"),
                                            stats)
        assert answers == {("n0", "n0")}
        # the frontier cycles with period 3; a couple of extra rounds
        # at most before the state repeats
        assert stats.rounds <= 5

    def test_branching_chain_frontier(self):
        system = CATALOGUE["s1a"].system()
        db = Database.from_dict({
            "A": [("r", "l1"), ("r", "l2"), ("l1", "x1"),
                  ("l2", "x2")],
            "P__exit": [("x1", "x1"), ("x2", "x2"), ("r", "r")],
        })
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("P(r, Y)"))
        assert answers == {("r", "r"), ("r", "x1"), ("r", "x2")}

    def test_gate_blocks_deep_answers_only(self):
        """An empty free atom kills depths ≥ 1, not depth 0."""
        system = parse_system(
            "P(x, y) :- A(x, z), D(a, b), P(z, y).")
        db = Database.from_dict({
            "A": chain(3),
            "P__exit": reflexive_exit(3),
        })
        db.declare("D", 2)
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("P(n0, Y)"))
        assert answers == {("n0", "n0")}  # only the exit survives

    def test_gate_open_allows_recursion(self):
        system = parse_system(
            "P(x, y) :- A(x, z), D(a, b), P(z, y).")
        db = Database.from_dict({
            "A": chain(3),
            "D": [("k1", "k2")],
            "P__exit": reflexive_exit(3),
        })
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("P(n0, Y)"))
        assert len(answers) == 4

    def test_decorated_self_loop_filters_each_step(self):
        """B(y, w) on the self-loop position must hold at every depth
        — a value without a B-successor survives only at depth 0."""
        system = parse_system("P(x, y) :- A(x, z), B(y, w), P(z, y).")
        db = Database.from_dict({
            "A": chain(3),
            "B": [("ok", "w1")],
            "P__exit": [("n3", "ok"), ("n3", "bare")],
        })
        answers = CompiledEngine().evaluate(system, db,
                                            Query.parse("P(n0, Y)"))
        semi = SemiNaiveEngine().evaluate(system, db,
                                          Query.parse("P(n0, Y)"))
        assert answers == semi == {("n0", "ok")}


class TestTransformStrategy:
    def test_multiple_original_exits_multiply(self):
        system = parse_system("""
            P(x, y) :- A(x, z), P(y, z).
            P(x, y) :- E(x, y).
            P(x, x) :- V(x).
        """)
        compiled = compile_query(system, "dv")
        assert compiled.strategy is Strategy.TRANSFORM
        assert len(compiled.transformation.system.exits) == 4

        db = Database.from_dict({
            "A": chain(4),
            "E": [("n4", "n4")],
            "V": [("n2",)],
        })
        query = Query.parse("P(n0, Y)")
        assert CompiledEngine().evaluate(system, db, query) == \
            SemiNaiveEngine().evaluate(system, db, query)


class TestIterativeStrategy:
    def test_magic_bindings_recorded_per_adornment(self):
        system = CATALOGUE["s12"].system()
        from repro.workloads import random_edb
        db = random_edb(system, nodes=6, tuples_per_relation=12, seed=1)
        constant = sorted(db.active_domain())[0]
        engine = CompiledEngine()
        magic, unrestricted = engine._magic_bindings(
            system, db, Query("P", (constant, None, None)),
            EvaluationStats())
        assert not unrestricted
        assert frozenset({0}) in magic          # the query's form
        # after one expansion positions 1,2... the steady adornment
        assert frozenset({0, 1}) in magic

    def test_dying_bindings_mean_unrestricted(self):
        system = CATALOGUE["s9"].system()
        db = Database.from_dict({
            "A": chain(3), "B": chain(3),
            "P__exit": [("n0", "n0", "n0")],
        })
        engine = CompiledEngine()
        magic, unrestricted = engine._magic_bindings(
            system, db, Query("P", ("n0", None, None)),
            EvaluationStats())
        assert unrestricted

    def test_free_query_skips_magic(self):
        system = CATALOGUE["s11"].system()
        db = Database.from_dict({
            "A": chain(2), "B": chain(2), "C": chain(2),
            "P__exit": [("n0", "n0")],
        })
        engine = CompiledEngine()
        magic, unrestricted = engine._magic_bindings(
            system, db, Query.all_free("P", 2), EvaluationStats())
        assert unrestricted and not magic


class TestBoundedStrategy:
    def test_repeated_head_variable_conflicting_query(self):
        """Exit P(x, x) with query P(a, b) is a consistent-binding
        check: conflicting constants yield nothing."""
        system = parse_system("""
            P(x, y) :- P(y, x).
            P(x, x) :- V(x).
        """)
        db = Database.from_dict({"V": [("a",), ("b",)]})
        hit = CompiledEngine().evaluate(system, db,
                                        Query.parse("P(a, a)"))
        miss = CompiledEngine().evaluate(system, db,
                                         Query.parse("P(a, b)"))
        assert hit == {("a", "a")}
        assert miss == frozenset()
