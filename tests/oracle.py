"""An independent reference evaluator for differential testing.

The four engines share the conjunctive solver, so a bug there could
hide in engine-agreement tests.  This oracle takes a *completely
different* route: ground instantiation.  Every rule is instantiated
with every combination of active-domain constants (no unification, no
indexes, no join ordering), and the ground program is iterated to its
fixpoint.  Exponentially slower — and that's the point: it shares no
code path with the engines beyond the AST.
"""

from __future__ import annotations

from itertools import product

from repro.datalog.program import RecursionSystem
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.ra.database import Database


def _ground_rule(rule: Rule, domain: tuple) -> list[tuple]:
    """All ground instantiations: (head_row, [(pred, row), ...])."""
    variables = sorted(rule.variables, key=lambda v: v.name)
    instantiations = []
    for values in product(domain, repeat=len(variables)):
        binding = dict(zip(variables, values))

        def ground(atom):
            return tuple(
                binding[t] if isinstance(t, Variable) else t.value
                for t in atom.args)

        head_row = ground(rule.head)
        body = [(a.predicate, ground(a)) for a in rule.body]
        instantiations.append((head_row, body))
    return instantiations


def oracle_evaluate(system: RecursionSystem,
                    database: Database) -> frozenset[tuple]:
    """The full fixpoint of the recursion, by ground instantiation.

    Only usable for tiny domains (|domain|^|vars| instantiations per
    rule) — which is exactly what property tests use.
    """
    domain = tuple(sorted(database.active_domain(), key=repr))
    if not domain:
        domain = ("_",)

    facts: dict[str, set[tuple]] = {
        name: set(database.rows(name))
        for name in database.relation_names}
    target = system.predicate
    facts.setdefault(target, set())

    grounded: list[tuple] = []
    for rule in (system.recursive.rule, *system.exits):
        grounded.extend(_ground_rule(rule, domain))

    changed = True
    while changed:
        changed = False
        for head_row, body in grounded:
            if head_row in facts[target]:
                continue
            if all(row in facts.get(pred, ()) for pred, row in body):
                facts[target].add(head_row)
                changed = True
    return frozenset(facts[target])
