"""Unit tests for determined variables, adornments, binding sequences."""

import pytest

from repro.core.bindings import (adornment_from_string,
                                 adornment_to_string, all_adornments,
                                 binding_sequence, body_adornment,
                                 determined_closure)
from repro.datalog.parser import parse_rule
from repro.datalog.rules import RecursiveRule
from repro.datalog.terms import Variable
from repro.graphs.igraph import build_igraph

V = Variable


def recursive(text: str) -> RecursiveRule:
    return RecursiveRule(parse_rule(text), strict=False)


class TestAdornmentNotation:
    def test_round_trip(self):
        for pattern in ("dvv", "vdv", "ddd", "vvv", "dv"):
            parsed = adornment_from_string(pattern)
            assert adornment_to_string(parsed, len(pattern)) == pattern

    def test_bf_synonyms(self):
        assert adornment_from_string("bf") == adornment_from_string("dv")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            adornment_from_string("dxv")
        with pytest.raises(ValueError):
            adornment_from_string("")

    def test_all_adornments_count(self):
        assert len(all_adornments(3)) == 8
        assert frozenset() in all_adornments(2)
        assert frozenset({0, 1}) in all_adornments(2)


class TestDeterminedClosure:
    def test_propagates_over_undirected_edges(self):
        rule = recursive(
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).")
        graph = build_igraph(rule)
        closure = determined_closure(graph, [V("x")])
        assert closure == {V("x"), V("x1"), V("y1"), V("y")}

    def test_does_not_cross_directed_edges(self):
        rule = recursive("P(x, y) :- A(x, z), P(z, y).")
        graph = build_igraph(rule)
        closure = determined_closure(graph, [V("y")])
        assert closure == {V("y")}  # the self-loop arrow carries nothing

    def test_empty_seed(self):
        rule = recursive("P(x, y) :- A(x, z), P(z, y).")
        assert determined_closure(build_igraph(rule), []) == frozenset()


class TestBodyAdornment:
    def test_tc_stable_mapping(self):
        rule = recursive("P(x, y) :- A(x, z), P(z, y).")
        assert body_adornment(rule, frozenset({0})) == {0}
        assert body_adornment(rule, frozenset({1})) == {1}
        assert body_adornment(rule, frozenset({0, 1})) == {0, 1}
        assert body_adornment(rule, frozenset()) == frozenset()

    def test_theorem1_counterexample_shifts_position(self):
        rule = recursive("P(x, y) :- A(x, z), P(y, z).")
        assert body_adornment(rule, frozenset({0})) == {1}

    def test_s12_gains_position(self):
        rule = recursive(
            "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), "
            "P(u, v, w).")
        assert body_adornment(rule, frozenset({0})) == {0, 1}

    def test_class_d_loses_binding(self):
        rule = recursive("P(x, y) :- B(y), C(x, y1), P(x1, y1).")
        assert body_adornment(rule, frozenset({0})) == {1}
        assert body_adornment(rule, frozenset({1})) == frozenset()


class TestBindingSequence:
    def test_s12_paper_sequence(self):
        """incoming P(d,v,v) → P(d,d,v) → P(d,d,v) → … (Example 14)."""
        rule = recursive(
            "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), "
            "P(u, v, w).")
        seq = binding_sequence(rule, adornment_from_string("dvv"))
        assert seq.describe(3) == "dvv → (ddv)*"
        assert seq.state_at(0) == {0}
        assert seq.state_at(1) == {0, 1}
        assert seq.state_at(7) == {0, 1}
        assert seq.stabilises

    def test_s12_vvd_stable_from_start(self):
        """'for a query P(v,v,d), the formula is stable from the
        beginning' — the A1 component keeps position 3 bound."""
        rule = recursive(
            "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), "
            "P(u, v, w).")
        seq = binding_sequence(rule, adornment_from_string("vvd"))
        assert seq.state_at(0) == {2}
        assert seq.state_at(1) == {2}
        assert seq.persistent_positions == {2}

    def test_permutational_rotation(self):
        rule = recursive("P(x, y, z) :- P(y, z, x).")
        seq = binding_sequence(rule, adornment_from_string("dvv"))
        assert seq.period == 3
        assert seq.prefix_length == 0
        states = [adornment_to_string(seq.state_at(k), 3)
                  for k in range(4)]
        assert states == ["dvv", "vvd", "vdv", "dvv"]
        assert seq.persistent_positions == frozenset()

    def test_stable_formula_fixes_immediately(self):
        rule = recursive("P(x, y) :- A(x, z), P(z, y).")
        seq = binding_sequence(rule, adornment_from_string("dv"))
        assert seq.period == 1
        assert seq.prefix_length == 0
        assert seq.persistent_positions == {0}

    def test_s9_binding_dies(self):
        rule = recursive("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).")
        seq = binding_sequence(rule, adornment_from_string("dvv"))
        assert seq.state_at(1) == frozenset()
        assert seq.persistent_positions == frozenset()

    def test_s9_vvd_travels_then_dies(self):
        rule = recursive("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).")
        seq = binding_sequence(rule, adornment_from_string("vvd"))
        assert seq.state_at(0) == {2}
        assert seq.state_at(1) == {1}
        assert seq.state_at(2) == frozenset()
