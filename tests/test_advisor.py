"""Tests for the query-form advisor."""

import pytest

from repro.core.advisor import advise, capability_table
from repro.core.compile import Strategy
from repro.workloads import CATALOGUE


def capability_map(name: str):
    system = CATALOGUE[name].system()
    return {cap.adornment: cap for cap in advise(system)}, system


class TestStableFormulas:
    def test_tc_every_bound_form_is_full(self):
        caps, system = capability_map("s1a")
        for adornment, cap in caps.items():
            if adornment:
                assert cap.pushdown == "full", adornment
            else:
                assert cap.pushdown == "none"
            assert cap.strategy is Strategy.STABLE

    def test_s3_symmetric_forms(self):
        caps, _ = capability_map("s3")
        assert all(cap.pushdown == "full"
                   for adornment, cap in caps.items() if adornment)


class TestQueryDependentFormulas:
    def test_s12_matches_paper_discussion(self):
        """dvv stabilises after one expansion; vvd is stable from the
        beginning (Example 14)."""
        caps, _ = capability_map("s12")
        dvv = caps[frozenset({0})]
        assert dvv.pushdown == "full"
        assert dvv.binding.prefix_length == 1
        vvd = caps[frozenset({2})]
        assert vvd.pushdown == "full"
        assert vvd.binding.prefix_length == 0

    def test_s9_bindings_always_die(self):
        caps, _ = capability_map("s9")
        assert all(cap.pushdown == "none" for cap in caps.values())

    def test_s11_dependent_but_full(self):
        """s11's P(d,v) determines everything from the second
        expansion — the advisor reports full pushdown."""
        caps, _ = capability_map("s11")
        assert caps[frozenset({0})].pushdown == "full"


class TestBoundedFormulas:
    @pytest.mark.parametrize("name", ["s8", "s10", "s5", "s6"])
    def test_bounded_always_finite(self, name):
        caps, _ = capability_map(name)
        assert all(cap.pushdown == "finite" for cap in caps.values())
        assert all(cap.strategy is Strategy.BOUNDED
                   for cap in caps.values())


class TestPartialPushdown:
    def test_mixed_formula_with_dying_and_living_bindings(self):
        """One position cycles (persists), the other feeds a class-C
        component (dies): binding partially persists."""
        from repro.datalog.parser import parse_system
        system = parse_system(
            "P(x, y, z) :- R(x, t), A(y, w), B(z, q), "
            "P(t, u1, v1).")
        rows = advise(system)
        by_adornment = {cap.adornment: cap for cap in rows}
        both = by_adornment[frozenset({0, 1})]
        assert both.pushdown == "partial"
        assert both.persistent == frozenset({0})


class TestTable:
    def test_table_shape(self):
        system = CATALOGUE["s12"].system()
        table = capability_table(system)
        lines = table.splitlines()
        assert len(lines) == 2 + 8  # header + rule + 2^3 forms
        assert "dvv → (ddv)*" in table
