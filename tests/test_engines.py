"""Engine tests: each engine alone, then pairwise agreement on the
whole catalogue with several query forms."""

import pytest

from repro.datalog.parser import parse_system
from repro.engine import (CompiledEngine, EvaluationStats, NaiveEngine,
                          Query, SemiNaiveEngine)
from repro.ra import Database
from repro.workloads import CATALOGUE, chain, random_edb, reflexive_exit


class TestNaive:
    def test_transitive_closure(self, tc_system, tc_chain_db):
        answers = NaiveEngine().evaluate(tc_system, tc_chain_db)
        assert len(answers) == 7 * 8 // 2  # all i <= j pairs

    def test_query_filter(self, tc_system, tc_chain_db):
        answers = NaiveEngine().evaluate(tc_system, tc_chain_db,
                                         Query.parse("P(n0, Y)"))
        assert len(answers) == 7

    def test_edb_not_mutated(self, tc_system, tc_chain_db):
        before = tc_chain_db.total_facts()
        NaiveEngine().evaluate(tc_system, tc_chain_db)
        assert tc_chain_db.total_facts() == before

    def test_handles_multiple_exit_rules(self):
        system = parse_system("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
            P(x, x) :- V(x).
        """)
        db = Database.from_dict({"A": chain(2), "E": [("n2", "n2")],
                                 "V": [("n9",)]})
        answers = NaiveEngine().evaluate(system, db)
        assert ("n9", "n9") in answers
        assert ("n0", "n2") in answers


class TestSemiNaive:
    def test_matches_naive_on_chain(self, tc_system, tc_chain_db):
        naive = NaiveEngine().evaluate(tc_system, tc_chain_db)
        semi = SemiNaiveEngine().evaluate(tc_system, tc_chain_db)
        assert naive == semi

    def test_cyclic_data_terminates(self, tc_system):
        db = Database.from_dict({
            "A": [("a", "b"), ("b", "c"), ("c", "a")],
            "P__exit": [("a", "a"), ("b", "b"), ("c", "c")],
        })
        answers = SemiNaiveEngine().evaluate(tc_system, db)
        assert len(answers) == 9  # complete relation on 3 nodes

    def test_delta_sizes_recorded(self, tc_system, tc_chain_db):
        stats = EvaluationStats()
        SemiNaiveEngine().evaluate(tc_system, tc_chain_db, stats=stats)
        assert stats.delta_sizes[0] == 7          # exit round
        assert stats.delta_sizes[-1] == 0         # fixpoint round
        assert sum(stats.delta_sizes) == 28

    def test_measured_rank_on_chain(self, tc_system, tc_chain_db):
        assert SemiNaiveEngine().measured_rank(
            tc_system, tc_chain_db) == 6

    def test_max_rounds_truncates(self, tc_system, tc_chain_db):
        partial = SemiNaiveEngine().evaluate(tc_system, tc_chain_db,
                                             max_rounds=1)
        full = SemiNaiveEngine().evaluate(tc_system, tc_chain_db)
        assert partial < full

    def test_does_fewer_probes_than_naive(self, tc_system, tc_chain_db):
        naive_stats, semi_stats = EvaluationStats(), EvaluationStats()
        NaiveEngine().evaluate(tc_system, tc_chain_db, stats=naive_stats)
        SemiNaiveEngine().evaluate(tc_system, tc_chain_db,
                                   stats=semi_stats)
        assert semi_stats.probes < naive_stats.probes


class TestCompiled:
    def test_selective_query_does_less_work(self, tc_system):
        db = Database.from_dict({
            "A": chain(40),
            "P__exit": reflexive_exit(40),
        })
        semi_stats, comp_stats = EvaluationStats(), EvaluationStats()
        query = Query.parse("P(n0, Y)")
        semi = SemiNaiveEngine().evaluate(tc_system, db, query,
                                          semi_stats)
        comp = CompiledEngine().evaluate(tc_system, db, query, comp_stats)
        assert semi == comp
        assert comp_stats.probes < semi_stats.probes / 5

    def test_bounded_strategy_needs_no_fixpoint(self):
        system = CATALOGUE["s8"].system()
        db = random_edb(system, nodes=6, tuples_per_relation=10, seed=2)
        stats = EvaluationStats()
        answers = CompiledEngine().evaluate(
            system, db, Query.all_free("P", 4), stats)
        assert answers == SemiNaiveEngine().evaluate(system, db)

    def test_fully_bound_query(self, tc_system, tc_chain_db):
        yes = CompiledEngine().evaluate(tc_system, tc_chain_db,
                                        Query.parse("P(n0, n6)"))
        no = CompiledEngine().evaluate(tc_system, tc_chain_db,
                                       Query.parse("P(n6, n0)"))
        assert yes == {("n0", "n6")}
        assert no == frozenset()

    def test_empty_exit_relation(self, tc_system):
        db = Database.from_dict({"A": chain(3)})
        db.declare("P__exit", 2)
        assert CompiledEngine().evaluate(
            tc_system, db, Query.parse("P(n0, Y)")) == frozenset()

    def test_empty_chain_relation(self, tc_system):
        db = Database.from_dict({"P__exit": [("a", "a")]})
        answers = CompiledEngine().evaluate(tc_system, db,
                                            Query.parse("P(a, Y)"))
        assert answers == {("a", "a")}

    def test_cyclic_chain_terminates(self, tc_system):
        db = Database.from_dict({
            "A": [("a", "b"), ("b", "a")],
            "P__exit": [("a", "a"), ("b", "b")],
        })
        answers = CompiledEngine().evaluate(tc_system, db,
                                            Query.parse("P(a, Y)"))
        assert answers == {("a", "a"), ("a", "b")}


QUERY_SEEDS = [0, 1]


class TestAgreementAcrossCatalogue:
    """All three engines agree on every catalogue formula for every
    declared query form, over random databases."""

    @pytest.mark.parametrize("seed", QUERY_SEEDS)
    def test_engines_agree(self, catalogue_entry, seed):
        system = catalogue_entry.system()
        db = random_edb(system, nodes=6, tuples_per_relation=8,
                        seed=seed)
        domain = sorted(db.active_domain()) or ["c0"]
        forms = catalogue_entry.query_forms or ("v" * system.dimension,)
        for form in forms:
            pattern = tuple(domain[i % len(domain)] if ch == "d" else None
                            for i, ch in enumerate(form))
            query = Query(system.predicate, pattern)
            naive = NaiveEngine().evaluate(system, db, query)
            semi = SemiNaiveEngine().evaluate(system, db, query)
            comp = CompiledEngine().evaluate(system, db, query)
            assert naive == semi == comp, (
                f"{catalogue_entry.name} {query}: "
                f"naive={len(naive)} semi={len(semi)} comp={len(comp)}")


class TestNaiveOverPrograms:
    """NaiveEngine accepts plain multi-rule Programs (the session's
    materialiser relies on the same rule-application core)."""

    def test_two_idb_predicates(self):
        from repro.datalog import parse_program
        program = parse_program("""
            anc(x, y) :- parent(x, z), anc(z, y).
            anc(x, y) :- parent(x, y).
            named(x, y) :- anc(x, y), label(y).
        """)
        db = Database.from_dict({
            "parent": [("a", "b"), ("b", "c")],
            "label": [("c",)],
        })
        answers = NaiveEngine().evaluate(
            program, db, Query.all_free("named", 2))
        assert answers == {("a", "c"), ("b", "c")}

    def test_query_selects_the_predicate(self):
        from repro.datalog import parse_program
        program = parse_program("""
            p(x) :- e(x).
            q(x) :- p(x), f(x).
        """)
        db = Database.from_dict({"e": [("1",), ("2",)],
                                 "f": [("2",)]})
        assert NaiveEngine().evaluate(
            program, db, Query.all_free("q", 1)) == {("2",)}
        assert NaiveEngine().evaluate(
            program, db, Query.all_free("p", 1)) == {("1",), ("2",)}
