"""Differential testing against the ground-instantiation oracle.

The oracle shares no evaluation code with the engines (no unification,
no conjunctive solver, no indexes), so agreement here rules out whole
families of shared-code bugs.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (CompiledEngine, NaiveEngine, Query,
                          SemiNaiveEngine, TopDownEngine)
from repro.ra import Database
from repro.workloads import CATALOGUE, chain

from .oracle import oracle_evaluate
from .strategies import linear_systems

TINY = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def tiny_edb(system, seed: int) -> Database:
    """A very small database (the oracle is exponential)."""
    from repro.workloads import random_edb
    return random_edb(system, nodes=3, tuples_per_relation=4, seed=seed)


class TestKnownCases:
    def test_transitive_closure(self):
        system = CATALOGUE["s1a"].system()
        db = Database.from_dict({
            "A": chain(3),
            "P__exit": [(f"n{i}", f"n{i}") for i in range(4)],
        })
        oracle = oracle_evaluate(system, db)
        assert oracle == SemiNaiveEngine().evaluate(system, db)
        assert len(oracle) == 10

    @pytest.mark.parametrize("name", ["s5", "s8", "s10", "s11"])
    def test_paper_examples_tiny(self, name):
        system = CATALOGUE[name].system()
        db = tiny_edb(system, seed=1)
        assert oracle_evaluate(system, db) == \
            SemiNaiveEngine().evaluate(system, db)


class TestDifferentialProperty:
    @TINY
    @given(linear_systems(max_arity=2, max_edb_atoms=2),
           st.integers(0, 2))
    def test_all_engines_match_the_oracle(self, system, seed):
        db = tiny_edb(system, seed)
        expected = oracle_evaluate(system, db)
        query = Query.all_free(system.predicate, system.dimension)
        for engine in (NaiveEngine(), SemiNaiveEngine(),
                       CompiledEngine(), TopDownEngine()):
            assert engine.evaluate(system, db, query) == expected, \
                engine.name
