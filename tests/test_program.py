"""Unit tests for programs, recursion systems, and expansion/unfolding.

The expansion tests pin down the paper's own derivations: (s2c) is the
second expansion of (s2a), and (s4c)/(s4d) are the second and third
expansions of (s4a) up to variable renaming.
"""

import pytest

from repro.datalog.atoms import fact
from repro.datalog.errors import RuleValidationError
from repro.datalog.parser import parse_program, parse_rule, parse_system
from repro.datalog.program import Program, RecursionSystem


class TestProgram:
    def test_facts_must_be_ground(self):
        with pytest.raises(RuleValidationError, match="ground"):
            Program(facts=(parse_rule("P(x) :- P(x).").head,))

    def test_with_facts_appends(self):
        program = Program()
        extended = program.with_facts([fact("A", "a", "b")])
        assert len(extended.facts) == 1
        assert len(program.facts) == 0

    def test_recursive_rules_found(self):
        program = parse_program("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
        """)
        assert len(program.recursive_rules()) == 1

    def test_str_round_trips_through_parser(self):
        program = parse_program("P(x, y) :- A(x, y).\nA(a, b).")
        again = parse_program(str(program).replace("∧", ","))
        assert again.rules == program.rules
        assert again.facts == program.facts


class TestRecursionSystemValidation:
    def test_exit_arity_checked(self):
        with pytest.raises(RuleValidationError, match="arity"):
            RecursionSystem(parse_rule("P(x, y) :- A(x, z), P(z, y)."),
                            (parse_rule("P(x) :- E(x)."),))

    def test_exit_predicate_checked(self):
        with pytest.raises(RuleValidationError, match="head must be"):
            RecursionSystem(parse_rule("P(x, y) :- A(x, z), P(z, y)."),
                            (parse_rule("Q(x, y) :- E(x, y)."),))

    def test_exit_must_be_nonrecursive(self):
        with pytest.raises(RuleValidationError, match="non-recursive"):
            RecursionSystem(parse_rule("P(x, y) :- A(x, z), P(z, y)."),
                            (parse_rule("P(x, y) :- P(x, y)."),))

    def test_exit_must_be_range_restricted(self):
        with pytest.raises(RuleValidationError, match="range"):
            RecursionSystem(parse_rule("P(x, y) :- A(x, z), P(z, y)."),
                            (parse_rule("P(x, y) :- E(x)."),))

    def test_edb_predicates_collected(self):
        system = parse_system("""
            P(x, y) :- A(x, z), P(z, u), B(u, y).
            P(x, y) :- E(x, y).
        """)
        assert system.edb_predicates == {"A", "B", "E"}
        assert system.exit_predicates == {"E"}


class TestExpansion:
    def test_first_expansion_is_the_rule(self, tc_system):
        assert tc_system.expansion(1) == tc_system.recursive.rule

    def test_paper_s2c(self):
        """The 2nd expansion of (s2a) is the paper's (s2c)."""
        system = parse_system("P(x, y) :- A(x, z), P(z, u), B(u, y).")
        expanded = str(system.expansion(2))
        assert expanded == ("P(x, y) :- A(x, z) ∧ A(z, z_1) ∧ "
                            "P(z_1, u_1) ∧ B(u_1, u) ∧ B(u, y).")

    def test_expansion_k_has_k_body_copies(self, tc_system):
        for k in (1, 2, 3, 5):
            expanded = tc_system.expansion(k)
            assert len(expanded.body_atoms_of("A")) == k
            assert len(expanded.body_atoms_of("P")) == 1

    def test_expansion_preserves_head(self, tc_system):
        for k in (2, 4):
            assert tc_system.expansion(k).head == tc_system.recursive.head

    def test_expansion_level_must_be_positive(self, tc_system):
        with pytest.raises(ValueError):
            tc_system.expansion(0)

    def test_s4_third_expansion_matches_s4d_shape(self):
        """(s4d): nine EDB atoms, three per relation."""
        system = parse_system(
            "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), "
            "P(y1, y2, y3).")
        third = system.expansion(3)
        for predicate in "ABC":
            assert len(third.body_atoms_of(predicate)) == 3


class TestExitExpansion:
    def test_depth_one_is_the_exit_rule(self, tc_system):
        assert tc_system.exit_expansion(1) == tc_system.exits[0]

    def test_depth_two_splices_exit(self, tc_system):
        assert str(tc_system.exit_expansion(2)) == \
            "P(x, y) :- A(x, z) ∧ P__exit(z, y)."

    def test_paper_s8_flattening(self):
        """(s8a') and (s8b') are the exit expansions of depths 2, 3."""
        system = parse_system(
            "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), "
            "P(z, y1, z1, u1).")
        first = system.exit_expansion(2)
        assert len(first.body_atoms_of("P__exit")) == 1
        assert len(first.body_atoms_of("A")) == 1
        second = system.exit_expansion(3)
        assert len(second.body_atoms_of("A")) == 2
        assert len(second.body_atoms_of("P__exit")) == 1

    def test_nonrecursive_result(self, tc_system):
        for depth in (1, 2, 3):
            assert not tc_system.exit_expansion(depth).is_recursive()


class TestUnfolded:
    def test_unfold_once_is_identity(self, tc_system):
        assert tc_system.unfolded(1) is tc_system

    def test_unfold_requires_positive_count(self, tc_system):
        with pytest.raises(ValueError):
            tc_system.unfolded(0)

    def test_unfold_three_matches_theorem2_construction(self):
        """Unfolding (s4a) 3 times: recursive = (s4d), exits = (s4b),
        (s4a'), (s4c')."""
        system = parse_system(
            "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), "
            "P(y1, y2, y3).")
        unfolded = system.unfolded(3)
        assert unfolded.recursive.rule == system.expansion(3)
        assert len(unfolded.exits) == 3
        assert unfolded.exits[0] == system.exit_expansion(1)
        assert unfolded.exits[1] == system.exit_expansion(2)
        assert unfolded.exits[2] == system.exit_expansion(3)

    def test_unfold_multiplies_exits_per_original_exit(self):
        system = parse_system("""
            P(x, y) :- A(x, z), P(z, y).
            P(x, y) :- E(x, y).
            P(x, x) :- V(x).
        """)
        unfolded = system.unfolded(2)
        assert len(unfolded.exits) == 4  # 2 originals × 2 depths
