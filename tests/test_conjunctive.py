"""Unit tests for the selection-first conjunctive-query solver."""

from repro.datalog.parser import parse_atom
from repro.datalog.terms import Variable
from repro.engine.conjunctive import (pattern_of, satisfiable, solve,
                                      solve_project)
from repro.engine.stats import EvaluationStats
from repro.ra.database import Database

V = Variable


def atoms(*texts: str):
    return [parse_atom(t) for t in texts]


def make_db():
    # intern=False: these unit tests hand the solver raw values as
    # bindings and read raw values out of solutions; the solver's
    # contract is storage space, which raw mode makes the value space
    return Database.from_dict({
        "A": [("a", "b"), ("b", "c"), ("c", "d")],
        "B": [("b", "x1"), ("c", "x2")],
        "N": [("a",)],
    }, intern=False)


class TestPatternOf:
    def test_binding_fills_pattern(self):
        pattern = pattern_of(parse_atom("A(x, y)"), {V("x"): "a"})
        assert pattern == ("a", None)

    def test_constants_pass_through(self):
        pattern = pattern_of(parse_atom("A(x, 'k')"), {})
        assert pattern == (None, "k")


class TestSolve:
    def test_two_hop_join(self):
        solutions = list(solve(make_db(), atoms("A(x, y)", "A(y, z)")))
        found = {(s[V("x")], s[V("z")]) for s in solutions}
        assert found == {("a", "c"), ("b", "d")}

    def test_initial_binding_restricts(self):
        solutions = list(solve(make_db(), atoms("A(x, y)"),
                               {V("x"): "a"}))
        assert len(solutions) == 1
        assert solutions[0][V("y")] == "b"

    def test_repeated_variable_within_atom(self):
        db = Database.from_dict({"A": [("a", "a"), ("a", "b")]},
                                intern=False)
        solutions = list(solve(db, atoms("A(x, x)")))
        assert [s[V("x")] for s in solutions] == ["a"]

    def test_cross_atom_sharing(self):
        solutions = list(solve(make_db(), atoms("A(x, y)", "B(y, w)")))
        assert {s[V("w")] for s in solutions} == {"x1", "x2"}

    def test_empty_conjunction_has_one_solution(self):
        assert list(solve(make_db(), [])) == [{}]

    def test_unsatisfiable(self):
        assert list(solve(make_db(), atoms("A(x, x)"))) == []

    def test_probe_counting(self):
        stats = EvaluationStats()
        list(solve(make_db(), atoms("A(x, y)", "A(y, z)"), stats=stats))
        assert stats.probes > 0

    def test_selection_first_order_reduces_probes(self):
        """Binding x should make the A(x,y) atom be probed first and
        keep probe counts far below the unbound evaluation."""
        bound_stats = EvaluationStats()
        list(solve(make_db(), atoms("A(x, y)", "A(y, z)"),
                   {V("x"): "a"}, stats=bound_stats))
        free_stats = EvaluationStats()
        list(solve(make_db(), atoms("A(x, y)", "A(y, z)"),
                   stats=free_stats))
        assert bound_stats.probes < free_stats.probes


class TestSolveProject:
    def test_projects_onto_head_terms(self):
        rows = solve_project(make_db(), atoms("A(x, y)", "A(y, z)"),
                             (V("x"), V("z")))
        assert rows == {("a", "c"), ("b", "d")}

    def test_derived_counter(self):
        stats = EvaluationStats()
        solve_project(make_db(), atoms("A(x, y)"), (V("x"),),
                      stats=stats)
        assert stats.derived == 3


class TestSatisfiable:
    def test_existence_check(self):
        assert satisfiable(make_db(), atoms("A(x, y)", "B(y, w)"))
        assert not satisfiable(make_db(), atoms("A(x, x)"))

    def test_short_circuits(self):
        stats = EvaluationStats()
        satisfiable(make_db(), atoms("A(x, y)"), stats=stats)
        assert stats.probes == 1
