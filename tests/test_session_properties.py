"""Property tests for the session facade: it must agree with the
engines run directly, for random systems and random facts."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Query, SemiNaiveEngine
from repro.session import DeductiveDatabase
from repro.workloads import random_edb

from .strategies import linear_systems

RELAXED = settings(max_examples=30, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


class TestSessionAgreement:
    @RELAXED
    @given(linear_systems(max_arity=3, max_edb_atoms=3),
           st.integers(0, 3), st.integers(0, 7))
    def test_session_query_equals_direct_engine(self, system, seed,
                                                mask):
        db = random_edb(system, nodes=5, tuples_per_relation=7,
                        seed=seed)
        session = DeductiveDatabase()
        session.add_rule(system.recursive.rule)
        for exit_rule in system.exits:
            session.add_rule(exit_rule)
        for name in db.relation_names:
            session.add_facts(name, db.rows(name))

        domain = sorted(db.active_domain()) or ["c0"]
        pattern = tuple(
            domain[i % len(domain)]
            if (mask >> i) & 1 and i < system.dimension else None
            for i in range(system.dimension))
        query = Query(system.predicate, pattern)

        direct = SemiNaiveEngine().evaluate(system, db, query)
        via_session = session.query(query)
        assert via_session == direct

    @RELAXED
    @given(linear_systems(max_arity=2, max_edb_atoms=2),
           st.integers(0, 2))
    def test_incremental_facts_refresh_answers(self, system, seed):
        db = random_edb(system, nodes=4, tuples_per_relation=5,
                        seed=seed)
        session = DeductiveDatabase()
        session.add_rule(system.recursive.rule)
        for exit_rule in system.exits:
            session.add_rule(exit_rule)
        names = sorted(db.relation_names)
        # load half the facts, query, load the rest, query again:
        # the final answers must equal the all-at-once evaluation
        for name in names:
            rows = sorted(db.rows(name), key=repr)
            session.add_facts(name, rows[: len(rows) // 2])
        query = Query.all_free(system.predicate, system.dimension)
        session.query(query)  # forces a materialisation in between
        for name in names:
            rows = sorted(db.rows(name), key=repr)
            session.add_facts(name, rows[len(rows) // 2:])
        final = session.query(query)
        assert final == SemiNaiveEngine().evaluate(system, db, query)
