"""Vectorised semi-naive delta rounds over the columnar seam.

The paper's thesis is that a formula's *class* dictates its cheapest
evaluation plan; for the linear-recursion classes the compiled plan is
a single fused probe per round (:class:`~repro.engine.plan.FusedTail`),
which makes the whole delta loop a dense-integer pipeline: under
dictionary encoding the frontier is two flat int columns, the stored
relation is a CSR adjacency (:meth:`Database.dense_column_csr`), and a
round is gather + concatenate + sorted-unique dedup — no Python tuple
is built until the single boundary conversion back into the engine's
answer set.

Two interchangeable kernels implement the round:

* **numpy** (when importable): ``np.repeat``/fancy-indexing gathers
  over zero-copy ``np.frombuffer`` views of the CSR arrays, packed
  ``a * N + b`` int64 keys deduplicated with ``np.unique`` +
  ``np.searchsorted`` against the sorted seen-key vector;
* **stub** (always available): the same CSR walk in pure Python over
  ``array('q')`` vectors with a set-based dedup — answers, stats and
  traces bit-identical to the numpy kernel (property-tested in
  ``tests/test_vector_properties.py``), speed on par with the
  row-bucket fused path it replaces.

The loop preserves the counting discipline of the pure-Python path
*exactly*: per round one plan-cache touch, one ``record_batch``, one
``hash_lookups`` tick and a ``hash_builds`` delta around the CSR
fetch, ``probes``/``derived`` equal to the rows the probe emits, and
the same trace spans and deadline checks at round boundaries.  Plans
whose shape the certificate rejects (multi-step bodies, non-identity
entry layouts, raw databases) continue on the tuple-set path inside
:func:`run_delta_loop` with identical counters, so callers never see
a seam.
"""

from __future__ import annotations

import os
from array import array

from ..datalog.errors import EvaluationError
from ..datalog.terms import Variable
from ..ra.database import Database
from .plan import FusedTail, compile_plan, entry_layout
from .setjoin import apply_rule, execute_plan
from .stats import EvaluationStats
from .trace import Tracer

try:  # optional dependency: ``pip install repro[vector]``
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the stub leg
    _np = None

#: True when the numpy kernel can run in this process.
HAVE_NUMPY = _np is not None

#: The recognised ``backend=`` values: ``auto`` and ``vector`` prefer
#: the vectorised kernel with per-shape fallback, ``python`` pins the
#: tuple-set loop (the ablation/debug escape hatch).
BACKENDS = ("auto", "vector", "python")

#: Test/bench hook: run the pure-python stub even when numpy imports
#: (set the ``REPRO_VECTOR_STUB`` environment variable, or call
#: :func:`force_stub`).  Parity suites flip this to prove the two
#: kernels bit-identical on one machine.
_FORCE_STUB = os.environ.get("REPRO_VECTOR_STUB", "") not in ("", "0")


def force_stub(enabled: bool) -> None:
    """Force (or stop forcing) the stub kernel — test/bench hook."""
    global _FORCE_STUB
    _FORCE_STUB = bool(enabled)


def active_backend() -> str:
    """The kernel a vector round would run: ``"numpy"`` or ``"stub"``."""
    return "numpy" if HAVE_NUMPY and not _FORCE_STUB else "stub"


def numpy_version() -> str | None:
    """The importable numpy's version string, None when absent
    (surfaced by ``repro --version`` and ``repro_build_info``)."""
    return _np.__version__ if _np is not None else None


def validate_backend(backend: str) -> str:
    """*backend* verbatim, or raise on an unrecognised name."""
    if backend not in BACKENDS:
        raise EvaluationError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)}")
    return backend


def eligible(database: Database, entry_terms) -> bool:
    """Cheap structural pre-check, no plan compile: could the delta
    loop for *entry_terms* possibly vectorise on *database*?

    The certificate proper (:class:`~repro.engine.plan.FusedTail` on a
    single-step plan) is read off the round-1 compile inside
    :func:`run_delta_loop`; this filter only rules out shapes that can
    never qualify — raw databases and recursive calls that are not two
    distinct variables (the identity entry layout every linear
    recursion has).
    """
    if not database.interned:
        return False
    if len(entry_terms) != 2:
        return False
    first, second = entry_terms
    return (isinstance(first, Variable) and isinstance(second, Variable)
            and first != second)


# -- round kernels --------------------------------------------------------


class ColumnarTotal:
    """The numpy kernel's fixpoint product: the completed total as
    per-column flat int64 vectors, *distinct rows by construction*
    (split out of the sorted packed-key seen-set).

    The engines' answer boundary recognises this shape and keeps it
    columnar end-to-end: query constants filter by vector mask
    (:meth:`filter`), ``len`` never builds a row, and ``decode=True``
    hands the columns straight to
    :meth:`~repro.ra.answers.AnswerSet.from_columns` — the single
    boundary conversion the module docstring promises happens lazily,
    only when someone exercises row semantics.  :meth:`rows` is the
    eager escape hatch for ``decode=False`` callers that feed storage
    rows back into a database.
    """

    __slots__ = ("_vectors",)

    def __init__(self, vectors: tuple) -> None:
        self._vectors = vectors

    def __len__(self) -> int:
        return int(self._vectors[0].size) if self._vectors else 0

    def filter(self, query) -> "ColumnarTotal":
        """The rows matching *query*'s (storage-encoded) constants —
        one boolean mask per bound position, no row materialised."""
        if query is None:
            return self
        mask = None
        for position, code in enumerate(query.pattern):
            if code is None:
                continue
            hit = self._vectors[position] == code
            mask = hit if mask is None else mask & hit
        if mask is None:
            return self
        return ColumnarTotal(tuple(vector[mask]
                                   for vector in self._vectors))

    def columns(self) -> tuple:
        """The ``array('q')`` view :meth:`AnswerSet.from_columns`
        consumes — one buffer copy per column, no per-row objects."""
        columns = []
        for vector in self._vectors:
            column = array("q")
            column.frombytes(_np.ascontiguousarray(
                vector, dtype=_np.int64).tobytes())
            columns.append(column)
        return tuple(columns)

    def rows(self) -> frozenset[tuple]:
        """The row-set form, for callers that need storage tuples."""
        return frozenset(zip(*(vector.tolist()
                               for vector in self._vectors)))


class _NumpyState:
    """Frontier + seen-set state of the numpy kernel.

    The frontier is a pair of int64 columns; the seen set is one
    sorted int64 vector of packed ``a * N + b`` keys, where *N* is the
    symbol-table size at loop entry (codes are dense, so the packing
    is injective and ``N**2`` fits int64 for any realistic dictionary
    — :func:`run_delta_loop` checks and falls back otherwise).
    """

    def __init__(self, total: set, delta: set, n_symbols: int) -> None:
        self._n = n_symbols
        self._seen = _np.sort(_np.fromiter(
            (a * n_symbols + b for a, b in total),
            dtype=_np.int64, count=len(total)))
        self._delta_a = _np.fromiter((row[0] for row in delta),
                                     dtype=_np.int64, count=len(delta))
        self._delta_b = _np.fromiter((row[1] for row in delta),
                                     dtype=_np.int64, count=len(delta))

    @property
    def n_delta(self) -> int:
        return int(self._delta_a.size)

    @property
    def total_size(self) -> int:
        return int(self._seen.size)

    def round(self, spec: FusedTail, csr: tuple) -> tuple[int, int]:
        """One vectorised round; returns (rows emitted, fresh rows)."""
        values, offsets = csr
        vals = _np.frombuffer(values, dtype=_np.int64)
        offs = _np.frombuffer(offsets, dtype=_np.int64)
        n_buckets = offs.size - 1
        columns = (self._delta_a, self._delta_b)
        probe = columns[spec.slot]
        carry = columns[spec.keep]
        # Codes interned after the CSR build are out of range and in
        # no stored row — mask them to empty buckets (the vector twin
        # of the row path's IndexError slow lane).
        valid = probe < n_buckets
        safe = _np.where(valid, probe, 0)
        starts = offs[safe]
        counts = _np.where(valid, offs[safe + 1] - starts, 0)
        emitted = int(counts.sum())
        if emitted:
            # CSR multi-gather: for frontier row i, indices
            # starts[i] .. starts[i]+counts[i] into the value vector.
            ends = _np.cumsum(counts)
            index = (_np.arange(emitted, dtype=_np.int64)
                     - _np.repeat(ends - counts, counts)
                     + _np.repeat(starts, counts))
            new_column = vals[index]
            carried = _np.repeat(carry, counts)
            if spec.new_first:
                packed = new_column * self._n + carried
            else:
                packed = carried * self._n + new_column
            # sorted-unique by hand: np.unique pays an order of
            # magnitude over the raw sort for the bookkeeping this
            # loop never uses (inverse/index/count machinery)
            packed.sort()
            keep = _np.empty(packed.size, dtype=bool)
            keep[0] = True
            _np.not_equal(packed[1:], packed[:-1], out=keep[1:])
            fresh = packed[keep]
            if self._seen.size:
                at = _np.searchsorted(self._seen, fresh)
                known = _np.zeros(fresh.size, dtype=bool)
                inside = at < self._seen.size
                known[inside] = self._seen[at[inside]] == fresh[inside]
                fresh = fresh[~known]
            self._seen = _np.sort(_np.concatenate(
                (self._seen, fresh)))
        else:
            fresh = _np.empty(0, dtype=_np.int64)
        self._delta_a = fresh // self._n
        self._delta_b = fresh % self._n
        return emitted, int(fresh.size)

    def finalize(self) -> ColumnarTotal:
        """The completed total, still columnar: the sorted seen-keys
        split back into their two code columns.  No row tuple is built
        here — the answer boundary decides lazily whether anyone needs
        one (:class:`ColumnarTotal`)."""
        first, second = _np.divmod(self._seen, self._n)
        return ColumnarTotal((first, second))


class _StubState:
    """The pure-python twin of :class:`_NumpyState`.

    Walks the same CSR arrays (``array('q')`` slices instead of fancy
    indexing) and dedups through a set of row pairs; every counter the
    loop reads off a round is computed identically, so stats and
    traces cannot diverge between kernels.
    """

    def __init__(self, total: set, delta: set, n_symbols: int) -> None:
        self._total = set(total)
        self._delta: list[tuple] = list(delta)

    @property
    def n_delta(self) -> int:
        return len(self._delta)

    @property
    def total_size(self) -> int:
        return len(self._total)

    def round(self, spec: FusedTail, csr: tuple) -> tuple[int, int]:
        values, offsets = csr
        n_buckets = len(offsets) - 1
        slot, keep, new_first = spec.slot, spec.keep, spec.new_first
        out: list[tuple] = []
        for row in self._delta:
            code = row[slot]
            if code >= n_buckets:
                continue
            start, end = offsets[code], offsets[code + 1]
            if end == start:
                continue
            kept = row[keep]
            if new_first:
                out += [(value, kept) for value in values[start:end]]
            else:
                out += [(kept, value) for value in values[start:end]]
        fresh = set(out) - self._total
        self._total |= fresh
        self._delta = list(fresh)
        return len(out), len(fresh)

    def finalize(self) -> set[tuple]:
        return self._total


# -- the delta loop -------------------------------------------------------


def run_delta_loop(database: Database, body, entry_terms, out_terms,
                   total: set, delta: set, stats: EvaluationStats,
                   trace: Tracer | None,
                   max_rounds: int | None) -> set[tuple] | ColumnarTotal:
    """Run the semi-naive delta loop to fixpoint; the completed total
    (a plain row set, or — from the numpy kernel — a
    :class:`ColumnarTotal` the answer boundary consumes column-first).

    Owns the *whole* loop, not just the vector rounds, so plan-cache
    accounting stays deterministic: round 1 opens its trace span and
    compiles the plan exactly like the tuple-set loop (one counted
    miss on a cold cache), and only then reads the certificate off the
    compiled plan.  A certified shape runs vectorised rounds on the
    :func:`active_backend` kernel; anything else continues on the
    tuple-set path *reusing* the already-compiled plan for round 1
    (no second compile) and ``apply_rule`` — one counted hit per
    round — thereafter, keeping every counter identical to the
    original loop.  ``stats.backend`` records what actually ran.
    """
    stats.backend = "python"
    if not delta or (max_rounds is not None and max_rounds <= 0):
        return total
    deadline = stats.deadline
    if trace is not None:
        trace.begin_round("delta", len(delta), stats)
    body = tuple(body)
    entry_terms = tuple(entry_terms)
    out_terms = tuple(out_terms)
    plan = compile_plan(body, entry_terms, out_terms, database, stats)
    layout = entry_layout(entry_terms, database.encode_const
                          if database.interned else None)
    n_symbols = len(database.symbols) if database.interned else 0
    certified = (
        plan.fused is not None and len(plan.steps) == 1
        and layout.is_identity and database.interned
        and 0 < n_symbols <= (2 ** 63 - 1) // max(n_symbols, 1))
    if not certified:
        return _python_rounds(database, body, entry_terms, out_terms,
                              total, delta, stats, trace, max_rounds,
                              deadline, plan, layout)
    backend = active_backend()
    state = (_NumpyState if backend == "numpy" else _StubState)(
        total, delta, n_symbols)
    return _vector_rounds(database, body, entry_terms, out_terms,
                          state, plan.fused, stats, trace, max_rounds,
                          deadline, backend)


def _python_rounds(database, body, entry_terms, out_terms, total,
                   delta, stats, trace, max_rounds, deadline, plan,
                   layout) -> set[tuple]:
    """The tuple-set continuation (round 1's span is already open and
    its plan already compiled — counters match the classic loop)."""
    rounds = 0
    first = True
    while True:
        rounds += 1
        if first:
            first = False
            batch = layout.batch(delta)
            stats.record_batch(len(batch))
            new = execute_plan(database, plan, batch, stats)
        else:
            new = apply_rule(database, body, entry_terms, out_terms,
                             delta, stats)
        delta = new - total
        total |= delta
        stats.record_round(len(delta))
        if trace is not None:
            trace.end_round(len(delta), stats)
        if deadline is not None:
            deadline.check_time()
            if deadline.out_of_rows(len(total)):
                stats.truncated = True
                break
        if not delta:
            break
        if max_rounds is not None and rounds >= max_rounds:
            break
        if trace is not None:
            trace.begin_round("delta", len(delta), stats)
    return total


def _vector_rounds(database, body, entry_terms, out_terms, state,
                   spec, stats, trace, max_rounds, deadline,
                   backend) -> set[tuple]:
    """Certified rounds on a kernel state (round 1's span is open)."""
    rounds = 0
    while True:
        rounds += 1
        stats.record_batch(state.n_delta)
        builds_before = database.hash_builds
        csr = database.dense_column_csr(spec.predicate,
                                        spec.key_position,
                                        spec.position)
        stats.hash_builds += database.hash_builds - builds_before
        stats.hash_lookups += 1
        emitted, fresh = state.round(spec, csr)
        stats.probes += emitted
        stats.derived += emitted
        stats.vector_batches += 1
        stats.vector_rows += emitted
        stats.record_round(fresh)
        if trace is not None:
            trace.end_round(fresh, stats)
        if deadline is not None:
            deadline.check_time()
            if deadline.out_of_rows(state.total_size):
                stats.truncated = True
                break
        if not fresh:
            break
        if max_rounds is not None and rounds >= max_rounds:
            break
        if trace is not None:
            trace.begin_round("delta", state.n_delta, stats)
        # The classic loop re-enters ``apply_rule`` every round, so
        # rounds >= 2 are counted plan-cache hits; touch the cache the
        # same way to keep the counters bit-identical.
        compile_plan(body, entry_terms, out_terms, database, stats)
    stats.backend = backend
    return state.finalize()
