"""Naive bottom-up evaluation (the unoptimised baseline).

Every fixpoint round re-evaluates every rule against the whole
database.  Sound and complete for range-restricted programs over
finite EDBs; deliberately wasteful — it is the baseline the paper's
compiled evaluation is measured against.
"""

from __future__ import annotations

from ..datalog.program import Program, RecursionSystem
from ..ra.answers import AnswerSet
from ..ra.database import Database
from .conjunctive import solve_project
from .query import Query
from .setjoin import apply_rule
from .stats import EvaluationStats
from .trace import Tracer


class NaiveEngine:
    """Round-robin naive fixpoint over all rules.

    ``set_at_a_time`` selects the execution discipline for each rule
    application: compiled hash-join plans (default) or the
    tuple-at-a-time backtracking solver (for ablations).  Naive
    evaluation stays deliberately wasteful either way — every round
    re-joins the whole database — only the per-round join mechanics
    change.
    """

    name = "naive"

    def __init__(self, set_at_a_time: bool = True) -> None:
        self.set_at_a_time = set_at_a_time

    def evaluate(self, system: RecursionSystem | Program, edb: Database,
                 query: Query | None = None,
                 stats: EvaluationStats | None = None,
                 trace: Tracer | None = None
                ) -> frozenset[tuple] | AnswerSet:
        """All tuples of the recursive predicate, filtered by *query*.

        >>> from ..datalog.parser import parse_system
        >>> s = parse_system("P(x, y) :- A(x, z), P(z, y).")
        >>> db = Database.from_dict({
        ...     "A": [("a", "b"), ("b", "c")],
        ...     "P__exit": [("c", "c")]})
        >>> sorted(NaiveEngine().evaluate(s, db))
        [('a', 'c'), ('b', 'c'), ('c', 'c')]
        """
        program = (system.program()
                   if isinstance(system, RecursionSystem) else system)
        if stats is None:
            stats = EvaluationStats(engine=self.name)
        else:
            stats.engine = self.name
        stats.truncated = False
        deadline = stats.deadline
        database = edb.copy()
        predicates = {rule.head.predicate for rule in program.rules}
        for predicate in predicates:
            arity = program.rules_for(predicate)[0].head.arity
            database.declare(predicate, arity)

        if trace is not None:
            trace.begin(self.name, predicate=next(iter(predicates)),
                        query=query)
        while True:
            new_tuples = 0
            if trace is not None:
                trace.begin_round(
                    "round",
                    sum(database.count(p) for p in predicates), stats)
            for position, rule in enumerate(program.rules):
                if trace is not None:
                    trace.begin_rule(f"rule[{position}]: {rule}", stats)
                if self.set_at_a_time:
                    derived = apply_rule(database, rule.body, (),
                                         rule.head.args, [()], stats)
                else:
                    derived = solve_project(database, rule.body,
                                            rule.head.args, stats=stats)
                for row in derived:
                    # derived rows are storage-space already
                    new_tuples += database.add_encoded(
                        rule.head.predicate, row)
                if trace is not None:
                    trace.end_rule(stats)
            stats.record_round(new_tuples)
            if trace is not None:
                trace.end_round(new_tuples, stats)
            if new_tuples == 0:
                break
            if deadline is not None:
                deadline.check_time()
                if deadline.out_of_rows(
                        sum(database.count(p) for p in predicates)):
                    stats.truncated = True
                    break

        # Answer boundary in storage space: filter encoded rows with
        # the encoded query (encoding is injective, so the filtered
        # set is exactly the old value-space filter) and hand back a
        # lazy AnswerSet instead of eagerly decoding the relation.
        answers = database.rows_encoded(
            query.predicate if query is not None
            else next(iter(predicates)))
        if query is not None:
            answers = query.encoded(database).filter(answers)
        stats.answers = len(answers)
        if trace is not None:
            trace.finish(len(answers), stats)
        if database.interned:
            return AnswerSet(answers, database.symbols)
        return frozenset(answers)
