"""Naive bottom-up evaluation (the unoptimised baseline).

Every fixpoint round re-evaluates every rule against the whole
database.  Sound and complete for range-restricted programs over
finite EDBs; deliberately wasteful — it is the baseline the paper's
compiled evaluation is measured against.
"""

from __future__ import annotations

from ..datalog.program import Program, RecursionSystem
from ..ra.database import Database
from .conjunctive import solve_project
from .query import Query
from .setjoin import apply_rule
from .stats import EvaluationStats


class NaiveEngine:
    """Round-robin naive fixpoint over all rules.

    ``set_at_a_time`` selects the execution discipline for each rule
    application: compiled hash-join plans (default) or the
    tuple-at-a-time backtracking solver (for ablations).  Naive
    evaluation stays deliberately wasteful either way — every round
    re-joins the whole database — only the per-round join mechanics
    change.
    """

    name = "naive"

    def __init__(self, set_at_a_time: bool = True) -> None:
        self.set_at_a_time = set_at_a_time

    def evaluate(self, system: RecursionSystem | Program, edb: Database,
                 query: Query | None = None,
                 stats: EvaluationStats | None = None) -> frozenset[tuple]:
        """All tuples of the recursive predicate, filtered by *query*.

        >>> from ..datalog.parser import parse_system
        >>> s = parse_system("P(x, y) :- A(x, z), P(z, y).")
        >>> db = Database.from_dict({
        ...     "A": [("a", "b"), ("b", "c")],
        ...     "P__exit": [("c", "c")]})
        >>> sorted(NaiveEngine().evaluate(s, db))
        [('a', 'c'), ('b', 'c'), ('c', 'c')]
        """
        program = (system.program()
                   if isinstance(system, RecursionSystem) else system)
        if stats is None:
            stats = EvaluationStats(engine=self.name)
        else:
            stats.engine = self.name
        database = edb.copy()
        predicates = {rule.head.predicate for rule in program.rules}
        for predicate in predicates:
            arity = program.rules_for(predicate)[0].head.arity
            database.declare(predicate, arity)

        while True:
            new_tuples = 0
            for rule in program.rules:
                if self.set_at_a_time:
                    derived = apply_rule(database, rule.body, (),
                                         rule.head.args, [()], stats)
                else:
                    derived = solve_project(database, rule.body,
                                            rule.head.args, stats=stats)
                for row in derived:
                    new_tuples += database.add(rule.head.predicate, row)
            stats.record_round(new_tuples)
            if new_tuples == 0:
                break

        answers = database.rows(
            query.predicate if query is not None
            else next(iter(predicates)))
        if query is not None:
            answers = query.filter(answers)
        stats.answers = len(answers)
        return frozenset(answers)
