"""Cooperative per-query deadlines: wall-clock budget and row limit.

A fixpoint cannot be preempted safely — a round half-applied would
leave caches and stats inconsistent — so budgets are enforced
*cooperatively* at round boundaries, the natural commit points of
every engine: after each semi-naive/naive delta round, each compiled
expansion/depth/delta step, and each top-down subgoal pass.  The two
budgets abort differently, on purpose:

* the **wall-clock budget** raises :class:`QueryTimeout` — time ran
  out, and a partial fixpoint at an arbitrary cut is not worth
  returning against an unbounded wait;
* the **row budget** stops the loop and marks the stats
  ``truncated`` — every tuple derived so far is a *true* answer
  (bottom-up derivations are sound at every prefix), so the partial
  set is returned along with the truncation flag.  The limit bounds
  the work per round boundary; the final round may overshoot it by
  its own delta.

The deadline rides on :class:`~repro.engine.stats.EvaluationStats`
(the ``deadline`` field), so no engine signature changes: callers that
want budgets set ``stats.deadline`` before evaluating, everyone else
pays one ``None`` check per round.
"""

from __future__ import annotations

from time import perf_counter

from ..datalog.errors import EvaluationError

__all__ = ["Deadline", "QueryTimeout"]


class QueryTimeout(EvaluationError):
    """The query's wall-clock budget expired at a round boundary."""


class Deadline:
    """One query's evaluation budget (either part optional).

    >>> d = Deadline(max_rows=10)
    >>> d.out_of_rows(10), d.out_of_rows(11)
    (False, True)
    >>> Deadline(timeout_s=0.0).check_time()
    Traceback (most recent call last):
        ...
    repro.engine.deadline.QueryTimeout: query exceeded its 0.0s budget
    """

    __slots__ = ("timeout_s", "max_rows", "_expires_at")

    def __init__(self, timeout_s: float | None = None,
                 max_rows: int | None = None) -> None:
        self.timeout_s = timeout_s
        self.max_rows = max_rows
        self._expires_at = (perf_counter() + timeout_s
                            if timeout_s is not None else None)

    @property
    def remaining_s(self) -> float | None:
        """Seconds left on the wall-clock budget (None = unlimited)."""
        if self._expires_at is None:
            return None
        return self._expires_at - perf_counter()

    def check_time(self) -> None:
        """Raise :class:`QueryTimeout` when the clock budget is spent."""
        if (self._expires_at is not None
                and perf_counter() >= self._expires_at):
            raise QueryTimeout(
                f"query exceeded its {self.timeout_s}s budget")

    def out_of_rows(self, produced: int) -> bool:
        """True when *produced* rows exceed the row budget."""
        return self.max_rows is not None and produced > self.max_rows

    def __repr__(self) -> str:
        return (f"Deadline(timeout_s={self.timeout_s}, "
                f"max_rows={self.max_rows})")
