"""Cooperative per-query deadlines: wall clock, row limit, cancel.

A fixpoint cannot be preempted safely — a round half-applied would
leave caches and stats inconsistent — so budgets are enforced
*cooperatively* at round boundaries, the natural commit points of
every engine: after each semi-naive/naive delta round, each compiled
expansion/depth/delta step, each top-down subgoal pass, and each
incremental-maintenance propagation round.  The three aborts behave
differently, on purpose:

* the **wall-clock budget** raises :class:`QueryTimeout` — time ran
  out, and a partial fixpoint at an arbitrary cut is not worth
  returning against an unbounded wait;
* the **row budget** stops the loop and marks the stats
  ``truncated`` — every tuple derived so far is a *true* answer
  (bottom-up derivations are sound at every prefix), so the partial
  set is returned along with the truncation flag.  The limit bounds
  the work per round boundary; the final round may overshoot it by
  its own delta;
* the **cancel flag** raises :class:`QueryCancelled` — somebody
  (``DELETE /jobs/<id>``, a draining server) asked for the evaluation
  to stop, so there is no caller left who wants the partial answers.
  The flag is any object with an ``is_set()`` method (a
  :class:`threading.Event` in practice) and is checked by
  :meth:`Deadline.check_time`, so it rides the exact same
  round-boundary checks the budgets already use — no engine changes.

The deadline rides on :class:`~repro.engine.stats.EvaluationStats`
(the ``deadline`` field), so no engine signature changes: callers that
want budgets set ``stats.deadline`` before evaluating, everyone else
pays one ``None`` check per round.
"""

from __future__ import annotations

from time import perf_counter

from ..datalog.errors import EvaluationError

__all__ = ["Deadline", "QueryCancelled", "QueryTimeout"]


class QueryTimeout(EvaluationError):
    """The query's wall-clock budget expired at a round boundary."""


class QueryCancelled(EvaluationError):
    """The query's cancel flag was set; the fixpoint stopped at a
    round boundary.  Raised instead of returning partial answers —
    cancellation means nobody wants them."""


class Deadline:
    """One query's evaluation budget (every part optional).

    >>> d = Deadline(max_rows=10)
    >>> d.out_of_rows(10), d.out_of_rows(11)
    (False, True)
    >>> Deadline(timeout_s=0.0).check_time()
    Traceback (most recent call last):
        ...
    repro.engine.deadline.QueryTimeout: query exceeded its 0.0s budget
    >>> import threading
    >>> flag = threading.Event()
    >>> d = Deadline(cancel=flag)
    >>> d.check_time()  # not cancelled: no-op
    >>> flag.set(); d.check_time()
    Traceback (most recent call last):
        ...
    repro.engine.deadline.QueryCancelled: query was cancelled
    """

    __slots__ = ("timeout_s", "max_rows", "cancel", "_expires_at")

    def __init__(self, timeout_s: float | None = None,
                 max_rows: int | None = None,
                 cancel=None) -> None:
        self.timeout_s = timeout_s
        self.max_rows = max_rows
        #: optional cancel flag (``is_set() -> bool``); checked first
        #: by :meth:`check_time` so a cancelled query aborts at the
        #: next round boundary even with no time budget
        self.cancel = cancel
        self._expires_at = (perf_counter() + timeout_s
                            if timeout_s is not None else None)

    @property
    def remaining_s(self) -> float | None:
        """Seconds left on the wall-clock budget (None = unlimited)."""
        if self._expires_at is None:
            return None
        return self._expires_at - perf_counter()

    def check_time(self) -> None:
        """Raise when the budget is spent or the query was cancelled.

        :class:`QueryCancelled` wins over :class:`QueryTimeout` when
        both hold — a cancel is an explicit request, the timeout a
        default policy.
        """
        if self.cancel is not None and self.cancel.is_set():
            raise QueryCancelled("query was cancelled")
        if (self._expires_at is not None
                and perf_counter() >= self._expires_at):
            raise QueryTimeout(
                f"query exceeded its {self.timeout_s}s budget")

    def out_of_rows(self, produced: int) -> bool:
        """True when *produced* rows exceed the row budget."""
        return self.max_rows is not None and produced > self.max_rows

    def __repr__(self) -> str:
        return (f"Deadline(timeout_s={self.timeout_s}, "
                f"max_rows={self.max_rows}, "
                f"cancellable={self.cancel is not None})")
