"""Static join plans: compile a rule body once, execute set-at-a-time.

The tuple-at-a-time solver in :mod:`repro.engine.conjunctive` re-ranks
the body atoms and re-derives every access path *per binding*.  During
a fixpoint that work is identical for every delta tuple of a round —
the greedy most-bound-first order depends only on *which* variables
are bound, never on their values — so it can be done once per rule.

:func:`compile_plan` performs that static simulation: starting from
the variables bound at entry (the recursive call's arguments), it
repeatedly picks the most-bound atom (ties broken towards the smaller
relation, mirroring the dynamic heuristic) and records, per atom, the
hash-key columns, the intra-atom equality checks for repeated free
variables, and the columns that extend the binding layout.  The
resulting :class:`JoinPlan` is a straight-line program executed by
:mod:`repro.engine.setjoin` over whole delta relations at once.

Plans are *storage-space* artifacts: every constant appearing in the
body, the entry terms or the head is encoded through the database's
symbol table at compile time, so the executing kernel never touches a
raw value (with ``intern=False`` the encoder is the identity and the
plan holds raw constants, exactly as before).

Plans are cached process-wide.  The cache key includes a coarse
log-scale fingerprint of the body relations' cardinalities so the
order adapts when a relation's size changes by orders of magnitude
(the naive engine's IDB grows between rounds) while a steady-state
semi-naive fixpoint hits the cache on every call — plus the symbol
table's process-unique token, so encoded constants can never leak
between two different code spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..datalog.atoms import Atom
from ..datalog.errors import EvaluationError
from ..datalog.terms import Constant, Term, Variable
from .stats import EvaluationStats

#: A value source: (True, constant-value) or (False, binding-layout slot).
Source = tuple[bool, object]

#: Plan-cache capacity; far above any realistic rule population, the
#: cap only guards against unbounded growth under generated workloads.
_CACHE_LIMIT = 4096

_PLAN_CACHE: dict[tuple, "JoinPlan"] = {}


@dataclass(frozen=True)
class JoinStep:
    """One hash join: probe *predicate* keyed on *key_positions*.

    ``key_sources`` supplies the probe key (constants and
    already-bound layout slots), ``same_free`` lists row-position pairs
    that must agree (a free variable repeated inside the atom), and
    ``new_positions`` are the row columns appended to the binding
    layout — the first occurrence of each newly bound variable.
    """

    predicate: str
    key_positions: tuple[int, ...]
    key_sources: tuple[Source, ...]
    same_free: tuple[tuple[int, int], ...]
    new_positions: tuple[int, ...]

    @property
    def key_is_all_vars(self) -> bool:
        """True when the probe key uses no constants (the fast path)."""
        return all(not is_const for is_const, _ in self.key_sources)

    @property
    def key_slots(self) -> tuple[int, ...]:
        """Layout slots feeding the key (valid when all-vars)."""
        return tuple(payload for is_const, payload in self.key_sources
                     if not is_const)


@dataclass(frozen=True)
class FusedTail:
    """The compile-time shape certificate of a fusable last probe.

    Present on a :class:`JoinPlan` when its final step probes exactly
    one bound slot, binds exactly one new column, and the head
    projects two variables of which exactly one is that new column —
    the shape of every linear recursion's delta rule.  The kernel then
    skips the intermediate extended binding and emits the projected
    output pair straight out of the probe, column-wise: *keep* is the
    layout slot carried through from the binding, *position* the probed
    row's emitted column, *new_first* which of the two comes first in
    the output row.  Detected once per plan here instead of per round
    in the kernel.
    """

    predicate: str
    key_position: int   # probed column of the stored relation
    slot: int           # binding-layout slot feeding the probe key
    position: int       # stored-row column the probe emits
    keep: int           # binding-layout slot of the carried column
    new_first: bool     # emitted column first (True) or second


@dataclass(frozen=True)
class JoinPlan:
    """An ordered join pipeline plus the output projection.

    ``entry_vars`` is the binding-tuple layout at entry (the distinct
    variables of the entry terms, in first-occurrence order); each step
    appends its ``new_positions`` columns; ``out_sources`` projects the
    final layout onto the head terms.  ``fused`` certifies (at compile
    time) that the last step and the projection collapse into one
    columnar probe — see :class:`FusedTail`.
    """

    entry_vars: tuple[Variable, ...]
    steps: tuple[JoinStep, ...]
    out_sources: tuple[Source, ...]
    fused: FusedTail | None = None

    @property
    def width(self) -> int:
        """Final binding-tuple width after all steps."""
        return len(self.entry_vars) + sum(
            len(s.new_positions) for s in self.steps)


def _fused_tail(entry_vars: tuple, steps: tuple[JoinStep, ...],
                out_sources: tuple[Source, ...]) -> FusedTail | None:
    """The :class:`FusedTail` certificate for a plan shape, or None."""
    if not steps:
        return None
    step = steps[-1]
    if (step.same_free or not step.key_is_all_vars
            or len(step.key_positions) != 1
            or len(step.new_positions) != 1):
        return None
    if len(out_sources) != 2 or any(is_const for is_const, _
                                    in out_sources):
        return None
    width = len(entry_vars) + sum(len(s.new_positions) for s in steps)
    width_before = width - 1
    s0, s1 = out_sources[0][1], out_sources[1][1]
    if (s0 == width_before) == (s1 == width_before):
        return None  # neither (or both) outputs the new column
    new_first = s0 == width_before
    return FusedTail(predicate=step.predicate,
                     key_position=step.key_positions[0],
                     slot=step.key_slots[0],
                     position=step.new_positions[0],
                     keep=s1 if new_first else s0,
                     new_first=new_first)


@dataclass(frozen=True)
class EntryLayout:
    """How raw delta rows map onto a plan's entry binding tuples.

    ``take`` lists the row positions that feed the layout (first
    occurrence of each distinct variable); ``var_checks`` are
    row-position pairs that must agree (repeated entry variables);
    ``const_checks`` pin row positions to constants.  Rows failing a
    check derive nothing and are dropped, matching the tuple-at-a-time
    consistency loop.
    """

    variables: tuple[Variable, ...]
    take: tuple[int, ...]
    var_checks: tuple[tuple[int, int], ...]
    const_checks: tuple[tuple[int, object], ...]

    @property
    def is_identity(self) -> bool:
        """True when rows pass through unchanged (the common case)."""
        return (not self.var_checks and not self.const_checks
                and self.take == tuple(range(len(self.take))))

    def batch(self, rows) -> list[tuple]:
        """Convert delta *rows* to entry binding tuples.

        *rows* are storage-space tuples (the kernel contract), so the
        identity layout is one list copy; a non-tuple row would fail
        loudly at the first binding extension.
        """
        if self.is_identity:
            return list(rows)
        out: list[tuple] = []
        for row in rows:
            if any(row[i] != row[j] for i, j in self.var_checks):
                continue
            if any(row[i] != v for i, v in self.const_checks):
                continue
            out.append(tuple(row[i] for i in self.take))
        return out


def entry_layout(entry_terms: Sequence[Term],
                 encode=None) -> EntryLayout:
    """The :class:`EntryLayout` for binding rows against *entry_terms*.

    *encode* maps constant values to their storage representation
    (``Database.encode_const``); rows handed to :meth:`EntryLayout
    .batch` are storage-space, so the pinned constants must be too.
    """
    variables: list[Variable] = []
    take: list[int] = []
    first_at: dict[Variable, int] = {}
    var_checks: list[tuple[int, int]] = []
    const_checks: list[tuple[int, object]] = []
    for position, term in enumerate(entry_terms):
        if isinstance(term, Constant):
            const_checks.append((position, term.value if encode is None
                                 else encode(term.value)))
        elif term in first_at:
            var_checks.append((first_at[term], position))
        else:
            first_at[term] = position
            variables.append(term)
            take.append(position)
    return EntryLayout(tuple(variables), tuple(take),
                       tuple(var_checks), tuple(const_checks))


def _static_boundness(atom: Atom, bound: Mapping[Variable, int]) -> int:
    """Argument positions bound under the current layout (mirrors the
    dynamic ``_boundness`` of the tuple-at-a-time solver)."""
    count = 0
    for term in atom.args:
        if isinstance(term, Constant) or term in bound:
            count += 1
    return count


def _compile(body: tuple[Atom, ...], entry_terms: tuple[Term, ...],
             out_terms: tuple[Term, ...],
             counts: Mapping[str, int], encode=None) -> JoinPlan:
    layout = entry_layout(entry_terms, encode)
    bound: dict[Variable, int] = {
        var: slot for slot, var in enumerate(layout.variables)}
    next_slot = len(bound)

    remaining = list(body)
    steps: list[JoinStep] = []
    while remaining:
        # Tie-break on the *coarse* (log-scale) cardinality — the same
        # granularity as the cache fingerprint — so every database with
        # an equal fingerprint compiles the identical plan.  An exact
        # count here would let two databases share a cache entry (same
        # fingerprint) yet deserve different atom orders, making work
        # counters depend on which of them compiled first.
        best = max(range(len(remaining)),
                   key=lambda i: (
                       _static_boundness(remaining[i], bound),
                       -counts.get(remaining[i].predicate, 0).bit_length()))
        atom = remaining.pop(best)
        key_positions: list[int] = []
        key_sources: list[Source] = []
        same_free: list[tuple[int, int]] = []
        new_at: dict[Variable, int] = {}
        for position, term in enumerate(atom.args):
            if isinstance(term, Constant):
                key_positions.append(position)
                key_sources.append((True, term.value if encode is None
                                    else encode(term.value)))
            elif term in bound:
                key_positions.append(position)
                key_sources.append((False, bound[term]))
            elif term in new_at:
                same_free.append((new_at[term], position))
            else:
                new_at[term] = position
        new_positions = tuple(sorted(new_at.values()))
        for position in new_positions:
            variable = atom.args[position]
            assert isinstance(variable, Variable)
            bound[variable] = next_slot
            next_slot += 1
        steps.append(JoinStep(atom.predicate, tuple(key_positions),
                              tuple(key_sources), tuple(same_free),
                              new_positions))

    out_sources: list[Source] = []
    for term in out_terms:
        if isinstance(term, Constant):
            out_sources.append((True, term.value if encode is None
                                else encode(term.value)))
        elif term in bound:
            out_sources.append((False, bound[term]))
        else:
            raise EvaluationError(
                f"output term {term} is bound by neither the entry "
                f"binding nor the body — the rule is not range "
                f"restricted relative to its entry")
    steps_t = tuple(steps)
    out_t = tuple(out_sources)
    return JoinPlan(layout.variables, steps_t, out_t,
                    _fused_tail(layout.variables, steps_t, out_t))


def compile_plan(body: Sequence[Atom], entry_terms: Sequence[Term],
                 out_terms: Sequence[Term],
                 database=None,
                 stats: EvaluationStats | None = None) -> JoinPlan:
    """The cached :class:`JoinPlan` for one rule application shape.

    *entry_terms* are the terms bound before the body runs (the
    recursive atom's arguments for a delta rule, empty for a full
    evaluation); *out_terms* the head's argument list.  *database*
    only informs the atom-order tie-break via relation cardinalities.

    >>> from ..datalog.parser import parse_atom
    >>> from ..ra.database import Database
    >>> db = Database.from_dict({"A": [("a", "b")]})
    >>> body = (parse_atom("A(x, z)"),)
    >>> entry = parse_atom("P(z, y)").args
    >>> head = parse_atom("P(x, y)").args
    >>> plan = compile_plan(body, entry, head, db)
    >>> [s.predicate for s in plan.steps], plan.out_sources
    (['A'], ((False, 2), (False, 1)))
    """
    body = tuple(body)
    entry_terms = tuple(entry_terms)
    out_terms = tuple(out_terms)
    counts: dict[str, int] = {}
    encode = None
    token = 0
    if database is not None:
        for atom in body:
            counts[atom.predicate] = database.count(atom.predicate)
        if database.interned:
            encode = database.encode_const
        token = database.symbols_token
    # Coarse (log-scale) cardinality fingerprint: order only adapts to
    # order-of-magnitude shifts, so steady fixpoints always cache-hit.
    # The symbol-table token pins the plan's encoded constants to one
    # code space (a raw plan carries token 0).
    fingerprint = tuple(sorted(
        (name, count.bit_length()) for name, count in counts.items()))
    key = (body, entry_terms, out_terms, fingerprint, token)
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        if stats is not None:
            stats.plan_cache_hits += 1
        return plan
    if stats is not None:
        stats.plan_cache_misses += 1
    plan = _compile(body, entry_terms, out_terms, counts, encode)
    if len(_PLAN_CACHE) >= _CACHE_LIMIT:
        _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
    _PLAN_CACHE[key] = plan
    return plan


def plan_cache_size() -> int:
    """Number of cached plans (introspection for tests and benches)."""
    return len(_PLAN_CACHE)


def clear_plan_cache() -> None:
    """Drop every cached plan (test isolation)."""
    _PLAN_CACHE.clear()
