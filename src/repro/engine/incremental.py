"""Insert-only incremental maintenance of a recursion's fixpoint.

A materialised recursive view should not be recomputed from scratch
when one base fact arrives.  For insertions into Datalog the delta
discipline is classical: every rule is differentiated per body-atom
occurrence of the inserted predicate — that occurrence is *forced* to
the new rows while the other atoms range over the current state — and
the resulting new head tuples are propagated through the recursive
rule semi-naively.

:class:`MaterializedRecursion` keeps the EDB and the materialised
relation together and exposes :meth:`insert`, returning exactly the
tuples the insertion added — property-tested to coincide with a from-
scratch evaluation after every step.

(Deletions would need DRed-style over-deletion and re-derivation; the
paper's setting has no deletions, so they are out of scope here.)
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..datalog.program import RecursionSystem
from ..datalog.rules import Rule
from ..datalog.terms import Variable
from ..ra.answers import AnswerSet
from ..ra.database import Database
from .conjunctive import solve_project
from .seminaive import SemiNaiveEngine
from .setjoin import apply_rule
from .stats import EvaluationStats
from .trace import Tracer


class _WithIDB:
    """A database view that also serves the materialised predicate.

    Both the base relations and the materialised rows live in the
    base's storage space, so the solver's patterns apply unchanged.
    """

    def __init__(self, base: Database, predicate: str,
                 rows: set[tuple]) -> None:
        self._base = base
        self._predicate = predicate
        self._rows = rows

    @property
    def interned(self) -> bool:
        return self._base.interned

    def encode_const(self, value):
        return self._base.encode_const(value)

    def match_encoded(self, name: str,
                      pattern: tuple) -> Iterator[tuple]:
        if name != self._predicate:
            yield from self._base.match_encoded(name, pattern)
            return
        for row in self._rows:
            if all(v is None or row[i] == v
                   for i, v in enumerate(pattern)):
                yield row

    def count(self, name: str) -> int:
        if name != self._predicate:
            return self._base.count(name)
        return len(self._rows)


class MaterializedRecursion:
    """The fixpoint of one recursion system, maintained under inserts."""

    def __init__(self, system: RecursionSystem,
                 edb: Database | None = None) -> None:
        self._system = system
        self._db = edb.copy() if edb is not None else Database()
        # The materialised set lives in storage space (the fixpoint's
        # copy shares this database's symbol table, so its codes are
        # directly valid here).
        self._total: set[tuple] = set(
            SemiNaiveEngine().evaluate(system, self._db, decode=False))
        self.stats = EvaluationStats(engine="incremental")

    @property
    def rows(self) -> frozenset[tuple] | AnswerSet:
        """The current materialised relation (value space; a lazy
        columnar :class:`~repro.ra.answers.AnswerSet` when interned —
        the snapshot decodes only if the caller iterates it)."""
        if not self._db.interned:
            return frozenset(self._total)
        return AnswerSet(frozenset(self._total), self._db.symbols)

    @property
    def database(self) -> Database:
        """The underlying (maintained) EDB."""
        return self._db

    # -- insertion ------------------------------------------------------

    def insert(self, predicate: str, row: tuple,
               trace: Tracer | None = None) -> frozenset[tuple]:
        """Add one base fact; returns the derived tuples it added."""
        return self.insert_many(predicate, [row], trace)

    def insert_many(self, predicate: str, rows: Iterable[tuple],
                    trace: Tracer | None = None) -> frozenset[tuple]:
        """Add base facts; returns every newly derived tuple.

        *trace* records the insertion's differentiation seed round and
        each semi-naive propagation round (``trace=None`` is free).

        A :class:`~repro.engine.deadline.Deadline` installed on
        ``self.stats.deadline`` is enforced at the same round
        boundaries as every other engine: the wall-clock budget (or a
        cancel flag) raises after the seed round or any propagation
        round, and the row budget stops propagation with
        ``stats.truncated`` set.  Either abort leaves the
        materialisation *partial*: the inserted base facts are in the
        database but their consequences are not all derived, so the
        maintained view is only sound, not complete, until the caller
        re-seeds it (budgeted maintenance is opt-in for exactly the
        callers that accept that trade).
        """
        deadline = self.stats.deadline
        self.stats.truncated = False
        if trace is not None:
            trace.begin("incremental",
                        predicate=self._system.predicate)
        fresh = []
        for r in rows:
            encoded = self._db.encode_row(tuple(r))
            if self._db.add_encoded(predicate, encoded):
                fresh.append(encoded)
        if not fresh:
            if trace is not None:
                trace.finish(0, self.stats)
            return frozenset()
        view = _WithIDB(self._db, self._system.predicate, self._total)

        if trace is not None:
            trace.begin_round("seed", len(fresh), self.stats)
        seeds: set[tuple] = set()
        for rule in (self._system.recursive.rule, *self._system.exits):
            seeds |= self._differentiated(rule, predicate, fresh, view)

        delta = seeds - self._total
        added = set(delta)
        self._total |= delta
        self.stats.record_round(len(delta))
        if trace is not None:
            trace.end_round(len(delta), self.stats,
                            inserted=len(fresh))
        if deadline is not None:
            deadline.check_time()
            if deadline.out_of_rows(len(added)):
                self.stats.truncated = True
                delta = set()  # round boundary: stop propagation
        # propagate through the recursive rule semi-naively
        recursive = self._system.recursive
        body_rest = list(recursive.nonrecursive_atoms)
        recursive_vars = recursive.recursive_atom.args
        head_args = recursive.head.args
        while delta:
            if trace is not None:
                trace.begin_round("delta", len(delta), self.stats)
            new = apply_rule(self._db, body_rest, recursive_vars,
                             head_args, delta, self.stats)
            delta = new - self._total
            added |= delta
            self._total |= delta
            self.stats.record_round(len(delta))
            if trace is not None:
                trace.end_round(len(delta), self.stats)
            if deadline is not None:
                deadline.check_time()
                if deadline.out_of_rows(len(added)):
                    self.stats.truncated = True
                    break
        if trace is not None:
            trace.finish(len(added), self.stats)
        if self._db.interned:
            return AnswerSet(frozenset(added), self._db.symbols)
        return frozenset(added)

    def _differentiated(self, rule: Rule, predicate: str,
                        fresh: list[tuple], view: _WithIDB
                        ) -> set[tuple]:
        """Head tuples derivable with one body occurrence of
        *predicate* forced to the freshly inserted rows."""
        out: set[tuple] = set()
        for index, body_atom in enumerate(rule.body):
            if body_atom.predicate != predicate:
                continue
            rest = rule.body[:index] + rule.body[index + 1:]
            for row in fresh:
                binding: dict[Variable, object] = {}
                consistent = True
                for term, value in zip(body_atom.args, row):
                    if isinstance(term, Variable):
                        if binding.setdefault(term, value) != value:
                            consistent = False
                            break
                    elif self._db.encode_const(term.value) != value:
                        consistent = False
                        break
                if not consistent:
                    continue
                out |= solve_project(view, rest, rule.head.args,
                                     binding, stats=self.stats)
        return out

    def __len__(self) -> int:
        return len(self._total)

    def __contains__(self, row: tuple) -> bool:
        row = tuple(row)
        if not self._db.interned:
            return row in self._total
        lookup = self._db.symbols.lookup
        codes = tuple(lookup(value) for value in row)
        return None not in codes and codes in self._total

    def __repr__(self) -> str:
        return (f"MaterializedRecursion({self._system.predicate}: "
                f"{len(self._total)} tuples over "
                f"{self._db.total_facts()} facts)")
