"""Semi-naive bottom-up evaluation with delta propagation.

For linear single recursion the delta discipline is simple: round 0
evaluates the exit rules; each later round re-joins only the previous
round's new tuples through the recursive rule's body.  Round r derives
exactly the depth-r tuples, so the per-round delta sizes expose the
*measured rank* of a formula on a concrete database — the quantity the
paper's boundedness results (Ioannidis's theorem, Theorem 10) bound.

Two execution disciplines share the delta loop:

* **set-at-a-time** (the default): the rule body is compiled once into
  a :class:`~repro.engine.plan.JoinPlan` and the whole delta relation
  is pushed through cached hash joins per round;
* **tuple-at-a-time** (``set_at_a_time=False``): the original
  per-delta-tuple backtracking search, kept for ablations.

Both produce identical per-round deltas (property-tested), so every
rank/boundedness measurement is unaffected by the flag.

When the compiled plan certifies the hot linear-recursion shape
(single fused step, identity entry layout) and ``backend`` allows it,
the set-at-a-time delta loop is handed wholesale to the vectorised
kernel (:mod:`repro.engine.vector`) — flat int-vector frontiers over
CSR adjacency, answers/stats/traces bit-identical to this loop.
"""

from __future__ import annotations

from ..datalog.program import RecursionSystem
from ..datalog.terms import Variable
from ..ra.answers import AnswerSet
from ..ra.database import Database
from .conjunctive import solve_project
from .query import Query
from .setjoin import apply_rule
from .stats import EvaluationStats
from .trace import Tracer
from .vector import ColumnarTotal
from .vector import eligible as _vector_eligible
from .vector import run_delta_loop, validate_backend


class SemiNaiveEngine:
    """Delta-driven fixpoint for one linear recursion system.

    Parameters
    ----------
    set_at_a_time:
        When True (default), execute rule bodies through the compiled
        set-at-a-time join kernel; when False, fall back to the
        tuple-at-a-time backtracking solver.
    backend:
        Delta-loop backend selection: ``"auto"``/``"vector"`` hand
        certified plan shapes to the vectorised kernel
        (:mod:`repro.engine.vector` — numpy when importable, the
        bit-identical pure-python stub otherwise), ``"python"`` pins
        the tuple-set loop.
    """

    name = "semi-naive"

    #: subclasses that override :meth:`_recursive_round` (the sharded
    #: engine) set this False so the vector delegation — which owns
    #: the whole loop — can never silently bypass their round hook
    vector_rounds = True

    def __init__(self, set_at_a_time: bool = True,
                 backend: str = "auto") -> None:
        self.set_at_a_time = set_at_a_time
        self.backend = validate_backend(backend)

    def evaluate(self, system: RecursionSystem, edb: Database,
                 query: Query | None = None,
                 stats: EvaluationStats | None = None,
                 max_rounds: int | None = None,
                 trace: Tracer | None = None,
                 decode: bool = True) -> frozenset[tuple] | AnswerSet:
        """All tuples of the recursive predicate, filtered by *query*.

        *max_rounds* caps the recursion depth (used by rank probes);
        None runs to the natural fixpoint.  *trace* (when given)
        collects one :class:`~repro.engine.trace.RoundSpan` per round;
        ``trace=None`` adds no work to the loop.

        The whole fixpoint runs in storage space; under interning the
        answers come back as a lazy columnar
        :class:`~repro.ra.answers.AnswerSet` (*decode* = True, the
        default) that materialises values only when first iterated —
        behaviourally a ``frozenset`` of value rows, without the eager
        decode tax on enumerations nobody reads.  ``decode=False``
        hands back plain storage-space rows — for callers that feed
        them straight back into the same database (materialisation,
        the incremental maintenance seed).  Raw (``intern=False``)
        databases return plain value frozensets verbatim.

        >>> from ..datalog.parser import parse_system
        >>> s = parse_system("P(x, y) :- A(x, z), P(z, y).")
        >>> db = Database.from_dict({
        ...     "A": [("a", "b"), ("b", "c")],
        ...     "P__exit": [("c", "c")]})
        >>> sorted(SemiNaiveEngine().evaluate(s, db))
        [('a', 'c'), ('b', 'c'), ('c', 'c')]
        """
        if stats is None:
            stats = EvaluationStats(engine=self.name)
        else:
            stats.engine = self.name
        stats.truncated = False
        stats.backend = "python"
        deadline = stats.deadline
        # The fixpoint never writes to the database (derived tuples
        # live in plain sets), so evaluate directly on *edb* — like the
        # compiled and top-down engines — and let the cached join
        # tables warm up across evaluations instead of dying with a
        # private copy.
        database = edb
        rule = system.recursive

        body_rest = list(rule.nonrecursive_atoms)
        recursive_vars = rule.recursive_atom.args
        head_args = rule.head.args

        if trace is not None:
            trace.begin(self.name, predicate=system.predicate,
                        query=query, workers=getattr(self, "workers", 0))
        self._begin_fixpoint(system, database, stats)
        try:
            # Round 0: exit rules over the EDB.
            if trace is not None:
                trace.begin_round("exit", 0, stats)
            total: set[tuple] = set()
            for position, exit_rule in enumerate(system.exits):
                if trace is not None:
                    trace.begin_rule(f"exit[{position}]: {exit_rule}",
                                     stats)
                if self.set_at_a_time:
                    total |= apply_rule(database, exit_rule.body, (),
                                        exit_rule.head.args, [()], stats)
                else:
                    total |= solve_project(database, exit_rule.body,
                                           exit_rule.head.args,
                                           stats=stats)
                if trace is not None:
                    trace.end_rule(stats)
            delta = set(total)
            stats.record_round(len(delta))
            if trace is not None:
                trace.end_round(len(delta), stats)
            if deadline is not None:
                deadline.check_time()
                if deadline.out_of_rows(len(total)):
                    stats.truncated = True
                    delta = set()  # round boundary: stop cleanly

            if (self.set_at_a_time and self.vector_rounds
                    and self.backend != "python"
                    and _vector_eligible(database, recursive_vars)):
                # the vector module owns the whole loop (including the
                # tuple-set continuation for uncertified plan shapes),
                # keeping every counter identical to the loop below
                total = run_delta_loop(database, body_rest,
                                       recursive_vars, head_args,
                                       total, delta, stats, trace,
                                       max_rounds)
            else:
                rounds = 0
                while delta:
                    if max_rounds is not None and rounds >= max_rounds:
                        break
                    rounds += 1
                    if trace is not None:
                        trace.begin_round("delta", len(delta), stats)
                    new = self._recursive_round(database, body_rest,
                                                recursive_vars,
                                                head_args, delta,
                                                stats, trace)
                    delta = new - total
                    total |= delta
                    stats.record_round(len(delta))
                    if trace is not None:
                        trace.end_round(len(delta), stats)
                    if deadline is not None:
                        deadline.check_time()
                        if deadline.out_of_rows(len(total)):
                            stats.truncated = True
                            break
        finally:
            self._end_fixpoint(stats)

        if isinstance(total, ColumnarTotal):
            # the numpy kernel's product stays columnar through the
            # boundary: constants filter by vector mask, and the rows
            # materialise lazily inside the AnswerSet (or eagerly for
            # decode=False callers that feed them back to a database)
            answers = total.filter(
                None if query is None else query.encoded(database))
        elif query is None:
            answers = frozenset(total)
        else:
            # Filter in storage space: the query's constants encode to
            # the same codes the stored rows carry.
            answers = query.encoded(database).filter(total)
        stats.answers = len(answers)
        if trace is not None:
            trace.annotate(backend=stats.backend)
            trace.finish(len(answers), stats)
        if isinstance(answers, ColumnarTotal):
            answers = (
                AnswerSet.from_columns(answers.columns(),
                                       database.symbols)
                if decode else answers.rows())
        elif decode and database.interned:
            answers = AnswerSet(answers, database.symbols)
        return answers

    # -- subclass hooks --------------------------------------------------

    def _begin_fixpoint(self, system: RecursionSystem,
                        database: Database,
                        stats: EvaluationStats) -> None:
        """Called once before round 0 (sharded engine: pool setup)."""

    def _end_fixpoint(self, stats: EvaluationStats) -> None:
        """Called once after the loop, even on error (pool teardown)."""

    def _recursive_round(self, database: Database, body_rest,
                         recursive_vars, head_args, delta: set[tuple],
                         stats: EvaluationStats,
                         trace: Tracer | None = None) -> set[tuple]:
        """One application of the recursive rule to *delta*.

        Subclasses override this to change the execution discipline of
        a round; the delta bookkeeping around it stays shared, which is
        what keeps per-round delta sizes comparable across engines.
        *trace*, when given, is the open round span's tracer (the
        sharded engine attaches shard sizes and fallback events to it).
        """
        if self.set_at_a_time:
            return apply_rule(database, body_rest, recursive_vars,
                              head_args, delta, stats)
        return self._tuple_at_a_time_round(
            database, body_rest, recursive_vars, head_args, delta,
            stats)

    @staticmethod
    def _tuple_at_a_time_round(database: Database, body_rest,
                               recursive_vars, head_args,
                               delta: set[tuple],
                               stats: EvaluationStats) -> set[tuple]:
        """One delta round via the per-tuple backtracking solver."""
        new: set[tuple] = set()
        for row in delta:
            binding: dict[Variable, object] = {}
            consistent = True
            for term, value in zip(recursive_vars, row):
                assert isinstance(term, Variable)
                if binding.get(term, value) != value:
                    consistent = False
                    break
                binding[term] = value
            if not consistent:
                continue
            new |= solve_project(database, body_rest, head_args,
                                 binding, stats=stats)
        return new

    def measured_rank(self, system: RecursionSystem,
                      edb: Database) -> int:
        """The actual rank of *system* on *edb*: the largest recursion
        depth that contributed a new tuple."""
        stats = EvaluationStats()
        self.evaluate(system, edb, stats=stats)
        return stats.measured_rank
