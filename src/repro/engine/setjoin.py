"""Set-at-a-time execution of compiled join plans.

Where :func:`repro.engine.conjunctive.solve_project` backtracks per
binding, :func:`execute_plan` pushes a whole batch of bindings (one
per delta tuple) through the plan's steps at once: each step probes a
hash table built per (relation, key-columns) and cached on the
:class:`~repro.ra.database.Database` against its version counter, so
a fixpoint pays the table build once and every later round is pure
dict lookups.

``stats.probes`` counts the rows surfaced by each probe — the same
quantity the tuple-at-a-time path counts per :meth:`Database.match`
row — so probe-based engine comparisons stay meaningful across the
two execution disciplines.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterable, Sequence

from ..datalog.atoms import Atom
from ..datalog.terms import Term
from ..ra.database import Database
from .plan import JoinPlan, JoinStep, compile_plan, entry_layout
from .stats import EvaluationStats

_NO_ROWS: tuple = ()


def _probe_key_getter(step: JoinStep):
    """A callable binding-tuple → probe key for *step*.

    Single-column keys are unwrapped scalars, matching the layout of
    :meth:`Database.hash_table`.
    """
    if step.key_is_all_vars:
        slots = step.key_slots
        if len(slots) == 1:
            slot = slots[0]
            return lambda binding: binding[slot]
        return itemgetter(*slots)
    sources = step.key_sources
    if len(sources) == 1:
        _, value = sources[0]
        return lambda binding: value  # single constant key
    return lambda binding: tuple(
        payload if is_const else binding[payload]
        for is_const, payload in sources)


def _run_step(database: Database, step: JoinStep,
              batch: list[tuple],
              stats: EvaluationStats | None) -> list[tuple]:
    builds_before = database.hash_builds
    table = database.hash_table(step.predicate, step.key_positions)
    if stats is not None:
        stats.hash_builds += database.hash_builds - builds_before
        stats.hash_lookups += 1
    get_key = _probe_key_getter(step) if step.key_positions else None
    lookup = table.get
    new_positions = step.new_positions
    same_free = step.same_free
    out: list[tuple] = []
    append = out.append
    probes = 0
    for binding in batch:
        rows = lookup(get_key(binding) if get_key else (), _NO_ROWS)
        if not rows:
            continue
        probes += len(rows)
        if same_free:
            rows = [row for row in rows
                    if all(row[i] == row[j] for i, j in same_free)]
        if len(new_positions) == 1:
            position = new_positions[0]
            for row in rows:
                append(binding + (row[position],))
        elif not new_positions:
            if rows:
                append(binding)
        else:
            for row in rows:
                append(binding
                       + tuple(row[p] for p in new_positions))
    if stats is not None:
        stats.probes += probes
    return out


def join_batch(database: Database, plan: JoinPlan,
               batch: Iterable[tuple],
               stats: EvaluationStats | None = None) -> list[tuple]:
    """All full binding tuples reachable from *batch* through *plan*."""
    current = batch if isinstance(batch, list) else list(batch)
    for step in plan.steps:
        if not current:
            return []
        current = _run_step(database, step, current, stats)
    return current


def execute_plan(database: Database, plan: JoinPlan,
                 batch: Iterable[tuple],
                 stats: EvaluationStats | None = None) -> set[tuple]:
    """Project the join of *batch* through *plan* onto the head terms.

    Semantically identical to running ``solve_project`` once per batch
    binding and unioning — property-tested in
    ``tests/test_setjoin_properties.py``.
    """
    bindings = join_batch(database, plan, batch, stats)
    if stats is not None:
        stats.derived += len(bindings)
    if not bindings:
        return set()
    sources = plan.out_sources
    if all(not is_const for is_const, _ in sources):
        slots = tuple(payload for _, payload in sources)
        if len(slots) == 1:
            slot = slots[0]
            return {(binding[slot],) for binding in bindings}
        getter = itemgetter(*slots)
        return set(map(getter, bindings))
    return {tuple(payload if is_const else binding[payload]
                  for is_const, payload in sources)
            for binding in bindings}


def apply_rule(database: Database, body: Sequence[Atom],
               entry_terms: Sequence[Term], out_terms: Sequence[Term],
               rows: Iterable[tuple],
               stats: EvaluationStats | None = None) -> set[tuple]:
    """One set-at-a-time rule application: bind *entry_terms* to each
    of *rows*, join through *body*, project onto *out_terms*.

    This is the drop-in batch replacement for the per-tuple
    ``solve_project`` loop of the fixpoint engines.
    """
    plan = compile_plan(body, entry_terms, out_terms, database, stats)
    batch = entry_layout(tuple(entry_terms)).batch(rows)
    if stats is not None:
        stats.record_batch(len(batch))
    return execute_plan(database, plan, batch, stats)
