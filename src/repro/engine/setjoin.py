"""Set-at-a-time execution of compiled join plans.

Where :func:`repro.engine.conjunctive.solve_project` backtracks per
binding, :func:`execute_plan` pushes a whole batch of bindings (one
per delta tuple) through the plan's steps at once: each step probes a
hash table built per (relation, key-columns) and cached on the
:class:`~repro.ra.database.Database` against its version counter, so
a fixpoint pays the table build once and every later round is pure
dict lookups.

``stats.probes`` counts the rows surfaced by each probe — the same
quantity the tuple-at-a-time path counts per :meth:`Database.match`
row — so probe-based engine comparisons stay meaningful across the
two execution disciplines.

Under dictionary encoding every binding tuple, probe key and stored
row is made of dense int codes, which unlocks a second access path:
single-column keys probe a plain Python *list* indexed by code
(:meth:`Database.dense_table`) instead of hashing — no ``__hash__``,
no ``__eq__``, one ``LIST_SUBSCR``.  :func:`probe_table` is the single
place that picks between the two, so the sharded engine's pre-warm
builds exactly the table the kernel will probe.  Multi-column keys and
``intern=False`` databases keep the dict path verbatim; either way a
(relation, key) table is built exactly once per version, so the
``hash_builds`` counter is identical across modes.

The hot linear-recursion shape goes one step further and runs
*column-wise*: when a plan carries a
:class:`~repro.engine.plan.FusedTail` certificate, the final probe
reads a :meth:`Database.dense_column` view whose buckets hold only the
single emitted output column, assembling each projected output pair
without ever materialising the intermediate extended binding or
touching a full stored row.  Within the fixpoint, emitted blocks stay
row-major — every round feeds a row-hash dedup (``new - total``), so
rows are the native shape there — and the column representation
resumes at the answer boundary
(:class:`~repro.ra.answers.AnswerSet`).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterable, Sequence

from ..datalog.atoms import Atom
from ..datalog.terms import Term
from ..ra.database import Database
from .plan import JoinPlan, JoinStep, compile_plan, entry_layout
from .stats import EvaluationStats

_NO_ROWS: tuple = ()


def _probe_key_getter(step: JoinStep):
    """A callable binding-tuple → probe key for *step*.

    Single-column keys are unwrapped scalars, matching the layout of
    :meth:`Database.hash_table`.
    """
    if step.key_is_all_vars:
        slots = step.key_slots
        if len(slots) == 1:
            slot = slots[0]
            return lambda binding: binding[slot]
        return itemgetter(*slots)
    sources = step.key_sources
    if len(sources) == 1:
        _, value = sources[0]
        return lambda binding: value  # single constant key
    return lambda binding: tuple(
        payload if is_const else binding[payload]
        for is_const, payload in sources)


def probe_table(database: Database, name: str,
                key_positions: tuple[int, ...]):
    """The access path the kernel probes for ``(name, key_positions)``:
    a code-indexed list for single-column keys under interning, the
    key→rows dict otherwise.  One build per (relation, key) per
    version in either mode."""
    if len(key_positions) == 1:
        dense = database.dense_table(name, key_positions[0])
        if dense is not None:
            return dense
    return database.hash_table(name, key_positions)


def _dense_probe(dense: list, step: JoinStep, batch: list[tuple],
                 stats: EvaluationStats | None) -> list[tuple]:
    """Probe a code-indexed list table: ``dense[code]`` is the row
    bucket (the shared empty tuple when no row carries that code).
    Codes interned after the build are out of range — and provably in
    no stored row — so the bounds check doubles as the miss test."""
    size = len(dense)
    new_positions = step.new_positions
    same_free = step.same_free
    out: list[tuple] = []
    append = out.append
    probes = 0
    if step.key_is_all_vars:
        slot = step.key_slots[0]
        if len(new_positions) == 1 and not same_free:
            # The hot shape of every linear recursion: extend each
            # binding by one column, no intra-atom repeats.  Empty
            # buckets are () so the whole batch runs as one C-level
            # comprehension; every surfaced row is emitted, so the
            # probe count is the output length.
            position = new_positions[0]
            try:
                out = [binding + (row[position],)
                       for binding in batch
                       for row in dense[binding[slot]]]
            except IndexError:
                # a code interned after the build (out of range, in no
                # stored row): redo the batch with bounds checks
                out = []
                append = out.append
                for binding in batch:
                    code = binding[slot]
                    if code < size:
                        for row in dense[code]:
                            append(binding + (row[position],))
            if stats is not None:
                stats.probes += len(out)
            return out
        keys = (binding[slot] for binding in batch)
        pairs = zip(batch, keys)
    else:
        code = step.key_sources[0][1]  # single constant key
        fixed = dense[code] if code < size else _NO_ROWS
        pairs = ((binding, None) for binding in batch)
    for binding, code in pairs:
        if code is None:
            rows = fixed
        elif code < size:
            rows = dense[code]
        else:
            rows = _NO_ROWS
        if not rows:
            continue
        probes += len(rows)
        if same_free:
            rows = [row for row in rows
                    if all(row[i] == row[j] for i, j in same_free)]
        if len(new_positions) == 1:
            position = new_positions[0]
            for row in rows:
                append(binding + (row[position],))
        elif not new_positions:
            if rows:
                append(binding)
        else:
            for row in rows:
                append(binding + tuple(row[p] for p in new_positions))
    if stats is not None:
        stats.probes += probes
    return out


def _run_step(database: Database, step: JoinStep,
              batch: list[tuple],
              stats: EvaluationStats | None) -> list[tuple]:
    builds_before = database.hash_builds
    table = probe_table(database, step.predicate, step.key_positions)
    if stats is not None:
        stats.hash_builds += database.hash_builds - builds_before
        stats.hash_lookups += 1
    if type(table) is list:
        return _dense_probe(table, step, batch, stats)
    get_key = _probe_key_getter(step) if step.key_positions else None
    lookup = table.get
    new_positions = step.new_positions
    same_free = step.same_free
    if (get_key is None and not same_free and len(batch) == 1
            and not batch[0]):
        # Key-less scan from the empty binding — the shape of every
        # exit rule and every fixpoint-seeding first step.  When the
        # atom binds each column in order the output bindings ARE the
        # stored rows, so the whole step is one list copy.
        rows = lookup((), _NO_ROWS)
        if stats is not None:
            stats.probes += len(rows)
        if not rows:
            return []
        if not new_positions:
            return [()]
        if new_positions == tuple(range(len(rows[0]))):
            return list(rows)
        if len(new_positions) == 1:
            position = new_positions[0]
            return [(row[position],) for row in rows]
        emit = itemgetter(*new_positions)
        return [emit(row) for row in rows]
    out: list[tuple] = []
    append = out.append
    probes = 0
    emit = (itemgetter(*new_positions)
            if len(new_positions) > 1 else None)
    for binding in batch:
        rows = lookup(get_key(binding) if get_key else (), _NO_ROWS)
        if not rows:
            continue
        probes += len(rows)
        if same_free:
            rows = [row for row in rows
                    if all(row[i] == row[j] for i, j in same_free)]
        if len(new_positions) == 1:
            position = new_positions[0]
            for row in rows:
                append(binding + (row[position],))
        elif not new_positions:
            if rows:
                append(binding)
        else:
            for row in rows:
                append(binding + emit(row))
    if stats is not None:
        stats.probes += probes
    return out


def join_batch(database: Database, plan: JoinPlan,
               batch: Iterable[tuple],
               stats: EvaluationStats | None = None) -> list[tuple]:
    """All full binding tuples reachable from *batch* through *plan*."""
    current = batch if isinstance(batch, list) else list(batch)
    for step in plan.steps:
        if not current:
            return []
        current = _run_step(database, step, current, stats)
    return current


def _fused_final_rows(database: Database, plan: JoinPlan,
                      batch: list[tuple],
                      stats: EvaluationStats | None) -> list[tuple] | None:
    """Output rows of *plan* with the projection fused into the last
    probe, or None when the shape doesn't qualify.

    For the hot linear-recursion shape — last step probes one bound
    slot, binds one new column, and the head projects two variables of
    which exactly one is that new column — the intermediate extended
    binding tuple is never needed.  The shape is certified at compile
    time (:class:`~repro.engine.plan.FusedTail`), and the probe runs
    *column-wise*: :meth:`Database.dense_column` buckets hold only the
    emitted output column, so each output pair is assembled from the
    carried binding slot and the probed column value directly — no
    per-emitted-row ``row[position]`` indexing, no full-row buckets.
    Only the dense (interned) path qualifies, so ``intern=False``
    keeps the unfused pipeline verbatim.  Probe/derived accounting is
    identical to the unfused path (every surfaced column value emits
    exactly one output row), and the column view derives from the
    same counted dense-table build, so ``hash_builds`` is too.
    """
    spec = plan.fused
    if spec is None or not database.interned:
        return None
    for earlier in plan.steps[:-1]:
        if not batch:
            return []
        batch = _run_step(database, earlier, batch, stats)
    if not batch:
        return []
    builds_before = database.hash_builds
    view = database.dense_column(spec.predicate, spec.key_position,
                                 spec.position)
    if stats is not None:
        stats.hash_builds += database.hash_builds - builds_before
        stats.hash_lookups += 1
    slot, keep, new_first = spec.slot, spec.keep, spec.new_first
    try:
        if new_first:
            out = [(value, binding[keep])
                   for binding in batch
                   for value in view[binding[slot]]]
        else:
            out = [(binding[keep], value)
                   for binding in batch
                   for value in view[binding[slot]]]
    except IndexError:
        # a code interned after the build — out of range, in no row
        size = len(view)
        out = []
        append = out.append
        for binding in batch:
            code = binding[slot]
            if code < size:
                for value in view[code]:
                    append((value, binding[keep]) if new_first
                           else (binding[keep], value))
    if stats is not None:
        stats.probes += len(out)
    return out


def execute_plan(database: Database, plan: JoinPlan,
                 batch: Iterable[tuple],
                 stats: EvaluationStats | None = None) -> set[tuple]:
    """Project the join of *batch* through *plan* onto the head terms.

    Semantically identical to running ``solve_project`` once per batch
    binding and unioning — property-tested in
    ``tests/test_setjoin_properties.py``.
    """
    if not isinstance(batch, list):
        batch = list(batch)
    fused = _fused_final_rows(database, plan, batch, stats)
    if fused is not None:
        if stats is not None:
            stats.derived += len(fused)
        return set(fused)
    bindings = join_batch(database, plan, batch, stats)
    if stats is not None:
        stats.derived += len(bindings)
    if not bindings:
        return set()
    sources = plan.out_sources
    if all(not is_const for is_const, _ in sources):
        slots = tuple(payload for _, payload in sources)
        if slots == tuple(range(plan.width)):
            return set(bindings)  # head == layout: no projection
        if len(slots) == 1:
            slot = slots[0]
            return {(binding[slot],) for binding in bindings}
        getter = itemgetter(*slots)
        return set(map(getter, bindings))
    return {tuple(payload if is_const else binding[payload]
                  for is_const, payload in sources)
            for binding in bindings}


def apply_rule(database: Database, body: Sequence[Atom],
               entry_terms: Sequence[Term], out_terms: Sequence[Term],
               rows: Iterable[tuple],
               stats: EvaluationStats | None = None) -> set[tuple]:
    """One set-at-a-time rule application: bind *entry_terms* to each
    of *rows*, join through *body*, project onto *out_terms*.

    This is the drop-in batch replacement for the per-tuple
    ``solve_project`` loop of the fixpoint engines.
    """
    plan = compile_plan(body, entry_terms, out_terms, database, stats)
    encode = database.encode_const if database.interned else None
    batch = entry_layout(tuple(entry_terms), encode).batch(rows)
    if stats is not None:
        stats.record_batch(len(batch))
    return execute_plan(database, plan, batch, stats)
