"""Selection-first conjunctive-query evaluation over the fact store.

This is the shared workhorse of every engine: given a conjunction of
atoms and an initial variable binding, enumerate all satisfying
bindings by backtracking search with a greedy, dynamically re-ranked
atom order — the most-bound atom (most selective access path) is
always evaluated next, which is precisely the paper's principle that
"join operations will be performed only after selection operations".

The solver runs in *storage space*: bindings, probe patterns and
result rows hold whatever the database stores (dense int codes under
interning, raw values with ``intern=False`` — where the two spaces
coincide).  Constants from the rule text are pushed through
``database.encode_const`` at the point they enter a pattern or an
output row; callers that seed a binding must seed storage-space
values, and callers that surface rows to users decode them once at
the answer boundary.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..datalog.atoms import Atom
from ..datalog.terms import Constant, Term, Variable
from ..ra.database import Database
from .stats import EvaluationStats

#: A binding maps variables to storage-space database values.
Binding = dict[Variable, object]


def pattern_of(body_atom: Atom, binding: Mapping[Variable, object],
               encode=None) -> tuple:
    """The match pattern of *body_atom* under *binding* (None = free).

    *encode* maps rule-text constants into storage space
    (``Database.encode_const``); binding values are storage-space
    already.
    """
    out: list[object | None] = []
    for term in body_atom.args:
        if isinstance(term, Constant):
            out.append(term.value if encode is None
                       else encode(term.value))
        else:
            out.append(binding.get(term))
    return tuple(out)


def _boundness(body_atom: Atom, binding: Mapping[Variable, object]) -> int:
    count = 0
    for term in body_atom.args:
        if isinstance(term, Constant) or (
                isinstance(term, Variable) and term in binding):
            count += 1
    return count


def _bind(body_atom: Atom, row: tuple,
          binding: Binding) -> list[Variable] | None:
    """Bind *body_atom*'s free variables to *row* in place.

    Returns the variables newly bound (for the caller to unbind on
    backtrack), or None on conflict (repeated variables inside the
    atom must agree) — partial bindings are rolled back before
    returning.  Mutating one shared dict avoids the full-dict copy the
    old ``_extend`` paid per examined row.
    """
    added: list[Variable] = []
    for term, value in zip(body_atom.args, row):
        if isinstance(term, Constant):
            continue
        seen = binding.get(term)
        if seen is None:
            binding[term] = value
            added.append(term)
        elif seen != value:
            for variable in added:
                del binding[variable]
            return None
    return added


def solve(database: Database, atoms: Sequence[Atom],
          binding: Mapping[Variable, object] | None = None,
          stats: EvaluationStats | None = None) -> Iterator[Binding]:
    """All bindings satisfying the conjunction of *atoms*.

    >>> db = Database.from_dict({"A": [("a", "b"), ("b", "c")]})
    >>> from ..datalog.parser import parse_atom
    >>> pair = [parse_atom("A(x, y)"), parse_atom("A(y, z)")]
    >>> answers = list(solve(db, pair))
    >>> len(answers)
    1
    """
    start: Binding = dict(binding or {})
    encode = database.encode_const if database.interned else None

    def backtrack(remaining: list[Atom],
                  current: Binding) -> Iterator[Binding]:
        if not remaining:
            yield dict(current)
            return
        # Greedy: most-bound atom first, smaller relation on ties.
        best_index = max(
            range(len(remaining)),
            key=lambda i: (_boundness(remaining[i], current),
                           -database.count(remaining[i].predicate)))
        chosen = remaining[best_index]
        rest = remaining[:best_index] + remaining[best_index + 1:]
        probe_pattern = pattern_of(chosen, current, encode)
        for row in database.match_encoded(chosen.predicate,
                                          probe_pattern):
            if stats is not None:
                stats.probes += 1
            added = _bind(chosen, row, current)
            if added is not None:
                yield from backtrack(rest, current)
                for variable in added:
                    del current[variable]

    yield from backtrack(list(atoms), start)


def solve_project(database: Database, atoms: Sequence[Atom],
                  out_terms: Sequence[Term],
                  binding: Mapping[Variable, object] | None = None,
                  stats: EvaluationStats | None = None
                  ) -> set[tuple]:
    """The projections of all solutions onto *out_terms*.

    This is rule application: *out_terms* is typically the head's
    argument list.  Rows come back in storage space — decode at the
    answer boundary, or feed them to ``add_encoded``/``bulk_encoded``.
    """
    encode = database.encode_const if database.interned else None
    results: set[tuple] = set()
    for solution in solve(database, atoms, binding, stats):
        row = tuple(
            (term.value if encode is None else encode(term.value))
            if isinstance(term, Constant)
            else solution[term]
            for term in out_terms)
        results.add(row)
        if stats is not None:
            stats.derived += 1
    return results


def satisfiable(database: Database, atoms: Sequence[Atom],
                binding: Mapping[Variable, object] | None = None,
                stats: EvaluationStats | None = None) -> bool:
    """The paper's existence check ∃: is there at least one solution?"""
    return next(solve(database, atoms, binding, stats), None) is not None
