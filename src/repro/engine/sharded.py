"""Sharded semi-naive evaluation over a persistent worker pool.

The classified recursive rule compiles into an iterative loop whose
rounds are pure functions of the delta relation (see
:mod:`repro.engine.seminaive`), which makes the loop embarrassingly
partitionable: hash-split the delta on the join key, apply the rule to
each shard in its own process, union the results into the next delta.

Architecture
------------
* The parent creates one :mod:`multiprocessing` pool per fixpoint,
  lazily — on the first round whose delta is large enough to be worth
  the IPC.  Workers are initialized once with a read-only *snapshot*
  of the database and the rule pieces (see
  :meth:`~repro.ra.database.Database.__getstate__`); afterwards only
  delta shards travel down and (answer-set, counters) pairs travel
  back.  Because the snapshot never mutates, each worker builds its
  hash tables once and reuses them across every later round.
* ``workers=0`` selects a deterministic in-process executor: the same
  partition/apply/union path without any processes, bit-identical to
  :class:`~repro.engine.seminaive.SemiNaiveEngine` and usable under
  coverage and debuggers.
* Faults degrade, never fail: if the pool cannot be created, dies, or
  a dispatch errors, the round (and all later ones) falls back to the
  sequential set-at-a-time kernel and ``stats.pool_fallbacks`` counts
  the event.  Deltas below ``min_parallel_rows`` skip the pool as
  well (``stats.sequential_rounds``).
"""

from __future__ import annotations

import multiprocessing
import time

from ..datalog.program import RecursionSystem
from ..ra.database import Database
from .partition import (partition_rows, prewarm_plan_tables,
                        probe_key_positions)
from .plan import compile_plan, entry_layout
from .seminaive import SemiNaiveEngine
from .setjoin import apply_rule
from .stats import EvaluationStats

#: Per-process worker state, filled in by :func:`_init_worker`.
_WORKER_STATE: dict = {}


def _init_worker(database: Database, body, entry_terms,
                 out_terms) -> None:
    """Pool initializer: pin the snapshot and rule pieces.

    The snapshot's symbol table is frozen: every constant the rounds
    can mention was interned in the parent before the pool was
    created (rule and query constants at plan-compile time, facts at
    load time), so a worker that tries to intern something new has a
    code-space bug — better a loud KeyError than silently divergent
    codes.
    """
    database.freeze_symbols()
    _WORKER_STATE["database"] = database
    _WORKER_STATE["body"] = body
    _WORKER_STATE["entry_terms"] = entry_terms
    _WORKER_STATE["out_terms"] = out_terms
    #: head tuples this worker already shipped in earlier rounds of
    #: the current fixpoint — re-deriving them is common (TC reaches
    #: the same pair along many paths) and re-shipping is pure waste:
    #: anything shipped before is in the parent's ``total`` already,
    #: so suppressing it cannot change any delta.
    _WORKER_STATE["emitted"] = set()


def _run_shard(rows: list[tuple]
               ) -> tuple[set[tuple], EvaluationStats, float]:
    """Apply the recursive rule to one delta shard in a worker.

    Returns the fresh head tuples, the shard's counters, and the
    worker's wall-clock seconds for the shard (traced as skew
    evidence).
    """
    started = time.perf_counter()
    stats = EvaluationStats()
    answers = apply_rule(_WORKER_STATE["database"], _WORKER_STATE["body"],
                         _WORKER_STATE["entry_terms"],
                         _WORKER_STATE["out_terms"], rows, stats)
    emitted = _WORKER_STATE["emitted"]
    fresh = answers - emitted
    emitted |= fresh
    return fresh, stats, time.perf_counter() - started


def record_pool_health(registry, stats_delta: dict) -> None:
    """Feed one evaluation's pool-health counters into *registry*.

    *stats_delta* is a snapshot difference of
    :meth:`~repro.engine.stats.EvaluationStats.to_dict` (see
    :func:`~repro.engine.stats.delta_between`), so calling this once
    per query keeps the registry totals equal to the per-query sums.
    This module owns the sharded metric names; the generic query
    instrumentation lives in :mod:`repro.metrics.instrument`.
    """
    registry.counter(
        "repro_pool_fallbacks_total",
        "Rounds that fell back to sequential execution (pool "
        "unavailable, died, or dispatch error).",
    ).inc(stats_delta.get("pool_fallbacks", 0))
    registry.counter(
        "repro_sequential_rounds_total",
        "Rounds run sequentially because the delta was below the "
        "parallelism threshold.",
    ).inc(stats_delta.get("sequential_rounds", 0))
    registry.counter(
        "repro_pool_round_trip_seconds_total",
        "Wall-clock seconds spent waiting on the worker pool.",
    ).inc(stats_delta.get("pool_round_trip_s", 0.0))
    shard_counts = stats_delta.get("shard_counts", ())
    registry.counter(
        "repro_shard_rounds_total",
        "Partitioned rounds executed by the sharded engine.",
    ).inc(len(shard_counts))
    registry.counter(
        "repro_shards_dispatched_total",
        "Non-empty delta shards dispatched across all rounds.",
    ).inc(sum(shard_counts))
    skew = registry.histogram(
        "repro_shard_skew",
        "Max/mean shard-size ratio per partitioned round "
        "(1.0 = perfectly balanced).",
        buckets=(1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0))
    for value in stats_delta.get("shard_skew", ()):
        skew.observe(value)


class ShardedSemiNaiveEngine(SemiNaiveEngine):
    """Semi-naive fixpoint with hash-partitioned parallel rounds.

    Parameters
    ----------
    workers:
        Pool size.  0 (the default) runs the sharded path in-process —
        deterministic, no processes, answers bit-identical to
        :class:`SemiNaiveEngine`.
    shards:
        Shards per round; defaults to *workers* (or 4 when
        ``workers=0``).
    min_parallel_rows:
        Deltas smaller than this run sequentially — shipping tiny
        shards costs more than the join work saved.
    start_method:
        Forced :mod:`multiprocessing` start method; default prefers
        ``fork`` (snapshot inherited for free) where available.

    >>> from ..datalog.parser import parse_system
    >>> s = parse_system("P(x, y) :- A(x, z), P(z, y).")
    >>> db = Database.from_dict({
    ...     "A": [("a", "b"), ("b", "c")],
    ...     "P__exit": [("c", "c")]})
    >>> sorted(ShardedSemiNaiveEngine(workers=0).evaluate(s, db))
    [('a', 'c'), ('b', 'c'), ('c', 'c')]
    """

    name = "sharded"

    #: rounds go through :meth:`_recursive_round` (partition/dispatch)
    #: — the whole-loop vector delegation would bypass sharding, so it
    #: is disabled here; workers still profit from the pre-warmed CSR
    #: columns (see :func:`~repro.engine.partition.prewarm_plan_tables`)
    vector_rounds = False

    def __init__(self, workers: int = 0, shards: int | None = None,
                 min_parallel_rows: int = 256,
                 start_method: str | None = None,
                 backend: str = "auto") -> None:
        super().__init__(set_at_a_time=True, backend=backend)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.shards = shards if shards is not None else (
            workers if workers > 0 else 4)
        self.min_parallel_rows = min_parallel_rows
        self.start_method = start_method
        self._pool = None
        self._pool_broken = False
        self._pool_args: tuple | None = None

    # -- pool lifecycle --------------------------------------------------

    def _begin_fixpoint(self, system: RecursionSystem,
                        database: Database,
                        stats: EvaluationStats) -> None:
        stats.workers = self.workers
        self._pool = None
        self._pool_broken = False
        rule = system.recursive
        self._pool_args = (database, tuple(rule.nonrecursive_atoms),
                           rule.recursive_atom.args, rule.head.args)

    def _end_fixpoint(self, stats: EvaluationStats) -> None:
        self._stop_pool()
        self._pool_args = None

    def _stop_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def _ensure_pool(self):
        """The live pool, created on first use; None when unavailable."""
        if self._pool is not None or self._pool_broken:
            return self._pool
        try:
            methods = multiprocessing.get_all_start_methods()
            method = self.start_method or (
                "fork" if "fork" in methods else None)
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(self.workers,
                                      initializer=_init_worker,
                                      initargs=self._pool_args)
        except Exception:
            self._pool_broken = True
            self._pool = None
        return self._pool

    # -- round execution -------------------------------------------------

    def _recursive_round(self, database: Database, body_rest,
                         recursive_vars, head_args, delta: set[tuple],
                         stats: EvaluationStats,
                         trace=None) -> set[tuple]:
        # The inherited semi-naive loop enforces the full deadline
        # (wall clock, row budget, cancel) after every round; a
        # *partitioned* round can itself be long, so the wall-clock/
        # cancel check additionally runs at shard boundaries here —
        # a shard is never interrupted (the soundness unit), but a
        # round of many shards cannot overshoot the budget by more
        # than one shard's work.  The row budget stays a round-
        # boundary concern: only the caller knows the running total.
        deadline = stats.deadline
        if self.workers > 0 and len(delta) < self.min_parallel_rows:
            stats.sequential_rounds += 1
            if trace is not None:
                trace.event("sequential_round", rows=len(delta),
                            threshold=self.min_parallel_rows)
            return apply_rule(database, body_rest, recursive_vars,
                              head_args, delta, stats)
        plan = compile_plan(body_rest, recursive_vars, head_args,
                            database, stats)
        layout = entry_layout(
            tuple(recursive_vars),
            database.encode_const if database.interned else None)
        key_positions = probe_key_positions(plan, layout)
        shards = [shard for shard in
                  partition_rows(delta, key_positions,
                                 max(1, self.shards))
                  if shard]
        sizes = [len(shard) for shard in shards]
        stats.record_shards(sizes)
        if self.workers == 0:
            new: set[tuple] = set()
            walls: list[float] = []
            for shard in shards:
                if deadline is not None:
                    deadline.check_time()
                started = time.perf_counter()
                new |= apply_rule(database, body_rest, recursive_vars,
                                  head_args, shard, stats)
                walls.append(time.perf_counter() - started)
            if trace is not None:
                trace.shards(sizes, walls)
            return new
        if self._pool is None and not self._pool_broken:
            # Warm the plan's probe tables in the parent before the
            # pool forks: children inherit built tables through
            # copy-on-write pages instead of each rebuilding them from
            # raw rows — including, when the plan's fused tail is
            # known at dispatch, the dense-column and CSR views the
            # fused/vector probes read.
            prewarm_plan_tables(database, plan)
        if deadline is not None:
            # last chance before committing a whole pooled round's
            # worth of work (and after it returns, below)
            deadline.check_time()
        pool = self._ensure_pool()
        if pool is None:
            stats.pool_fallbacks += 1
            if trace is not None:
                trace.event("pool_fallback", reason="pool_unavailable")
            return apply_rule(database, body_rest, recursive_vars,
                              head_args, delta, stats)
        started = time.perf_counter()
        try:
            results = pool.map(_run_shard, shards)
        except Exception:
            self._stop_pool()
            self._pool_broken = True
            stats.pool_fallbacks += 1
            if trace is not None:
                trace.event("pool_fallback", reason="dispatch_error")
            return apply_rule(database, body_rest, recursive_vars,
                              head_args, delta, stats)
        stats.pool_round_trip_s += time.perf_counter() - started
        if deadline is not None:
            deadline.check_time()
        new = set()
        walls = []
        for answers, shard_stats, wall in results:
            new |= answers
            walls.append(wall)
            stats.merge(shard_stats)
        if trace is not None:
            trace.shards(sizes, walls)
        return new
