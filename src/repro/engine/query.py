"""Queries against the recursive predicate.

A :class:`Query` is the paper's ``P(a, b, Z)``: a pattern over the
recursive predicate with constants at the *determined* positions and
free slots elsewhere.  Its adornment (``"ddv"``) is what the compiler
consumes; its constants seed the evaluation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..core.bindings import Adornment, adornment_to_string
from ..datalog.errors import DatalogSyntaxError

_HEAD_RE = re.compile(r"\s*(?P<pred>[A-Za-z_][A-Za-z0-9_]*)\s*\(")


@dataclass(frozen=True)
class Query:
    """A query pattern: constants at bound positions, None elsewhere.

    >>> q = Query.parse("P(a, Y, Z)")
    >>> q.pattern
    ('a', None, None)
    >>> q.adornment_string
    'dvv'
    """

    predicate: str
    pattern: tuple[object | None, ...]

    @classmethod
    def parse(cls, text: str) -> "Query":
        """Parse ``P(a, Y, Z)``: capitalised names, ``_`` and ``?`` are
        free slots; lower-case names, quoted strings and numbers are
        constants.  Quoted constants may contain any character,
        including ``,`` and ``)``:

        >>> Query.parse("P('a, b', Y)").pattern
        ('a, b', None)
        """
        match = _HEAD_RE.match(text)
        if match is None:
            raise DatalogSyntaxError(f"cannot parse query: {text!r}")
        raw, end = cls._split_args(text, match.end())
        if text[end:].strip() not in ("", "?"):
            raise DatalogSyntaxError(
                f"trailing text after query: {text!r}")
        pattern: list[object | None] = []
        for piece in raw:
            if piece in ("_", "?") or (piece and piece[0].isupper()):
                pattern.append(None)
            elif (len(piece) >= 2 and piece.startswith("'")
                    and piece.endswith("'")):
                pattern.append(piece[1:-1])
            else:
                try:
                    pattern.append(int(piece))
                except ValueError:
                    try:
                        pattern.append(float(piece))
                    except ValueError:
                        pattern.append(piece)
        return cls(match.group("pred"), tuple(pattern))

    @staticmethod
    def _split_args(text: str, start: int) -> tuple[list[str], int]:
        """Split the argument list starting at *start* (just past the
        opening paren) on top-level commas, honouring single-quoted
        constants, and return the stripped pieces plus the index just
        past the closing paren."""
        pieces: list[str] = []
        buffer: list[str] = []
        in_quote = False
        for position in range(start, len(text)):
            char = text[position]
            if in_quote:
                buffer.append(char)
                if char == "'":
                    in_quote = False
            elif char == "'":
                buffer.append(char)
                in_quote = True
            elif char == ",":
                pieces.append("".join(buffer).strip())
                buffer = []
            elif char == ")":
                pieces.append("".join(buffer).strip())
                if pieces == [""]:    # the empty argument list ``P()``
                    pieces = []
                elif "" in pieces:
                    raise DatalogSyntaxError(
                        f"empty argument in query: {text!r}")
                return pieces, position + 1
            else:
                buffer.append(char)
        raise DatalogSyntaxError(
            "unterminated quote in query: " f"{text!r}" if in_quote
            else f"unterminated argument list in query: {text!r}")

    @classmethod
    def all_free(cls, predicate: str, arity: int) -> "Query":
        """The fully open query ``P(v, ..., v)``."""
        return cls(predicate, (None,) * arity)

    @classmethod
    def from_atom(cls, goal) -> "Query":
        """Build a query from a goal atom (``?-`` statements): its
        variables become free slots, constants stay bound."""
        pattern = tuple(
            None if not hasattr(term, "value") else term.value
            for term in goal.args)
        return cls(goal.predicate, pattern)

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.pattern)

    @property
    def adornment(self) -> Adornment:
        """The bound positions (0-based)."""
        return frozenset(i for i, v in enumerate(self.pattern)
                         if v is not None)

    @property
    def adornment_string(self) -> str:
        """The paper's d/v rendering of the adornment."""
        return adornment_to_string(self.adornment, self.arity)

    @property
    def constants(self) -> dict[int, object]:
        """Bound position → constant value."""
        return {i: v for i, v in enumerate(self.pattern) if v is not None}

    def encoded(self, database) -> "Query":
        """This query with its constants pushed into *database*'s
        storage space (interning them), so :meth:`matches` /
        :meth:`filter` apply directly to stored rows.  Returns *self*
        for a raw (``intern=False``) database, where the two spaces
        coincide."""
        if not database.interned:
            return self
        return Query(self.predicate,
                     database.encode_pattern(self.pattern))

    def matches(self, row: tuple) -> bool:
        """True when *row* agrees with the pattern's constants."""
        return all(value is None or row[i] == value
                   for i, value in enumerate(self.pattern))

    def filter(self, rows) -> frozenset[tuple]:
        """The rows matching the pattern.

        Specialised by adornment: the free query copies, a single
        bound position compares one slot per row, and only the general
        multi-constant pattern pays the per-row :meth:`matches` loop —
        this sits on every engine's answer boundary, where *rows* is a
        whole materialised fixpoint.
        """
        bound = [(i, v) for i, v in enumerate(self.pattern)
                 if v is not None]
        if not bound:
            return frozenset(rows)
        if len(bound) == 1:
            (i, v), = bound
            return frozenset(row for row in rows if row[i] == v)
        return frozenset(row for row in rows if self.matches(row))

    def __str__(self) -> str:
        inner = ", ".join(str(v) if v is not None else "_"
                          for v in self.pattern)
        return f"{self.predicate}({inner})"
