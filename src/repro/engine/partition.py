"""Hash partitioning of delta relations for sharded execution.

Each semi-naive round is a pure function of the round's delta: the
recursive rule is applied to every delta tuple independently and the
results are unioned.  Any partition of the delta therefore yields the
same round result — sharding is purely a throughput decision, never a
correctness one (property-tested in
``tests/test_sharded_properties.py``).

The partitioning *key* still matters for balance.  We hash on the
delta columns that feed the join plan's first probe key (the columns
the first hash join actually looks up), so tuples that probe the same
hash bucket land in the same shard and the per-shard working sets stay
disjoint-ish.  When the plan starts with an unbound (cartesian) step
the whole row is hashed instead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .plan import EntryLayout, JoinPlan


def probe_key_positions(plan: JoinPlan,
                        layout: EntryLayout) -> tuple[int, ...]:
    """The delta-row columns feeding *plan*'s first bound probe key.

    Plan key sources address binding-layout slots; only slots within
    the entry layout correspond to delta columns, and the first step's
    bound key always lies there (nothing else is bound yet).  Returns
    ``()`` when no step keys on an entry column — the caller should
    then hash whole rows.
    """
    entry_width = len(layout.variables)
    for step in plan.steps:
        slots = [payload for is_const, payload in step.key_sources
                 if not is_const and payload < entry_width]
        if slots:
            return tuple(layout.take[slot] for slot in slots)
    return ()


def partition_rows(rows: Iterable[tuple],
                   key_positions: Sequence[int],
                   shard_count: int) -> list[list[tuple]]:
    """Partition *rows* into *shard_count* shards by hashed key.

    Rows agreeing on the key columns always share a shard.  Shards may
    come back empty; the union of all shards is exactly *rows*.
    """
    if shard_count <= 1:
        return [list(rows)]
    shards: list[list[tuple]] = [[] for _ in range(shard_count)]
    if not key_positions:
        for row in rows:
            shards[hash(row) % shard_count].append(row)
    elif len(key_positions) == 1:
        position = key_positions[0]
        for row in rows:
            shards[hash(row[position]) % shard_count].append(row)
    else:
        for row in rows:
            key = tuple(row[p] for p in key_positions)
            shards[hash(key) % shard_count].append(row)
    return shards
