"""Hash partitioning of delta relations for sharded execution.

Each semi-naive round is a pure function of the round's delta: the
recursive rule is applied to every delta tuple independently and the
results are unioned.  Any partition of the delta therefore yields the
same round result — sharding is purely a throughput decision, never a
correctness one (property-tested in
``tests/test_sharded_properties.py``).

The partitioning *key* still matters for balance.  We hash on the
delta columns that feed the join plan's first probe key (the columns
the first hash join actually looks up), so tuples that probe the same
hash bucket land in the same shard and the per-shard working sets stay
disjoint-ish.  When the plan starts with an unbound (cartesian) step
the whole row is hashed instead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .plan import EntryLayout, JoinPlan


def prewarm_plan_tables(database, plan: JoinPlan) -> None:
    """Build every access path *plan* will probe, ahead of dispatch.

    Called by the sharded engine in the parent process right before
    the worker pool is created: each step's probe table (the dense
    list or hash dict :func:`~repro.engine.setjoin.probe_table` would
    pick), and — when the plan carries a
    :class:`~repro.engine.plan.FusedTail` certificate — the
    dense-column view plus its CSR flattening, so worker snapshots
    start from fully built columnar structures instead of each worker
    rebuilding them from raw rows.  Idempotent: every structure is
    version-cached on the database.
    """
    from .setjoin import probe_table  # local: avoid an import cycle
    for step in plan.steps:
        if step.key_positions:
            probe_table(database, step.predicate, step.key_positions)
    spec = plan.fused
    if spec is not None and database.interned:
        database.dense_column(spec.predicate, spec.key_position,
                              spec.position)
        database.dense_column_csr(spec.predicate, spec.key_position,
                                  spec.position)


def probe_key_positions(plan: JoinPlan,
                        layout: EntryLayout) -> tuple[int, ...]:
    """The delta-row columns feeding *plan*'s first bound probe key.

    Plan key sources address binding-layout slots; only slots within
    the entry layout correspond to delta columns, and the first step's
    bound key always lies there (nothing else is bound yet).  Returns
    ``()`` when no step keys on an entry column — the caller should
    then hash whole rows.
    """
    entry_width = len(layout.variables)
    for step in plan.steps:
        slots = [payload for is_const, payload in step.key_sources
                 if not is_const and payload < entry_width]
        if slots:
            return tuple(layout.take[slot] for slot in slots)
    return ()


def partition_rows(rows: Iterable[tuple],
                   key_positions: Sequence[int],
                   shard_count: int) -> list[list[tuple]]:
    """Partition *rows* into *shard_count* shards by hashed key.

    Rows agreeing on the key columns always share a shard.  Shards may
    come back empty; the union of all shards is exactly *rows*.
    """
    if shard_count <= 1:
        return [list(rows)]
    shards: list[list[tuple]] = [[] for _ in range(shard_count)]
    if not key_positions:
        for row in rows:
            shards[hash(row) % shard_count].append(row)
    elif len(key_positions) == 1:
        position = key_positions[0]
        for row in rows:
            shards[hash(row[position]) % shard_count].append(row)
    else:
        for row in rows:
            key = tuple(row[p] for p in key_positions)
            shards[hash(key) % shard_count].append(row)
    return shards
