"""Tabled top-down evaluation (QSQR-style), the fourth engine.

The paper's compilation lineage is top-down: [Hens 84] compiles
queries by expanding the recursion symbolically and pushing the query
constants through.  This engine is the *interpreted* counterpart:
goal-directed SLD resolution with memoisation ("tabling"), sound and
terminating on Datalog.

Mechanics: a *subgoal* is a match pattern over the recursive
predicate.  Rule bodies are evaluated by the shared selection-first
conjunctive solver against a view that serves EDB relations directly
and, for the recursive predicate, serves the current table content
while *registering* every pattern it is probed with as a new subgoal.
Registered subgoals are re-solved until no table grows — the QSQR
fixpoint.  Like the compiled engine, only goal-relevant facts are
derived; unlike it, no classification is needed (and none of its
per-class shortcuts are available).
"""

from __future__ import annotations

from typing import Iterator

from ..datalog.program import RecursionSystem
from ..ra.answers import AnswerSet
from ..ra.database import Database
from .conjunctive import solve_project
from .query import Query
from .stats import EvaluationStats
from .trace import Tracer


class _GoalView:
    """A database view that tables probes of the recursive predicate.

    Quacks like :class:`Database` for the conjunctive solver
    (match_encoded / count / the encoding surface), delegating every
    relation except *predicate* to the base.  Subgoal patterns, table
    rows and solver bindings all live in the base's storage space.
    """

    def __init__(self, base: Database, predicate: str) -> None:
        self._base = base
        self._predicate = predicate
        #: subgoal pattern -> answers (full tuples) found so far
        self.tables: dict[tuple, set[tuple]] = {}
        #: patterns discovered during the current pass
        self.new_subgoals: list[tuple] = []
        #: the subgoal patterns probed during the current solving pass
        self.probed: set[tuple] = set()

    def _generalise(self, pattern: tuple) -> tuple:
        """The tabled subgoal for a probe: its bound positions."""
        return tuple(pattern)

    def register(self, pattern: tuple) -> None:
        """Ensure *pattern* has a table (and queue it when new)."""
        if pattern not in self.tables:
            self.tables[pattern] = set()
            self.new_subgoals.append(pattern)

    @property
    def interned(self) -> bool:
        return self._base.interned

    def encode_const(self, value):
        return self._base.encode_const(value)

    def match_encoded(self, name: str,
                      pattern: tuple) -> Iterator[tuple]:
        if name != self._predicate:
            yield from self._base.match_encoded(name, pattern)
            return
        subgoal = self._generalise(pattern)
        self.register(subgoal)
        self.probed.add(subgoal)
        yield from list(self.tables[subgoal])

    def count(self, name: str) -> int:
        if name != self._predicate:
            return self._base.count(name)
        return sum(len(rows) for rows in self.tables.values())

    def total_table_size(self) -> int:
        """Total memoised answers (the fixpoint's progress measure)."""
        return sum(len(rows) for rows in self.tables.values())


class TopDownEngine:
    """Goal-directed tabled resolution for one recursion system."""

    name = "top-down"

    def evaluate(self, system: RecursionSystem, edb: Database,
                 query: Query, stats: EvaluationStats | None = None,
                 trace: Tracer | None = None) -> frozenset[tuple]:
        """Answers to *query* by memoised top-down resolution.

        >>> from ..datalog.parser import parse_system
        >>> s = parse_system("P(x, y) :- A(x, z), P(z, y).")
        >>> db = Database.from_dict({
        ...     "A": [("a", "b"), ("b", "c")],
        ...     "P__exit": [("c", "c")]})
        >>> sorted(TopDownEngine().evaluate(s, db, Query.parse("P(a, Y)")))
        [('a', 'c')]
        """
        if stats is None:
            stats = EvaluationStats(engine=self.name)
        else:
            stats.engine = self.name
        stats.truncated = False
        deadline = stats.deadline

        if trace is not None:
            trace.begin(self.name, predicate=system.predicate,
                        query=query)
        view = _GoalView(edb, system.predicate)
        # Subgoals are storage-space patterns: the root query's
        # constants are encoded once here; every tabled row is a code
        # tuple until the final decode.
        enc_query = query.encoded(edb)
        root = tuple(enc_query.pattern)
        view.register(root)
        rules = [system.recursive.rule, *system.exits]

        # Worklist QSQR: a subgoal is re-solved only when one of the
        # subgoals it probes has grown (or when it is new).  Pops go in
        # *decoded*-pattern order: subgoal patterns are storage-space
        # tuples whose hash order differs between ``intern=True`` (int
        # codes) and ``intern=False`` (raw values), and a hash-ordered
        # pop would leak that difference into the round sequence.  All
        # other per-round quantities are functions of (table state,
        # chosen subgoal) alone, so a mode-independent pop order makes
        # the whole trace mode-independent (property-tested in
        # tests/test_symbols_properties.py).
        def sort_key(pattern: tuple) -> str:
            return repr(edb.decode_pattern(pattern))

        dependents: dict[tuple, set[tuple]] = {}
        queue: dict[tuple, str] = {root: sort_key(root)}
        view.new_subgoals.clear()
        while queue:
            subgoal = min(queue, key=queue.get)  # type: ignore[arg-type]
            del queue[subgoal]
            before = len(view.tables[subgoal])
            root_before = len(view.tables[root])
            if trace is not None:
                trace.begin_round("subgoal", before, stats)
            view.probed = set()
            self._solve_subgoal(system, view, rules, subgoal, stats)
            for probed in view.probed:
                dependents.setdefault(probed, set()).add(subgoal)
            for fresh in view.new_subgoals:
                if fresh not in queue:
                    queue[fresh] = sort_key(fresh)
            view.new_subgoals.clear()
            grown = len(view.tables[subgoal]) - before
            # Like ``delta_out``, the stats count *root-table* growth,
            # so the per-round sizes sum to the answer count and the
            # trace and the stats dump reconcile (asserted by
            # scripts/trace_smoke.py); the solved subgoal's own growth
            # rides along in the trace ``detail``.
            stats.record_round(len(view.tables[root]) - root_before)
            if trace is not None:
                # Render the subgoal in value space so trace output is
                # identical whichever storage mode ran it.
                trace.end_round(
                    len(view.tables[root]) - root_before, stats,
                    subgoal=str(Query(system.predicate,
                                      edb.decode_pattern(subgoal))),
                    table_growth=grown)
            if grown:
                for waiter in dependents.get(subgoal, ()):
                    if waiter not in queue:
                        queue[waiter] = sort_key(waiter)
            if deadline is not None:
                deadline.check_time()
                if deadline.out_of_rows(view.total_table_size()):
                    stats.truncated = True
                    break

        answers = enc_query.filter(view.tables[root])
        stats.answers = len(answers)
        if trace is not None:
            trace.finish(len(answers), stats)
        if edb.interned:
            answers = AnswerSet(answers, edb.symbols)
        return answers

    def _solve_subgoal(self, system: RecursionSystem, view: _GoalView,
                       rules, subgoal: tuple,
                       stats: EvaluationStats) -> None:
        """One resolution pass: every rule against one subgoal."""
        for rule in rules:
            binding = {}
            consistent = True
            for term, value in zip(rule.head.args, subgoal):
                if value is None:
                    continue
                if binding.get(term, value) != value:
                    consistent = False
                    break
                binding[term] = value
            if not consistent:
                continue
            derived = solve_project(view, rule.body, rule.head.args,
                                    binding, stats=stats)
            table = view.tables[subgoal]
            for row in derived:
                if row not in table:
                    table.add(row)
                    stats.derived += 1
