"""Evaluation engines: naive, semi-naive, and compiled.

All three agree on answers (property-tested); they differ in work
done, which is exactly the paper's point: the compiled engine pushes
query selections through the recursion wherever the classification
proves they persist.
"""

from .compiled import CompiledEngine
from .conjunctive import (Binding, pattern_of, satisfiable, solve,
                          solve_project)
from .deadline import Deadline, QueryCancelled, QueryTimeout
from .naive import NaiveEngine
from .incremental import MaterializedRecursion
from .partition import partition_rows, probe_key_positions
from .plan import JoinPlan, JoinStep, compile_plan
from .provenance import Derivation, explain_answer
from .query import Query
from .seminaive import SemiNaiveEngine
from .setjoin import apply_rule, execute_plan, join_batch
from .sharded import ShardedSemiNaiveEngine
from .topdown import TopDownEngine
from .stats import EvaluationStats
from .trace import (TRACE_SCHEMA_VERSION, RoundSpan, RuleSpan, Trace,
                    Tracer, validate_trace_dict)

ALL_ENGINES = (NaiveEngine, SemiNaiveEngine, CompiledEngine,
               TopDownEngine)

__all__ = [
    "ALL_ENGINES", "Binding", "CompiledEngine", "Deadline",
    "EvaluationStats", "QueryCancelled", "QueryTimeout",
    "JoinPlan", "JoinStep", "NaiveEngine", "Query", "SemiNaiveEngine",
    "ShardedSemiNaiveEngine",
    "TRACE_SCHEMA_VERSION", "RoundSpan", "RuleSpan", "Trace", "Tracer",
    "validate_trace_dict",
    "pattern_of", "partition_rows", "probe_key_positions",
    "TopDownEngine", "Derivation", "MaterializedRecursion",
    "apply_rule", "compile_plan", "execute_plan", "explain_answer",
    "join_batch",
    "satisfiable", "solve", "solve_project",
]
