"""The compiled engine: classification-driven query evaluation.

This engine executes the strategies that the compiler
(:mod:`repro.core.compile`) selects symbolically:

* **BOUNDED** — the recursion is pseudo recursion: evaluate the finite
  set of exit expansions as conjunctive queries seeded with the query
  constants.  No fixpoint at all.
* **STABLE** — per-position chain iteration.  Bound positions iterate
  their cycle relation forward from the query constant (the ``σR^k``
  branches of the compiled formula); the exit relation is filtered by
  the frontiers at every depth; unbound positions walk their chains
  backward from the exit columns.  Iteration stops when the chain
  state repeats — sound because depth-k answers are a function of the
  state.
* **TRANSFORM** — unfold to the equivalent stable system (Theorem 2/4)
  and run the stable strategy on it.
* **ITERATIVE** — binding-filtered semi-naive: the adornment sequence
  of the query (section 10's query-dependent stability) generates the
  set of relevant recursive-call bindings, and the bottom-up fixpoint
  only keeps tuples matching one of them — selections pushed through
  the recursion exactly where the classification proves they persist.
"""

from __future__ import annotations

from ..core.bindings import (Adornment, body_adornment,
                             determined_closure)
from ..core.classifier import Classification
from ..core.compile import (CompiledFormula, StableCompilation, Strategy,
                            compile_query)
from ..datalog.program import RecursionSystem
from ..datalog.terms import Variable
from ..graphs.igraph import build_igraph
from ..ra.answers import AnswerSet
from ..ra.database import Database
from .conjunctive import satisfiable, solve_project
from .query import Query
from .setjoin import apply_rule
from .stats import EvaluationStats
from .trace import Tracer
from .vector import eligible as _vector_eligible
from .vector import ColumnarTotal, run_delta_loop, validate_backend


def _product_rows(pattern: tuple,
                  choice_sets: list[tuple[int, tuple]]):
    """Full-arity answer tuples: constants at bound positions, every
    combination of the per-position options at the free ones."""
    base = list(pattern)
    if not choice_sets:
        yield tuple(base)
        return
    position, options = choice_sets[0]
    for value in options:
        base[position] = value
        for rest in _product_rows(tuple(base), choice_sets[1:]):
            yield rest


class CompiledEngine:
    """Evaluate queries using the classification's compiled strategy.

    ``set_at_a_time`` selects the execution discipline of the
    ITERATIVE strategy's fixpoint loop (compiled hash-join plans by
    default); the bounded/stable strategies are frontier walks over
    single bindings and keep the tuple-at-a-time solver.

    ``backend`` steers the ITERATIVE fixpoint's delta loop exactly as
    on :class:`~repro.engine.seminaive.SemiNaiveEngine` — and only
    when the magic-binding pass proves the recursion *unrestricted*
    (the relevance filter is the identity): a binding-restricted loop
    filters every derived row, a shape the vector kernel does not
    certify.  The bounded/stable strategies always run ``"python"``.
    """

    name = "compiled"

    def __init__(self, set_at_a_time: bool = True,
                 backend: str = "auto") -> None:
        self.set_at_a_time = set_at_a_time
        self.backend = validate_backend(backend)

    def evaluate(self, system: RecursionSystem, edb: Database,
                 query: Query, stats: EvaluationStats | None = None,
                 compiled: CompiledFormula | None = None,
                 trace: Tracer | None = None) -> frozenset[tuple]:
        """Answers to *query*, via the compiled strategy.

        >>> from ..datalog.parser import parse_system
        >>> s = parse_system("P(x, y) :- A(x, z), P(z, y).")
        >>> db = Database.from_dict({
        ...     "A": [("a", "b"), ("b", "c")],
        ...     "P__exit": [("c", "c")]})
        >>> sorted(CompiledEngine().evaluate(s, db, Query.parse("P(a, Y)")))
        [('a', 'c')]
        """
        if stats is None:
            stats = EvaluationStats(engine=self.name)
        else:
            stats.engine = self.name
        stats.truncated = False
        stats.backend = "python"
        if compiled is None:
            compiled = compile_query(system, query.adornment)
        if trace is not None:
            trace.begin(self.name, predicate=system.predicate,
                        query=query,
                        strategy=compiled.strategy.name.lower())

        # The strategies run in storage space: the query's constants
        # are encoded once here, and the answers stay encoded inside a
        # lazy AnswerSet at the end.  (With intern=False ``encoded``
        # returns the query as is and the raw frozenset passes
        # through verbatim.)
        enc_query = query.encoded(edb)
        if compiled.strategy is Strategy.BOUNDED:
            answers = self._evaluate_bounded(system, compiled.classification,
                                             edb, enc_query, stats, trace)
        elif compiled.strategy is Strategy.STABLE:
            answers = self._evaluate_stable(compiled.stable, edb, enc_query,
                                            stats, trace)
        elif compiled.strategy is Strategy.TRANSFORM:
            answers = self._evaluate_stable(compiled.stable, edb, enc_query,
                                            stats, trace)
        else:
            answers = self._evaluate_iterative(system, edb, enc_query,
                                               stats, trace)
        if isinstance(answers, ColumnarTotal):
            # the vectorised fixpoint's columnar product: filter by
            # vector mask, wrap without building row tuples
            answers = answers.filter(enc_query)
        else:
            answers = enc_query.filter(answers)
        stats.answers = len(answers)
        if trace is not None:
            trace.annotate(backend=stats.backend)
            trace.finish(len(answers), stats)
        if isinstance(answers, ColumnarTotal):
            answers = AnswerSet.from_columns(answers.columns(),
                                             edb.symbols)
        elif edb.interned:
            answers = AnswerSet(answers, edb.symbols)
        return answers

    # -- bounded -------------------------------------------------------

    def _evaluate_bounded(self, system: RecursionSystem,
                          classification: Classification, edb: Database,
                          query: Query, stats: EvaluationStats,
                          trace: Tracer | None = None
                          ) -> frozenset[tuple]:
        bound = classification.rank_bound
        assert bound is not None
        deadline = stats.deadline
        answers: set[tuple] = set()
        for exit_index in range(len(system.exits)):
            for depth in range(1, bound + 2):
                if deadline is not None:
                    deadline.check_time()
                    if deadline.out_of_rows(len(answers)):
                        stats.truncated = True
                        return frozenset(answers)
                flattened = system.exit_expansion(depth, exit_index)
                binding: dict[Variable, object] = {}
                consistent = True
                for position, value in query.constants.items():
                    head_term = flattened.head.args[position]
                    assert isinstance(head_term, Variable)
                    if binding.get(head_term, value) != value:
                        consistent = False  # repeated head var conflict
                        break
                    binding[head_term] = value
                if not consistent:
                    continue
                if trace is not None:
                    trace.begin_round("expansion", 0, stats)
                before = len(answers)
                answers |= solve_project(edb, flattened.body,
                                         flattened.head.args, binding,
                                         stats=stats)
                stats.record_round(len(answers) - before)
                if trace is not None:
                    trace.end_round(len(answers) - before, stats,
                                    exit=exit_index, depth=depth)
        return frozenset(answers)

    # -- stable ----------------------------------------------------------

    def _evaluate_stable(self, stable: StableCompilation, edb: Database,
                         query: Query, stats: EvaluationStats,
                         trace: Tracer | None = None) -> frozenset[tuple]:
        system = stable.system
        specs = stable.specs
        deadline = stats.deadline
        bound_positions = sorted(query.adornment)
        free_positions = [s.position for s in specs
                          if s.position not in query.adornment]

        # Exit tuples: every exit rule evaluated once as a plain CQ.
        exit_rows: set[tuple] = set()
        for exit_rule in system.exits:
            exit_rows |= solve_project(edb, exit_rule.body,
                                       exit_rule.head.args, stats=stats)

        gate_open = (not stable.free_atoms
                     or satisfiable(edb, stable.free_atoms, stats=stats))

        def forward(spec, values: frozenset) -> frozenset:
            """One chain step: head-side values to body-side values."""
            out: set = set()
            for value in values:
                if spec.is_permutational:
                    if not spec.atoms or satisfiable(
                            edb, spec.atoms, {spec.head_var: value},
                            stats=stats):
                        out.add(value)
                else:
                    out.update(row[0] for row in solve_project(
                        edb, spec.atoms, (spec.body_var,),
                        {spec.head_var: value}, stats=stats))
            return frozenset(out)

        def backward(spec, pairs: frozenset) -> frozenset:
            """One backward step on (answer-candidate, exit-value) pairs."""
            out: set = set()
            for head_value, exit_value in pairs:
                if spec.is_permutational:
                    if not spec.atoms or satisfiable(
                            edb, spec.atoms, {spec.head_var: head_value},
                            stats=stats):
                        out.add((head_value, exit_value))
                else:
                    for predecessor in solve_project(
                            edb, spec.atoms, (spec.head_var,),
                            {spec.body_var: head_value}, stats=stats):
                        out.add((predecessor[0], exit_value))
            return frozenset(out)

        # Initial state at depth 0.
        frontiers: dict[int, frozenset] = {
            i: frozenset({query.pattern[i]}) for i in bound_positions}
        exit_columns: dict[int, frozenset] = {
            j: frozenset((row[j], row[j]) for row in exit_rows)
            for j in free_positions}

        answers: set[tuple] = set()
        seen_states: set[tuple] = set()
        depth = 0
        while True:
            state = (tuple(frontiers[i] for i in bound_positions),
                     tuple(exit_columns[j] for j in free_positions))
            if state in seen_states:
                break
            seen_states.add(state)
            if trace is not None:
                trace.begin_round(
                    "depth",
                    sum(len(frontiers[i]) for i in bound_positions)
                    + sum(len(exit_columns[j])
                          for j in free_positions), stats)

            # Collect depth-`depth` answers.
            new_answers = 0
            candidates = [row for row in exit_rows
                          if all(row[i] in frontiers[i]
                                 for i in bound_positions)]
            back_maps = {
                j: self._pairs_to_map(exit_columns[j])
                for j in free_positions}
            for exit_row in candidates:
                choice_sets = []
                feasible = True
                for j in free_positions:
                    options = back_maps[j].get(exit_row[j], ())
                    if not options:
                        feasible = False
                        break
                    choice_sets.append((j, options))
                if not feasible:
                    continue
                for combo in _product_rows(query.pattern, choice_sets):
                    if combo not in answers:
                        answers.add(combo)
                        new_answers += 1
            stats.record_round(new_answers)
            if deadline is not None:
                deadline.check_time()
                if deadline.out_of_rows(len(answers)):
                    stats.truncated = True
                    if trace is not None:
                        trace.end_round(new_answers, stats,
                                        depth=depth)
                    break

            if not gate_open:
                if trace is not None:
                    trace.end_round(new_answers, stats, depth=depth)
                break  # nothing beyond depth 0 can ever be derived
            depth += 1
            frontiers = {i: forward(specs[i], frontiers[i])
                         for i in bound_positions}
            exit_columns = {j: backward(specs[j], exit_columns[j])
                            for j in free_positions}
            # The span closes after the chain step so its probe count
            # reflects the work done to *advance* past this depth.
            if trace is not None:
                trace.end_round(new_answers, stats, depth=depth - 1)
            if bound_positions and all(
                    not frontiers[i] for i in bound_positions):
                break
            if not exit_rows:
                break
        return frozenset(answers)

    @staticmethod
    def _pairs_to_map(pairs: frozenset) -> dict[object, tuple]:
        by_exit: dict[object, list] = {}
        for head_value, exit_value in pairs:
            by_exit.setdefault(exit_value, []).append(head_value)
        return {key: tuple(values) for key, values in by_exit.items()}

    # -- iterative ---------------------------------------------------------

    def _evaluate_iterative(self, system: RecursionSystem, edb: Database,
                            query: Query, stats: EvaluationStats,
                            trace: Tracer | None = None
                            ) -> frozenset[tuple]:
        deadline = stats.deadline
        if trace is not None:
            trace.begin_round("magic", 0, stats)
        magic, unrestricted = self._magic_bindings(system, edb, query,
                                                   stats)
        if trace is not None:
            trace.end_round(0, stats, unrestricted=unrestricted,
                            bindings=sum(len(v) for v in magic.values()))

        def relevant(row: tuple) -> bool:
            if unrestricted:
                return True
            for adornment, values in magic.items():
                key = tuple(row[i] for i in sorted(adornment))
                if key in values:
                    return True
            return False

        rule = system.recursive
        if trace is not None:
            trace.begin_round("exit", 0, stats)
        total: set[tuple] = set()
        for position, exit_rule in enumerate(system.exits):
            if trace is not None:
                trace.begin_rule(f"exit[{position}]: {exit_rule}", stats)
            total |= {row for row in solve_project(
                edb, exit_rule.body, exit_rule.head.args, stats=stats)
                if relevant(row)}
            if trace is not None:
                trace.end_rule(stats)
        delta = set(total)
        stats.record_round(len(delta))
        if trace is not None:
            trace.end_round(len(delta), stats)
        if deadline is not None:
            deadline.check_time()
            if deadline.out_of_rows(len(total)):
                stats.truncated = True
                delta = set()  # round boundary: stop cleanly

        body_rest = list(rule.nonrecursive_atoms)
        recursive_vars = rule.recursive_atom.args
        head_args = rule.head.args
        if (unrestricted and self.set_at_a_time
                and self.backend != "python"
                and _vector_eligible(edb, recursive_vars)):
            # the relevance filter is the identity, so this loop is
            # exactly the semi-naive delta loop — hand it wholesale to
            # the vector module (which falls back internally, with
            # identical counters, when the plan shape is uncertified)
            total = run_delta_loop(edb, body_rest, recursive_vars,
                                   head_args, total, delta, stats,
                                   trace, None)
            return (total if isinstance(total, ColumnarTotal)
                    else frozenset(total))
        while delta:
            if trace is not None:
                trace.begin_round("delta", len(delta), stats)
            if self.set_at_a_time:
                new = {derived for derived in apply_rule(
                    edb, body_rest, recursive_vars, head_args, delta,
                    stats) if relevant(derived)}
            else:
                new = set()
                for row in delta:
                    binding = {term: value for term, value
                               in zip(recursive_vars, row)}
                    new |= {derived for derived in solve_project(
                        edb, body_rest, head_args, binding, stats=stats)
                        if relevant(derived)}
            delta = new - total
            total |= delta
            stats.record_round(len(delta))
            if trace is not None:
                trace.end_round(len(delta), stats)
            if deadline is not None:
                deadline.check_time()
                if deadline.out_of_rows(len(total)):
                    stats.truncated = True
                    break
        return frozenset(total)

    def _magic_bindings(self, system: RecursionSystem, edb: Database,
                        query: Query, stats: EvaluationStats
                        ) -> tuple[dict[Adornment, set[tuple]], bool]:
        """The relevant recursive-call bindings, per adornment.

        Iterates the sideways-information-passing step: a bound tuple
        at adornment ``a`` joins the (relevant) non-recursive atoms and
        projects onto the determined body positions, producing bound
        tuples at ``body_adornment(a)``.  Finite: adornments × active
        domain tuples.  An empty adornment means the recursion below
        that point is unrestricted.
        """
        rule = system.recursive
        graph = build_igraph(rule)
        head_vars = rule.head_variables
        body_vars = rule.body_recursive_variables

        start = query.adornment
        magic: dict[Adornment, set[tuple]] = {}
        unrestricted = False
        if not start:
            return magic, True
        seed = tuple(query.pattern[i] for i in sorted(start))
        magic[start] = {seed}
        worklist: list[tuple[Adornment, tuple]] = [(start, seed)]

        while worklist:
            adornment, values = worklist.pop()
            next_adornment = body_adornment(rule, adornment, graph)
            if not next_adornment:
                unrestricted = True
                continue
            positions = sorted(adornment)
            binding = {head_vars[i]: v
                       for i, v in zip(positions, values)}
            closure = determined_closure(
                graph, [head_vars[i] for i in positions])
            relevant_atoms = [a for a in rule.nonrecursive_atoms
                              if a.variable_set() & closure]
            out_terms = [body_vars[i] for i in sorted(next_adornment)]
            projected = solve_project(edb, relevant_atoms, out_terms,
                                      binding, stats=stats)
            bucket = magic.setdefault(next_adornment, set())
            for produced in projected:
                if produced not in bucket:
                    bucket.add(produced)
                    worklist.append((next_adornment, produced))
        return magic, unrestricted
