"""Execution tracing: per-round spans for every engine (EXPLAIN ANALYZE).

:class:`EvaluationStats` summarises a whole run; a :class:`Trace`
records *how the run unfolded*: one :class:`RoundSpan` per fixpoint
round with the delta sizes flowing in and out, the join fan-out, the
hash tables built versus reused, wall-clock time, and — for the
sharded engine — per-shard row counts, worker wall-times and fallback
events.  This is the runtime feedback layer the classification work
promises: the compiled plan says what *should* happen, the trace shows
what *did*.

Design:

* Engines accept an optional :class:`Tracer`.  ``trace=None`` (the
  default) is the disabled state and costs nothing — every tracing
  call in an engine is guarded by ``if trace is not None``, so the
  hot loops are untouched when tracing is off (property-tested:
  answers and stats are bit-identical either way).
* A :class:`Tracer` is single-use per evaluation: engines call
  :meth:`Tracer.begin` / :meth:`Tracer.begin_round` /
  :meth:`Tracer.end_round` / :meth:`Tracer.finish`; counters are read
  as *deltas* of the run's :class:`EvaluationStats` snapshots, so the
  per-round numbers agree with the end-of-run totals by construction.
* The finished :class:`Trace` renders as text
  (:meth:`Trace.render` — the body of ``explain_analyze``) and as a
  stable JSON document (:meth:`Trace.to_dict`, schema version
  :data:`TRACE_SCHEMA_VERSION`, checked by
  :func:`validate_trace_dict`) for offline analysis and regression
  tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter

from .stats import EvaluationStats

#: Version of the JSON document emitted by :meth:`Trace.to_dict`.
#: Bump it whenever a field is added, removed or changes meaning; the
#: CI smoke step validates every engine's output against
#: :func:`validate_trace_dict`, so drift cannot land silently.
TRACE_SCHEMA_VERSION = 1


@dataclass
class RuleSpan:
    """One rule application inside a round (label → observed work)."""

    label: str
    duration_s: float = 0.0
    probes: int = 0
    derived: int = 0

    def to_dict(self) -> dict:
        return {"label": self.label, "duration_s": self.duration_s,
                "probes": self.probes, "derived": self.derived}


@dataclass
class RoundSpan:
    """One fixpoint round: sizes, work counters, timing, shard info.

    ``kind`` names what the round did — ``exit`` (round 0 of the
    delta engines), ``delta`` (a semi-naive round), ``round`` (one
    naive sweep), ``depth`` (stable chain step), ``expansion`` (one
    bounded exit expansion), ``subgoal`` (one top-down pass), ``seed``
    (incremental differentiation).  ``delta_out`` is always the number
    of genuinely new tuples the round contributed, so summing it over
    a trace reproduces the final answer count (property-tested).
    """

    index: int
    kind: str
    delta_in: int = 0
    delta_out: int = 0
    duration_s: float = 0.0
    probes: int = 0
    derived: int = 0
    hash_builds: int = 0
    hash_reuses: int = 0
    rules: list[RuleSpan] = field(default_factory=list)
    #: sharded engine only: row counts of the non-empty shards
    shard_sizes: list[int] | None = None
    #: sharded engine only: per-shard worker wall-clock seconds
    shard_wall_s: list[float] | None = None
    events: list[dict] = field(default_factory=list)
    #: engine-specific extras (e.g. the top-down subgoal pattern)
    detail: dict = field(default_factory=dict)

    @property
    def fan_out(self) -> float | None:
        """Derived bindings per incoming delta tuple (None at round 0)."""
        if self.delta_in <= 0:
            return None
        return self.derived / self.delta_in

    def to_dict(self) -> dict:
        return {
            "index": self.index, "kind": self.kind,
            "delta_in": self.delta_in, "delta_out": self.delta_out,
            "duration_s": self.duration_s,
            "probes": self.probes, "derived": self.derived,
            "hash_builds": self.hash_builds,
            "hash_reuses": self.hash_reuses,
            "fan_out": self.fan_out,
            "rules": [rule.to_dict() for rule in self.rules],
            "shard_sizes": self.shard_sizes,
            "shard_wall_s": self.shard_wall_s,
            "events": list(self.events),
            "detail": dict(self.detail),
        }


@dataclass
class Trace:
    """A finished execution trace (what ``explain_analyze`` renders)."""

    engine: str
    predicate: str | None
    query: str | None
    workers: int
    answers: int
    total_s: float
    rounds: list[RoundSpan]
    events: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def delta_total(self) -> int:
        """Sum of per-round new-tuple counts (== answers for full
        queries; the property suite asserts this per engine)."""
        return sum(span.delta_out for span in self.rounds)

    def to_dict(self) -> dict:
        """The stable JSON document (see ``docs/internals.md``)."""
        return {
            "version": TRACE_SCHEMA_VERSION,
            "engine": self.engine,
            "predicate": self.predicate,
            "query": self.query,
            "workers": self.workers,
            "answers": self.answers,
            "total_s": self.total_s,
            "rounds": [span.to_dict() for span in self.rounds],
            "events": list(self.events),
            "meta": dict(self.meta),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          ensure_ascii=False, sort_keys=False)

    def render(self) -> str:
        """Human-readable EXPLAIN ANALYZE table."""
        lines = [f"engine={self.engine}"
                 + (f" query={self.query}" if self.query else "")
                 + (f" workers={self.workers}" if self.workers else "")
                 + f" answers={self.answers}"
                 + f" rounds={len(self.rounds)}"
                 + f" total={_ms(self.total_s)}"]
        for key, value in sorted(self.meta.items()):
            lines.append(f"  {key}: {value}")
        for span in self.rounds:
            parts = [f"  {span.kind}[{span.index}]"]
            if span.delta_in:
                parts.append(f"in={span.delta_in}")
            parts.append(f"out={span.delta_out}")
            if span.fan_out is not None:
                parts.append(f"fan-out={span.fan_out:.2f}")
            parts.append(f"probes={span.probes}")
            parts.append(f"hash={span.hash_builds}b/"
                         f"{span.hash_reuses}r")
            parts.append(f"[{_ms(span.duration_s)}]")
            lines.append(" ".join(parts))
            for rule in span.rules:
                lines.append(f"    · {rule.label}: "
                             f"derived={rule.derived} "
                             f"probes={rule.probes} "
                             f"[{_ms(rule.duration_s)}]")
            if span.shard_sizes is not None:
                shards = "+".join(str(s) for s in span.shard_sizes)
                line = f"    shards: {shards or '(none)'}"
                if span.shard_wall_s:
                    walls = "/".join(_ms(w) for w in span.shard_wall_s)
                    line += f"  worker walls: {walls}"
                lines.append(line)
            for event in span.events:
                lines.append(f"    ! {_event_text(event)}")
        for event in self.events:
            lines.append(f"  ! {_event_text(event)}")
        return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}ms"


def _event_text(event: dict) -> str:
    name = event.get("name", "?")
    extras = ", ".join(f"{k}={v}" for k, v in sorted(event.items())
                       if k != "name")
    return f"{name}({extras})" if extras else name


class Tracer:
    """Collects spans during one evaluation; ``None`` means disabled.

    Engines call the begin/end pairs around each round; counter fields
    are captured as deltas of the evaluation's
    :class:`EvaluationStats` snapshots.  Re-using a tracer for a new
    evaluation resets it (:meth:`begin`); the finished result lives in
    :attr:`trace` after :meth:`finish`.

    A **passive** tracer (``Tracer(passive=True)``) observes without
    steering: the session facade keeps answer-cache hits and the
    unseen-constant short-circuit enabled and records them as
    one-span traces (``meta.cache_hit`` / ``meta.unseen_constant``),
    so sampled serve-mode requests stay answer- and stats-identical
    to unsampled ones.  A non-passive tracer (the default, used by
    ``explain_analyze`` and ``--trace-json``) bypasses those caches
    to trace a real evaluation.
    """

    def __init__(self, passive: bool = False) -> None:
        self.passive = passive
        self.trace: Trace | None = None
        self._reset()

    def _reset(self) -> None:
        self._engine = ""
        self._predicate: str | None = None
        self._query: str | None = None
        self._workers = 0
        self._meta: dict = {}
        self._events: list[dict] = []
        self._spans: list[RoundSpan] = []
        self._current: RoundSpan | None = None
        self._current_rule: RuleSpan | None = None
        self._round_mark: tuple | None = None
        self._rule_mark: tuple | None = None
        self._started = 0.0

    # -- lifecycle -----------------------------------------------------

    def begin(self, engine: str, predicate: str | None = None,
              query: object | None = None, workers: int = 0,
              **meta: object) -> None:
        """Start (or restart) collecting for one evaluation."""
        self._reset()
        self.trace = None
        self._engine = engine
        self._predicate = predicate
        self._query = str(query) if query is not None else None
        self._workers = workers
        self._meta = dict(meta)
        self._started = perf_counter()

    def annotate(self, **meta: object) -> None:
        """Attach run-level metadata (e.g. the compiled strategy)."""
        self._meta.update(meta)

    def finish(self, answers: int,
               stats: EvaluationStats | None = None) -> Trace:
        """Seal the trace; returns (and stores) the :class:`Trace`."""
        if self._current is not None:  # unterminated round (error path)
            self.end_round(0, stats)
        self.trace = Trace(
            engine=self._engine, predicate=self._predicate,
            query=self._query, workers=self._workers, answers=answers,
            total_s=perf_counter() - self._started,
            rounds=self._spans, events=self._events, meta=self._meta)
        return self.trace

    # -- rounds --------------------------------------------------------

    @staticmethod
    def _snapshot(stats: EvaluationStats | None) -> tuple:
        if stats is None:
            return (0, 0, 0, 0, perf_counter())
        return (stats.probes, stats.derived, stats.hash_builds,
                stats.hash_lookups, perf_counter())

    def begin_round(self, kind: str, delta_in: int,
                    stats: EvaluationStats | None = None) -> None:
        """Open a round span; counters snapshot the stats object."""
        if self._current is not None:
            self.end_round(0, stats)
        self._current = RoundSpan(index=len(self._spans), kind=kind,
                                  delta_in=delta_in)
        self._round_mark = self._snapshot(stats)

    def end_round(self, delta_out: int,
                  stats: EvaluationStats | None = None,
                  **detail: object) -> None:
        """Close the open round span with its new-tuple count."""
        span, self._current = self._current, None
        if span is None:
            return
        probes, derived, builds, lookups, started = self._round_mark
        now_probes, now_derived, now_builds, now_lookups, now = \
            self._snapshot(stats)
        span.delta_out = delta_out
        span.duration_s = now - started
        span.probes = now_probes - probes
        span.derived = now_derived - derived
        span.hash_builds = now_builds - builds
        span.hash_reuses = max(
            0, (now_lookups - lookups) - (now_builds - builds))
        span.detail.update(detail)
        self._spans.append(span)

    # -- per-rule sub-spans --------------------------------------------

    def begin_rule(self, label: str,
                   stats: EvaluationStats | None = None) -> None:
        """Open a rule sub-span inside the current round."""
        if self._current is None:
            return
        self._current_rule = RuleSpan(label=label)
        self._rule_mark = self._snapshot(stats)

    def end_rule(self, stats: EvaluationStats | None = None) -> None:
        rule, self._current_rule = self._current_rule, None
        if rule is None or self._current is None:
            return
        probes, derived, _, _, started = self._rule_mark
        now_probes, now_derived, _, _, now = self._snapshot(stats)
        rule.duration_s = now - started
        rule.probes = now_probes - probes
        rule.derived = now_derived - derived
        self._current.rules.append(rule)

    # -- sharded extras ------------------------------------------------

    def shards(self, sizes: list[int],
               wall_s: list[float] | None = None) -> None:
        """Attach per-shard row counts (and worker walls) to the
        current round."""
        if self._current is None:
            return
        self._current.shard_sizes = list(sizes)
        self._current.shard_wall_s = (list(wall_s)
                                      if wall_s is not None else None)

    def event(self, name: str, **data: object) -> None:
        """Record a notable event (pool fallback, sequential round…)
        on the current round, or on the trace when between rounds."""
        record = {"name": name, **data}
        if self._current is not None:
            self._current.events.append(record)
        else:
            self._events.append(record)


# -- schema validation ----------------------------------------------------

_TRACE_FIELDS = {
    "version": int, "engine": str, "predicate": (str, type(None)),
    "query": (str, type(None)), "workers": int, "answers": int,
    "total_s": (int, float), "rounds": list, "events": list,
    "meta": dict,
}

_ROUND_FIELDS = {
    "index": int, "kind": str, "delta_in": int, "delta_out": int,
    "duration_s": (int, float), "probes": int, "derived": int,
    "hash_builds": int, "hash_reuses": int,
    "fan_out": (int, float, type(None)), "rules": list,
    "shard_sizes": (list, type(None)),
    "shard_wall_s": (list, type(None)), "events": list, "detail": dict,
}

_RULE_FIELDS = {
    "label": str, "duration_s": (int, float), "probes": int,
    "derived": int,
}


def _check_fields(document: dict, spec: dict, where: str) -> None:
    missing = sorted(set(spec) - set(document))
    if missing:
        raise ValueError(f"{where}: missing fields {missing}")
    extra = sorted(set(document) - set(spec))
    if extra:
        raise ValueError(f"{where}: unknown fields {extra}")
    for name, types in spec.items():
        if not isinstance(document[name], types):
            raise ValueError(
                f"{where}.{name}: expected {types}, "
                f"got {type(document[name]).__name__}")


def validate_trace_dict(document: dict) -> None:
    """Raise ``ValueError`` unless *document* matches the trace schema.

    Strict on field *presence* and types (unknown top-level or
    per-round fields are rejected — that is the drift the CI smoke
    step exists to catch); ``detail``/``meta``/event payloads are
    free-form by design.
    """
    _check_fields(document, _TRACE_FIELDS, "trace")
    if document["version"] != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"trace.version: expected {TRACE_SCHEMA_VERSION}, "
            f"got {document['version']}")
    for position, span in enumerate(document["rounds"]):
        where = f"rounds[{position}]"
        if not isinstance(span, dict):
            raise ValueError(f"{where}: expected dict")
        _check_fields(span, _ROUND_FIELDS, where)
        for rule_position, rule in enumerate(span["rules"]):
            _check_fields(rule, _RULE_FIELDS,
                          f"{where}.rules[{rule_position}]")
        for name in ("shard_sizes", "shard_wall_s"):
            values = span[name]
            if values is not None and not all(
                    isinstance(v, (int, float)) for v in values):
                raise ValueError(f"{where}.{name}: non-numeric entry")
        for event in span["events"]:
            if not isinstance(event, dict) or "name" not in event:
                raise ValueError(
                    f"{where}: event without a name: {event!r}")
    for event in document["events"]:
        if not isinstance(event, dict) or "name" not in event:
            raise ValueError(f"trace: event without a name: {event!r}")
