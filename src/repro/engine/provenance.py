"""Why-provenance: derivation trees for answers.

A deductive database should be able to say *why* a tuple is an answer.
For linear single recursion the derivation of ``P(t̄)`` is a chain:
an exit rule application at the bottom and one recursive rule
application per level above it.  :func:`explain_answer` reconstructs
that chain:

1. run semi-naive evaluation once, recording the *depth* at which each
   tuple is first derived (depth 0 = exit round);
2. walk downward from the requested tuple: at depth d > 0 find a body
   binding of the recursive rule whose recursive subgoal was derived
   at a smaller depth; at depth 0 find the exit rule that produced it.

The result is a :class:`Derivation` tree whose rendering reads like a
proof::

    P(n0, n2)
    ├─ rule: P(x, y) :- A(x, z) ∧ P(z, y).
    ├─ A(n0, n1)
    └─ P(n1, n2)
       ├─ rule: P(x, y) :- A(x, z) ∧ P(z, y).
       ├─ A(n1, n2)
       └─ P(n2, n2)
          └─ exit: P(x, y) :- E(x, y).  with E(n2, n2)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.errors import EvaluationError
from ..datalog.program import RecursionSystem
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from ..ra.database import Database
from .conjunctive import solve


@dataclass(frozen=True)
class Derivation:
    """One node of a derivation tree."""

    tuple_: tuple
    predicate: str
    rule: Rule
    edb_facts: tuple[tuple[str, tuple], ...]
    premise: "Derivation | None"

    @property
    def depth(self) -> int:
        """Number of recursive rule applications below this node."""
        count = 0
        node = self.premise
        while node is not None:
            count += 1
            node = node.premise
        return count

    def render(self, indent: str = "") -> str:
        """A proof-tree rendering, one fact per line."""
        head = (f"{self.predicate}"
                f"({', '.join(str(v) for v in self.tuple_)})")
        children = [f"rule: {self.rule}"]
        children.extend(
            f"{name}({', '.join(str(v) for v in row)})"
            for name, row in self.edb_facts)
        lines = [f"{indent}{head}"]
        last = len(children) - (0 if self.premise is not None else 1)
        for index, child in enumerate(children):
            connector = "├─" if (index < last) else "└─"
            lines.append(f"{indent}{connector} {child}")
        if self.premise is not None:
            lines.append(f"{indent}└─ premise:")
            lines.append(self.premise.render(indent + "   "))
        return "\n".join(lines)


def _tuple_depths(system: RecursionSystem,
                  database: Database) -> dict[tuple, int]:
    """First-derivation depth of every tuple (semi-naive replay).

    Runs in value space over a decoded copy — provenance is a cold
    path and its bindings are rendered verbatim into proof trees, so
    decoding wholesale up front keeps everything below value-space.
    """
    database = database.decoded()
    depths: dict[tuple, int] = {}
    rule = system.recursive
    total: set[tuple] = set()
    for exit_rule in system.exits:
        for binding in solve(database, exit_rule.body):
            row = tuple(
                binding[t] if isinstance(t, Variable) else t.value
                for t in exit_rule.head.args)
            if row not in depths:
                depths[row] = 0
            total.add(row)
    delta = set(total)
    depth = 0
    body_rest = list(rule.nonrecursive_atoms)
    recursive_vars = rule.recursive_atom.args
    head_args = rule.head.args
    while delta:
        depth += 1
        new: set[tuple] = set()
        for row in delta:
            binding = {term: value
                       for term, value in zip(recursive_vars, row)}
            for solution in solve(database, body_rest, binding):
                derived = tuple(
                    solution[t] if isinstance(t, Variable) else t.value
                    for t in head_args)
                if derived not in total:
                    new.add(derived)
                    depths.setdefault(derived, depth)
        delta = new - total
        total |= delta
    return depths


def _bind_head(rule: Rule, row: tuple) -> dict[Variable, object] | None:
    binding: dict[Variable, object] = {}
    for term, value in zip(rule.head.args, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        elif binding.setdefault(term, value) != value:
            return None
    return binding


def _edb_facts_of(rule: Rule, system_predicate: str,
                  solution: dict) -> tuple[tuple[str, tuple], ...]:
    facts = []
    for body_atom in rule.body:
        if body_atom.predicate == system_predicate:
            continue
        row = tuple(
            solution[t] if isinstance(t, Variable) else t.value
            for t in body_atom.args)
        facts.append((body_atom.predicate, row))
    return tuple(facts)


def explain_answer(system: RecursionSystem, database: Database,
                   answer: tuple,
                   depths: dict[tuple, int] | None = None
                   ) -> Derivation:
    """The derivation tree of *answer* (EvaluationError if underivable).

    Pass a precomputed *depths* map (from a previous call) to explain
    many answers against one database cheaply.
    """
    database = database.decoded()  # value-space throughout (cold path)
    if depths is None:
        depths = _tuple_depths(system, database)
    if answer not in depths:
        raise EvaluationError(
            f"{system.predicate}{answer} is not derivable")

    def build(row: tuple) -> Derivation:
        depth = depths[row]
        if depth == 0:
            for exit_rule in system.exits:
                binding = _bind_head(exit_rule, row)
                if binding is None:
                    continue
                solution = next(solve(database, exit_rule.body,
                                      binding), None)
                if solution is not None:
                    merged = {**binding, **solution}
                    return Derivation(
                        tuple_=row, predicate=system.predicate,
                        rule=exit_rule,
                        edb_facts=_edb_facts_of(
                            exit_rule, system.predicate, merged),
                        premise=None)
            raise EvaluationError(      # pragma: no cover - invariant
                f"no exit derivation found for {row}")
        rule = system.recursive.rule
        binding = _bind_head(rule, row)
        assert binding is not None
        recursive_atom = system.recursive.recursive_atom
        for solution in solve(
                database, list(system.recursive.nonrecursive_atoms),
                binding):
            merged = {**binding, **solution}
            # the recursive subgoal: bound positions from the body
            # solution, None where the variable is unconstrained
            pattern = tuple(
                merged.get(t) if isinstance(t, Variable) else t.value
                for t in recursive_atom.args)
            for sub, sub_depth in depths.items():
                if sub_depth >= depth:
                    continue
                if all(p is None or p == v
                       for p, v in zip(pattern, sub)):
                    return Derivation(
                        tuple_=row, predicate=system.predicate,
                        rule=rule,
                        edb_facts=_edb_facts_of(
                            rule, system.predicate, merged),
                        premise=build(sub))
        raise EvaluationError(          # pragma: no cover - invariant
            f"no recursive derivation found for {row} at depth {depth}")

    return build(answer)
