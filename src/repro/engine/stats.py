"""Evaluation statistics shared by all engines.

The benches compare engines by work done, not only wall-clock:
``probes`` counts index lookups performed by the conjunctive solver,
``derived`` the tuples produced (before deduplication), ``rounds`` the
fixpoint iterations.  ``delta_sizes`` records the per-round new-tuple
counts, from which the *measured rank* of a formula on a concrete
database is read off (the quantity Ioannidis's theorem bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EvaluationStats:
    """Mutable counters filled in during one evaluation."""

    engine: str = ""
    rounds: int = 0
    probes: int = 0
    derived: int = 0
    answers: int = 0
    delta_sizes: list[int] = field(default_factory=list)
    #: join-plan compilations served from / missing the plan cache
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: hash tables built by the set-at-a-time kernel on our behalf
    hash_builds: int = 0
    #: bindings entering the set-at-a-time kernel, one entry per batch
    batch_sizes: list[int] = field(default_factory=list)

    def record_round(self, new_tuples: int) -> None:
        """Log one fixpoint round and its new-tuple count."""
        self.rounds += 1
        self.delta_sizes.append(new_tuples)

    @property
    def measured_rank(self) -> int:
        """Index of the last round that produced a new tuple.

        Round 0 is the exit round (depth-0 tuples); the measured rank
        is the largest recursion depth that contributed a new tuple —
        0 when the exits already produced everything.
        """
        last = 0
        for index, size in enumerate(self.delta_sizes):
            if size > 0:
                last = index
        return last

    def record_batch(self, size: int) -> None:
        """Log one set-at-a-time batch and its binding count."""
        self.batch_sizes.append(size)

    def merge(self, other: "EvaluationStats") -> None:
        """Fold *other*'s counters into this one (sub-evaluations)."""
        self.rounds += other.rounds
        self.probes += other.probes
        self.derived += other.derived
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self.hash_builds += other.hash_builds
        self.batch_sizes.extend(other.batch_sizes)

    def summary(self) -> str:
        """One-line rendering for bench output."""
        return (f"{self.engine}: rounds={self.rounds} probes={self.probes} "
                f"derived={self.derived} answers={self.answers} "
                f"plans={self.plan_cache_hits}h/{self.plan_cache_misses}m "
                f"hash_builds={self.hash_builds}")
