"""Evaluation statistics shared by all engines.

The benches compare engines by work done, not only wall-clock:
``probes`` counts index lookups performed by the conjunctive solver,
``derived`` the tuples produced (before deduplication), ``rounds`` the
fixpoint iterations.  ``delta_sizes`` records the per-round new-tuple
counts, from which the *measured rank* of a formula on a concrete
database is read off (the quantity Ioannidis's theorem bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Version of the JSON document emitted by ``repro run --stats-json``
#: (a list of :meth:`EvaluationStats.to_dict` snapshots).  Bump on any
#: field addition/removal/meaning change; ``scripts/trace_smoke.py``
#: reconciles these dumps against the trace schema in CI.
#: Version 3 added ``truncated`` (row-budget abort flag).
#: Version 4 added ``backend`` (resolved execution backend) plus the
#: ``vector_batches``/``vector_rows`` counters of the vectorised
#: delta loop (see :mod:`repro.engine.vector`).
STATS_SCHEMA_VERSION = 4

#: The monotonically accumulating scalar fields of
#: :class:`EvaluationStats` — the ones whose snapshot difference is a
#: meaningful per-query increment (see :func:`delta_between`).
ACCUMULATING_FIELDS = (
    "rounds", "probes", "derived", "plan_cache_hits",
    "plan_cache_misses", "hash_builds", "hash_lookups",
    "pool_round_trip_s", "pool_fallbacks", "sequential_rounds",
    "answer_cache_hits", "vector_batches", "vector_rows",
)

#: The append-only list fields; their snapshot difference is the tail
#: of entries added between the two snapshots.
ACCUMULATING_LIST_FIELDS = ("delta_sizes", "batch_sizes",
                            "shard_counts", "shard_skew")


def delta_between(before: dict, after: dict) -> dict:
    """The per-query increment between two ``to_dict`` snapshots.

    Scalar counters subtract; list counters return the appended tail.
    Non-accumulating fields (``engine``, ``backend``, ``answers``,
    ``workers``, ``measured_rank``, ``truncated``) carry *after*'s
    value — they describe the run, not an increment.  This is how a
    reused stats object feeds a metrics registry without double
    counting.
    """
    delta: dict = {}
    for name in ACCUMULATING_FIELDS:
        delta[name] = after[name] - before[name]
    for name in ACCUMULATING_LIST_FIELDS:
        delta[name] = after[name][len(before[name]):]
    for name in ("engine", "backend", "answers", "workers",
                 "measured_rank", "truncated"):
        delta[name] = after[name]
    return delta


@dataclass
class EvaluationStats:
    """Mutable counters filled in during one evaluation."""

    engine: str = ""
    #: resolved execution backend of the delta loop — ``"numpy"`` or
    #: ``"stub"`` when the vectorised kernel ran at least one round,
    #: ``"python"`` when the tuple-set loop did, ``""`` for engines
    #: that never consider the vector seam (naive, top-down)
    backend: str = ""
    rounds: int = 0
    probes: int = 0
    derived: int = 0
    answers: int = 0
    delta_sizes: list[int] = field(default_factory=list)
    #: join-plan compilations served from / missing the plan cache
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: hash tables built by the set-at-a-time kernel on our behalf
    hash_builds: int = 0
    #: hash-table fetches by the kernel (lookups - builds = reuses)
    hash_lookups: int = 0
    #: bindings entering the set-at-a-time kernel, one entry per batch
    batch_sizes: list[int] = field(default_factory=list)
    #: sharded execution — configured worker count (0 = in-process)
    workers: int = 0
    #: non-empty shards dispatched, one entry per partitioned round
    shard_counts: list[int] = field(default_factory=list)
    #: max/mean shard-size ratio, one entry per partitioned round
    #: (1.0 is a perfectly balanced round)
    shard_skew: list[float] = field(default_factory=list)
    #: wall-clock seconds spent waiting on the worker pool
    pool_round_trip_s: float = 0.0
    #: rounds that fell back to sequential because the pool could not
    #: be created, died, or returned an error
    pool_fallbacks: int = 0
    #: rounds run sequentially because the delta was below the
    #: parallelism threshold (tiny shards are not worth the IPC)
    sequential_rounds: int = 0
    #: queries answered from the session's cross-query answer cache
    #: (the evaluation was skipped outright)
    answer_cache_hits: int = 0
    #: delta rounds executed by the vectorised kernel (one per round)
    vector_batches: int = 0
    #: rows emitted by the vectorised probe (before deduplication —
    #: the vector path's share of ``derived``)
    vector_rows: int = 0
    #: True when the run stopped at a round boundary because the
    #: deadline's row budget was exceeded — the answers returned are
    #: sound but incomplete (see :mod:`repro.engine.deadline`)
    truncated: bool = False
    #: optional :class:`~repro.engine.deadline.Deadline` checked by the
    #: engines at round boundaries.  A *carrier*, not a counter: it is
    #: excluded from :meth:`to_dict` (and therefore from the schema,
    #: the delta discipline and the JSON dumps) — it exists so budgets
    #: reach the round loops without changing any engine signature.
    deadline: object | None = field(default=None, repr=False,
                                    compare=False)

    def record_round(self, new_tuples: int) -> None:
        """Log one fixpoint round and its new-tuple count."""
        self.rounds += 1
        self.delta_sizes.append(new_tuples)

    @property
    def measured_rank(self) -> int:
        """Index of the last round that produced a new tuple.

        Round 0 is the exit round (depth-0 tuples); the measured rank
        is the largest recursion depth that contributed a new tuple —
        0 when the exits already produced everything.
        """
        last = 0
        for index, size in enumerate(self.delta_sizes):
            if size > 0:
                last = index
        return last

    def record_batch(self, size: int) -> None:
        """Log one set-at-a-time batch and its binding count."""
        self.batch_sizes.append(size)

    def record_shards(self, sizes: list[int]) -> None:
        """Log one partitioned round: shard count and size skew."""
        self.shard_counts.append(len(sizes))
        total = sum(sizes)
        if sizes and total:
            self.shard_skew.append(max(sizes) * len(sizes) / total)
        else:
            self.shard_skew.append(1.0)

    def merge(self, other: "EvaluationStats") -> None:
        """Fold *other*'s counters into this one (sub-evaluations).

        ``delta_sizes`` folds *positionally*: the merged list has the
        element-wise maximum length and each round's new-tuple counts
        are summed, so ``measured_rank`` after merging a
        sub-evaluation (a parallel shard, a differentiated insert) is
        the rank of the combined run, not of whichever part happened
        to be folded last.  ``answers`` and ``engine`` are
        deliberately *not* merged: ``answers`` is a query-level result
        (the final filtered set, not additive across parts — a shard's
        answers overlap the total), and ``engine`` is the identity of
        the evaluation that owns this stats object, not a counter.
        """
        self.rounds += other.rounds
        self.probes += other.probes
        self.derived += other.derived
        if other.delta_sizes:
            if len(other.delta_sizes) > len(self.delta_sizes):
                self.delta_sizes.extend(
                    [0] * (len(other.delta_sizes)
                           - len(self.delta_sizes)))
            for index, size in enumerate(other.delta_sizes):
                self.delta_sizes[index] += size
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self.hash_builds += other.hash_builds
        self.hash_lookups += other.hash_lookups
        self.batch_sizes.extend(other.batch_sizes)
        self.shard_counts.extend(other.shard_counts)
        self.shard_skew.extend(other.shard_skew)
        self.pool_round_trip_s += other.pool_round_trip_s
        self.pool_fallbacks += other.pool_fallbacks
        self.sequential_rounds += other.sequential_rounds
        self.answer_cache_hits += other.answer_cache_hits
        self.vector_batches += other.vector_batches
        self.vector_rows += other.vector_rows
        self.truncated = self.truncated or other.truncated

    def to_dict(self) -> dict:
        """Every counter as a JSON-ready dict (schema
        :data:`STATS_SCHEMA_VERSION`).

        This is the exchange format of ``repro run --stats-json`` and
        the snapshot half of the telemetry layer's snapshot-delta
        discipline (see :func:`delta_between` and
        :mod:`repro.metrics.instrument`): a metrics registry is fed
        the *difference* of two snapshots taken around one query, so
        registry totals reconcile with per-query stats by
        construction, exactly as the tracer's round counters do.
        """
        return {
            "engine": self.engine,
            "backend": self.backend,
            "rounds": self.rounds,
            "probes": self.probes,
            "derived": self.derived,
            "answers": self.answers,
            "delta_sizes": list(self.delta_sizes),
            "measured_rank": self.measured_rank,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "hash_builds": self.hash_builds,
            "hash_lookups": self.hash_lookups,
            "batch_sizes": list(self.batch_sizes),
            "workers": self.workers,
            "shard_counts": list(self.shard_counts),
            "shard_skew": list(self.shard_skew),
            "pool_round_trip_s": self.pool_round_trip_s,
            "pool_fallbacks": self.pool_fallbacks,
            "sequential_rounds": self.sequential_rounds,
            "answer_cache_hits": self.answer_cache_hits,
            "vector_batches": self.vector_batches,
            "vector_rows": self.vector_rows,
            "truncated": self.truncated,
        }

    def summary(self) -> str:
        """One-line rendering for bench output."""
        line = (f"{self.engine}: rounds={self.rounds} "
                f"probes={self.probes} "
                f"derived={self.derived} answers={self.answers} "
                f"plans={self.plan_cache_hits}h/{self.plan_cache_misses}m "
                f"hash={self.hash_builds}b/{self.hash_lookups}l")
        if self.workers:
            line += f" workers={self.workers}"
        return line
