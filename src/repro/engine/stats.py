"""Evaluation statistics shared by all engines.

The benches compare engines by work done, not only wall-clock:
``probes`` counts index lookups performed by the conjunctive solver,
``derived`` the tuples produced (before deduplication), ``rounds`` the
fixpoint iterations.  ``delta_sizes`` records the per-round new-tuple
counts, from which the *measured rank* of a formula on a concrete
database is read off (the quantity Ioannidis's theorem bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EvaluationStats:
    """Mutable counters filled in during one evaluation."""

    engine: str = ""
    rounds: int = 0
    probes: int = 0
    derived: int = 0
    answers: int = 0
    delta_sizes: list[int] = field(default_factory=list)
    #: join-plan compilations served from / missing the plan cache
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: hash tables built by the set-at-a-time kernel on our behalf
    hash_builds: int = 0
    #: hash-table fetches by the kernel (lookups - builds = reuses)
    hash_lookups: int = 0
    #: bindings entering the set-at-a-time kernel, one entry per batch
    batch_sizes: list[int] = field(default_factory=list)
    #: sharded execution — configured worker count (0 = in-process)
    workers: int = 0
    #: non-empty shards dispatched, one entry per partitioned round
    shard_counts: list[int] = field(default_factory=list)
    #: max/mean shard-size ratio, one entry per partitioned round
    #: (1.0 is a perfectly balanced round)
    shard_skew: list[float] = field(default_factory=list)
    #: wall-clock seconds spent waiting on the worker pool
    pool_round_trip_s: float = 0.0
    #: rounds that fell back to sequential because the pool could not
    #: be created, died, or returned an error
    pool_fallbacks: int = 0
    #: rounds run sequentially because the delta was below the
    #: parallelism threshold (tiny shards are not worth the IPC)
    sequential_rounds: int = 0

    def record_round(self, new_tuples: int) -> None:
        """Log one fixpoint round and its new-tuple count."""
        self.rounds += 1
        self.delta_sizes.append(new_tuples)

    @property
    def measured_rank(self) -> int:
        """Index of the last round that produced a new tuple.

        Round 0 is the exit round (depth-0 tuples); the measured rank
        is the largest recursion depth that contributed a new tuple —
        0 when the exits already produced everything.
        """
        last = 0
        for index, size in enumerate(self.delta_sizes):
            if size > 0:
                last = index
        return last

    def record_batch(self, size: int) -> None:
        """Log one set-at-a-time batch and its binding count."""
        self.batch_sizes.append(size)

    def record_shards(self, sizes: list[int]) -> None:
        """Log one partitioned round: shard count and size skew."""
        self.shard_counts.append(len(sizes))
        total = sum(sizes)
        if sizes and total:
            self.shard_skew.append(max(sizes) * len(sizes) / total)
        else:
            self.shard_skew.append(1.0)

    def merge(self, other: "EvaluationStats") -> None:
        """Fold *other*'s counters into this one (sub-evaluations)."""
        self.rounds += other.rounds
        self.probes += other.probes
        self.derived += other.derived
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self.hash_builds += other.hash_builds
        self.hash_lookups += other.hash_lookups
        self.batch_sizes.extend(other.batch_sizes)
        self.shard_counts.extend(other.shard_counts)
        self.shard_skew.extend(other.shard_skew)
        self.pool_round_trip_s += other.pool_round_trip_s
        self.pool_fallbacks += other.pool_fallbacks
        self.sequential_rounds += other.sequential_rounds

    def summary(self) -> str:
        """One-line rendering for bench output."""
        return (f"{self.engine}: rounds={self.rounds} probes={self.probes} "
                f"derived={self.derived} answers={self.answers} "
                f"plans={self.plan_cache_hits}h/{self.plan_cache_misses}m "
                f"hash_builds={self.hash_builds}")
