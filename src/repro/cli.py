"""Command-line interface: classify, plan, figure, run, table.

Usage examples::

    python -m repro classify "P(x, y) :- A(x, z), P(z, y)."
    python -m repro plan --form dv "P(x, y) :- A(x, z), P(z, y)."
    python -m repro figure --depth 2 "P(x, y) :- A(x, z), P(z, u), B(u, y)."
    python -m repro table
    python -m repro dossier s9
    python -m repro run --engine compiled --query "P(a, Y)" program.dl

The ``run`` command reads a program file containing the rules *and*
ground facts; the other commands accept the rule text directly.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Sequence

from . import __version__

from .core.bindings import adornment_from_string
from .core.classifier import classify
from .core.compile import compile_query
from .core.advisor import capability_table
from .core.lint import lint_text
from .core.report import classification_table, formula_dossier
from .datalog.errors import ReproError
from .datalog.parser import parse_program, parse_system
from .datalog.pretty import expansion_trace
from .engine.compiled import CompiledEngine
from .engine.naive import NaiveEngine
from .engine.query import Query
from .engine.seminaive import SemiNaiveEngine
from .engine.sharded import ShardedSemiNaiveEngine
from .engine.stats import EvaluationStats
from .engine.topdown import TopDownEngine
from .engine.trace import TRACE_SCHEMA_VERSION, Tracer
from .engine.vector import BACKENDS, numpy_version
from .engine.provenance import explain_answer
from .graphs.render import ascii_figure, ascii_resolution, to_dot
from .graphs.resolution import resolution_graph
from .ra.database import Database

_ENGINES = {"naive": NaiveEngine, "semi-naive": SemiNaiveEngine,
            "compiled": CompiledEngine, "top-down": TopDownEngine,
            "sharded": ShardedSemiNaiveEngine}


def _cmd_classify(args: argparse.Namespace) -> int:
    system = parse_system(args.rule, strict=not args.loose)
    result = classify(system)
    if args.json:
        print(json.dumps(result.to_dict(), ensure_ascii=False,
                         indent=2))
        return 0
    print(result.describe())
    row = result.summary_row()
    print(f"stable: {row['stable']}   transformable: "
          f"{row['transformable']}"
          + (f" (unfold {row['unfold']}×)"
             if row["unfold"] is not None else ""))
    print(f"bounded: {row['bounded']}"
          + (f" (rank ≤ {row['rank_bound']})"
             if row["rank_bound"] is not None else ""))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    system = parse_system(args.rule, strict=not args.loose)
    compiled = compile_query(system, adornment_from_string(args.form))
    if args.json:
        print(json.dumps(compiled.to_dict(), ensure_ascii=False,
                         indent=2))
        return 0
    print(compiled.describe())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    system = parse_system(args.rule, strict=not args.loose)
    if args.depth <= 1:
        graph = classify(system).graph
        print(to_dot(graph) if args.dot
              else ascii_figure(graph, "I-graph:"))
    else:
        resolved = resolution_graph(system, args.depth)
        print(to_dot(resolved.graph) if args.dot else ascii_resolution(
            resolved, f"resolution graph, level {args.depth}:"))
    return 0


def _cmd_expand(args: argparse.Namespace) -> int:
    system = parse_system(args.rule, strict=not args.loose)
    print(expansion_trace(system, args.depth))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    system = parse_system(args.rule, strict=not args.loose)
    print(capability_table(system))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.rule is not None:
        text = args.rule
    else:
        with open(args.file, encoding="utf-8") as handle:
            text = handle.read()
    findings = lint_text(text)
    if not findings:
        print("clean: no findings")
        return 0
    for finding in findings:
        print(finding)
    return 1 if any(f.level == "error" for f in findings) else 0


def _cmd_table(args: argparse.Namespace) -> int:
    from .workloads.formulas import paper_systems
    print(classification_table(paper_systems()))
    return 0


def _cmd_dossier(args: argparse.Namespace) -> int:
    from .workloads.formulas import CATALOGUE
    entry = CATALOGUE.get(args.name)
    if entry is None:
        print(f"unknown formula {args.name!r}; known: "
              f"{', '.join(sorted(CATALOGUE))}", file=sys.stderr)
        return 2
    print(formula_dossier(entry.name, entry.system(),
                          query_forms=entry.query_forms))
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    from .shell import run_shell
    return run_shell()


def _cmd_prove(args: argparse.Namespace) -> int:
    with open(args.program, encoding="utf-8") as handle:
        text = handle.read()
    program = parse_program(text)
    system = parse_system(text)
    db = Database.from_program(program)
    query = Query.parse(args.answer)
    answers = CompiledEngine().evaluate(system, db, query)
    if not answers:
        print(f"no answers match {query}", file=sys.stderr)
        return 1
    for answer in sorted(answers, key=repr)[:args.limit]:
        print(explain_answer(system, db, answer).render())
        print()
    return 0


def _dump_json(document: dict, destination: str) -> None:
    """Write *document* to a file, or stdout when it is ``-``."""
    if destination == "-":
        json.dump(document, sys.stdout, ensure_ascii=False, indent=2)
        print()
    else:
        with open(destination, "w", encoding="utf-8") as out:
            json.dump(document, out, ensure_ascii=False, indent=2)


def _cmd_run(args: argparse.Namespace) -> int:
    from .engine.stats import STATS_SCHEMA_VERSION
    with open(args.program, encoding="utf-8") as handle:
        text = handle.read()
    program = parse_program(text)
    system = parse_system(text)
    db = Database.from_program(program, intern=not args.no_intern)
    if args.query:
        queries = [Query.parse(args.query)]
    elif program.queries:
        queries = [Query.from_atom(goal) for goal in program.queries]
    else:
        queries = [Query.all_free(system.predicate, system.dimension)]
    if args.workers is not None and args.engine not in ("semi-naive",
                                                        "sharded"):
        print("error: --workers applies to --engine sharded or "
              "semi-naive only", file=sys.stderr)
        return 2
    if args.engine == "sharded" or args.workers is not None:
        engine = ShardedSemiNaiveEngine(workers=args.workers or 0,
                                        backend=args.backend)
    elif args.engine in ("semi-naive", "compiled"):
        engine = _ENGINES[args.engine](backend=args.backend)
    else:
        # naive/top-down have no delta loop; --backend is moot there
        engine = _ENGINES[args.engine]()
    query_log = None
    if args.log_json is not None:
        from .logutil import open_query_log
        query_log = open_query_log(args.log_json)
    tracing = args.trace or args.trace_json is not None
    traces: list[dict] = []
    stats_dumps: list[dict] = []
    from time import perf_counter
    for query in queries:
        stats = EvaluationStats()
        tracer = Tracer() if tracing else None
        started = perf_counter()
        answers = engine.evaluate(system, db, query, stats,
                                  trace=tracer)
        duration = perf_counter() - started
        # AnswerSet.sorted_rows caches the sorted decode; the plain
        # sorted() fallback covers intern=False frozensets, same order.
        rows = (answers.sorted_rows() if hasattr(answers, "sorted_rows")
                else sorted(answers, key=repr))
        for row in rows:
            print(f"{system.predicate}"
                  f"({', '.join(str(v) for v in row)})")
        print(f"-- {query}: {len(answers)} answers   "
              f"[{stats.summary()}]", file=sys.stderr)
        if query_log is not None:
            from .logutil import new_query_id
            query_log.log(
                event="query", query_id=new_query_id(),
                query=str(query), predicate=system.predicate,
                engine=stats.engine,
                formula_class=str(classify(system).formula_class),
                rounds=stats.rounds, answers=len(answers),
                duration_s=round(duration, 6), outcome="ok")
        stats_dumps.append(stats.to_dict())
        if tracer is not None and tracer.trace is not None:
            if args.trace:
                print(tracer.trace.render(), file=sys.stderr)
            traces.append(tracer.trace.to_dict())
    if args.trace_json is not None:
        _dump_json({"version": TRACE_SCHEMA_VERSION,
                    "traces": traces}, args.trace_json)
    if args.stats_json is not None:
        _dump_json({"version": STATS_SCHEMA_VERSION,
                    "stats": stats_dumps}, args.stats_json)
    if query_log is not None:
        query_log.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading
    from .logutil import open_query_log
    from .metrics import MetricsRegistry
    from .server import QueryServer
    from .session import DeductiveDatabase
    with open(args.program, encoding="utf-8") as handle:
        text = handle.read()
    query_log = (open_query_log(args.log_json)
                 if args.log_json is not None else None)
    session = DeductiveDatabase(metrics=MetricsRegistry(),
                                query_log=query_log,
                                intern=not args.no_intern)
    session.load(text)
    server = QueryServer(session, host=args.host, port=args.port,
                         default_engine=args.engine,
                         default_workers=args.workers,
                         default_backend=args.backend,
                         max_inflight=args.max_inflight,
                         query_timeout_s=args.query_timeout,
                         max_rows=args.max_rows,
                         drain_grace_s=args.drain_grace,
                         job_workers=args.job_workers,
                         job_ttl_s=args.job_ttl,
                         trace_buffer=args.trace_buffer,
                         trace_sample=args.trace_sample,
                         slow_query_ms=args.slow_query_ms,
                         exemplars=args.exemplars)

    def _graceful(signum, frame) -> None:
        # serve_forever() runs on this (main) thread and
        # httpd.shutdown() deadlocks when called from it, so the
        # drain runs on a helper thread; serve_forever returns once
        # it completes.
        threading.Thread(target=server.graceful_shutdown,
                         daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    # The smoke scripts read this line to find an ephemeral port.
    print(f"serving on http://{server.host}:{server.port}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.graceful_shutdown()
    finally:
        server.close()
        if query_log is not None:
            query_log.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Classification of recursive formulas "
                    "(SIGMOD 1988) — analysis and evaluation tools")
    numpy_v = numpy_version()
    vector_info = (f"numpy {numpy_v}" if numpy_v
                   else "stub (numpy unavailable)")
    parser.add_argument(
        "--version", action="version",
        version=f"repro {__version__} "
                f"(python {platform.python_version()}, "
                f"vector backend: {vector_info})")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--loose", action="store_true",
                       help="skip the range-restriction check")
        p.add_argument("--json", action="store_true",
                       help="machine-readable JSON output")

    p_classify = sub.add_parser(
        "classify", help="classify a recursive rule")
    p_classify.add_argument("rule")
    common(p_classify)
    p_classify.set_defaults(func=_cmd_classify)

    p_plan = sub.add_parser(
        "plan", help="compile a query form against a rule")
    p_plan.add_argument("rule")
    p_plan.add_argument("--form", required=True,
                        help="adornment, e.g. dvv")
    common(p_plan)
    p_plan.set_defaults(func=_cmd_plan)

    p_figure = sub.add_parser(
        "figure", help="print the I-graph or a resolution graph")
    p_figure.add_argument("rule")
    p_figure.add_argument("--depth", type=int, default=1)
    p_figure.add_argument("--dot", action="store_true",
                          help="emit Graphviz DOT instead of text")
    common(p_figure)
    p_figure.set_defaults(func=_cmd_figure)

    p_expand = sub.add_parser(
        "expand", help="print the first k expansions of a rule")
    p_expand.add_argument("rule")
    p_expand.add_argument("--depth", type=int, default=3)
    common(p_expand)
    p_expand.set_defaults(func=_cmd_expand)

    p_lint = sub.add_parser(
        "lint", help="diagnostics for a rule or program file")
    group = p_lint.add_mutually_exclusive_group(required=True)
    group.add_argument("rule", nargs="?", default=None)
    group.add_argument("--file")
    p_lint.set_defaults(func=_cmd_lint)

    p_advise = sub.add_parser(
        "advise", help="pushdown capability matrix over all query forms")
    p_advise.add_argument("rule")
    common(p_advise)
    p_advise.set_defaults(func=_cmd_advise)

    p_table = sub.add_parser(
        "table", help="the classification table of all paper examples")
    p_table.set_defaults(func=_cmd_table)

    p_dossier = sub.add_parser(
        "dossier", help="full dossier for a named paper example")
    p_dossier.add_argument("name")
    p_dossier.set_defaults(func=_cmd_dossier)

    p_shell = sub.add_parser(
        "shell", help="interactive deductive-database shell")
    p_shell.set_defaults(func=_cmd_shell)

    p_prove = sub.add_parser(
        "prove", help="derivation trees for the answers of a query")
    p_prove.add_argument("program", help="file with rules and facts")
    p_prove.add_argument("--answer", required=True,
                         help="query pattern, e.g. 'P(a, Y)'")
    p_prove.add_argument("--limit", type=int, default=3,
                         help="max derivations to print")
    p_prove.set_defaults(func=_cmd_prove)

    p_run = sub.add_parser(
        "run", help="evaluate a query over a program file with facts")
    p_run.add_argument("program", help="file with rules and facts")
    p_run.add_argument("--query", help="e.g. 'P(a, Y)'")
    p_run.add_argument("--engine", choices=sorted(_ENGINES),
                       default="compiled")
    p_run.add_argument("--workers", type=int, default=None,
                       help="shard the fixpoint across N worker "
                            "processes (0 = in-process sharding); "
                            "implies the sharded engine")
    p_run.add_argument("--backend", choices=BACKENDS, default="auto",
                       help="delta-loop backend: auto/vector use the "
                            "vectorised kernel (numpy, or its pure-"
                            "python stub) for certified plan shapes; "
                            "python pins the tuple-set loop")
    p_run.add_argument("--trace", action="store_true",
                       help="print an EXPLAIN ANALYZE trace of each "
                            "query to stderr")
    p_run.add_argument("--trace-json", metavar="FILE", default=None,
                       help="write the traces as JSON to FILE "
                            "('-' for stdout)")
    p_run.add_argument("--stats-json", metavar="FILE", default=None,
                       help="write each query's EvaluationStats as "
                            "JSON to FILE ('-' for stdout)")
    p_run.add_argument("--log-json", metavar="FILE", default=None,
                       help="append one structured JSON log line per "
                            "query to FILE ('-' for stderr)")
    p_run.add_argument("--no-intern", action="store_true",
                       help="store raw value tuples instead of "
                            "dictionary-encoded int codes (ablation; "
                            "answers are identical)")
    p_run.set_defaults(func=_cmd_run)

    p_serve = sub.add_parser(
        "serve", help="serve a program over HTTP with metrics "
                      "(POST /query, POST /facts, POST /jobs + "
                      "async polling, GET /metrics, /healthz, "
                      "/stats, /debug/traces)")
    p_serve.add_argument("program", help="file with rules and facts")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="listen port (0 = ephemeral; the bound "
                              "port is printed on startup)")
    p_serve.add_argument("--engine", choices=sorted(_ENGINES),
                         default="compiled",
                         help="default engine for /query requests")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="default worker-pool size for /query "
                              "requests (implies the sharded engine)")
    p_serve.add_argument("--backend", choices=BACKENDS,
                         default="auto",
                         help="default delta-loop backend for /query "
                              "requests (requests may override per "
                              "call)")
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         help="concurrent evaluations admitted; "
                              "excess requests get 429 + Retry-After")
    p_serve.add_argument("--query-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="default per-query wall-clock budget; "
                              "expiry aborts the fixpoint at a round "
                              "boundary (408)")
    p_serve.add_argument("--max-rows", type=int, default=None,
                         help="per-query answer-row cap; the fixpoint "
                              "stops at the next round boundary and "
                              "the partial answers are flagged "
                              "truncated")
    p_serve.add_argument("--job-workers", type=int, default=2,
                         help="worker threads draining async jobs "
                              "(POST /jobs); keep below "
                              "--max-inflight so synchronous queries "
                              "retain admission headroom")
    p_serve.add_argument("--job-ttl", type=float, default=600.0,
                         metavar="SECONDS",
                         help="how long a finished job's result is "
                              "retained for GET /jobs/<id>/result")
    p_serve.add_argument("--drain-grace", type=float, default=10.0,
                         metavar="SECONDS",
                         help="how long shutdown waits for in-flight "
                              "queries before closing anyway")
    p_serve.add_argument("--log-json", metavar="FILE", default=None,
                         help="append one structured JSON log line "
                              "per query to FILE ('-' for stderr)")
    p_serve.add_argument("--no-intern", action="store_true",
                         help="store raw value tuples instead of "
                              "dictionary-encoded int codes "
                              "(ablation; answers are identical)")
    p_serve.add_argument("--trace-buffer", type=int, default=256,
                         metavar="N",
                         help="flight-recorder capacity: completed "
                              "request traces retained for GET "
                              "/debug/traces (oldest evicted first)")
    p_serve.add_argument("--trace-sample", type=float, default=0.01,
                         metavar="RATE",
                         help="always-on trace sampling rate in "
                              "[0, 1]; 0 disables sampling entirely")
    p_serve.add_argument("--slow-query-ms", type=float, default=None,
                         metavar="MS",
                         help="capture any request at least this "
                              "slow regardless of sampling, and emit "
                              "a slow_query log event for it")
    p_serve.add_argument("--exemplars", action="store_true",
                         help="expose query-id exemplars on "
                              "repro_query_duration_seconds buckets "
                              "in /metrics")
    p_serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
