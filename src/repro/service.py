"""Snapshot-isolated concurrent evaluation: epochs and admission.

The HTTP layer (:mod:`repro.server`) used to serialise every query
behind one lock because the session's lazy caches are not designed for
concurrent *mutation*.  This module removes the lock without touching
the engines' single-threaded inner loops, by separating the two roles
a session plays:

* **One authoritative session** owns the truth.  All writes (fact and
  rule changes) go through :meth:`EpochManager.apply` under a writer
  lock, batched into *epochs*: after the batch mutates the
  authoritative session, :meth:`~repro.session.DeductiveDatabase.fork_reader`
  builds an immutable snapshot and one attribute assignment publishes
  it.  Readers therefore see either the pre-batch or the post-batch
  database — never a half-applied one.

* **Readers share the published snapshot.**  A fork's database is
  marked read-only, every fixpoint copies it before materialising, and
  the caches shared between its readers are filled with deterministic
  values under GIL-atomic dict-slot assignments — a race costs a
  duplicated computation, never a wrong answer (the contract is spelled
  out on :meth:`~repro.session.DeductiveDatabase.fork_reader` and
  property-tested in ``tests/test_service_properties.py``).

:class:`QueryService` adds the service disciplines around that core:
bounded admission (at most *max_inflight* concurrent evaluations; the
rest get :class:`AdmissionRejected` with a data-driven retry hint),
per-query deadlines (wall-clock budget and row limit, carried to the
engines by :class:`~repro.engine.deadline.Deadline` and enforced at
round boundaries), and graceful drain for shutdown.  Everything is
observable through the standard registry names
(:mod:`repro.metrics.instrument`): in-flight and queue-depth gauges,
rejected/timed-out counters, snapshot-age and epoch-publish
histograms.
"""

from __future__ import annotations

import math
import threading
from time import perf_counter, time
from typing import Callable, Iterable

from .datalog.errors import ReproError
from .engine.deadline import Deadline
from .engine.stats import EvaluationStats
from .session import DeductiveDatabase

__all__ = ["AdmissionRejected", "Epoch", "EpochManager", "QueryResult",
           "QueryService", "ServiceDraining"]


class AdmissionRejected(ReproError):
    """Admission control turned the query away (map to HTTP 429).

    ``retry_after_s`` is the service's estimate of when a slot frees
    up: the exponential moving average of recent query durations,
    floored at one second.
    """

    def __init__(self, message: str, retry_after_s: int) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceDraining(ReproError):
    """The service is draining and admits no new queries (HTTP 503)."""


class Epoch:
    """One published snapshot: a number and an immutable reader fork."""

    __slots__ = ("number", "session", "published_monotonic",
                 "published_at")

    def __init__(self, number: int,
                 session: DeductiveDatabase) -> None:
        self.number = number
        #: the reader fork — share it between any number of threads
        self.session = session
        self.published_monotonic = perf_counter()
        #: wall-clock publish time, for human-facing surfaces
        self.published_at = time()

    def age_s(self) -> float:
        """Seconds since this snapshot was published."""
        return perf_counter() - self.published_monotonic


class EpochManager:
    """Writer-locked authority publishing immutable reader snapshots.

    >>> manager = EpochManager(_example_session())
    >>> manager.current.number
    0
    >>> epoch = manager.apply(
    ...     lambda s: s.add_fact("parent", "cal", "dee"))
    >>> epoch.number
    1
    >>> sorted(epoch.session.query("anc(cal, Y)"))
    [('cal', 'dee')]
    """

    def __init__(self, session: DeductiveDatabase,
                 metrics=None) -> None:
        self._authoritative = session
        self._write_lock = threading.Lock()
        #: registry for the epoch metrics; defaults to the session's
        self.metrics = (metrics if metrics is not None
                        else session.metrics)
        #: the published snapshot; reading this attribute is the whole
        #: reader-side protocol (attribute loads are atomic)
        self.current = Epoch(0, session.fork_reader())

    @property
    def session(self) -> DeductiveDatabase:
        """The authoritative (writable) session behind the epochs."""
        return self._authoritative

    def apply(self, mutate: Callable[[DeductiveDatabase], object]
              ) -> Epoch:
        """Run one write batch and publish the next snapshot.

        *mutate* receives the authoritative session under the writer
        lock; whatever it does — any mix of fact adds/removals and
        rule changes — becomes visible to readers in a single epoch.
        Returns the epoch it published.  A *mutate* that raises
        publishes nothing: the previous snapshot stays current (the
        authoritative session may hold a partial batch, which the next
        successful ``apply`` will fold into its epoch).
        """
        with self._write_lock:
            started = perf_counter()
            mutate(self._authoritative)
            epoch = Epoch(self.current.number + 1,
                          self._authoritative.fork_reader())
            self.current = epoch
            if self.metrics is not None:
                from .metrics.instrument import observe_epoch_publish
                observe_epoch_publish(
                    self.metrics, epoch=epoch.number,
                    seconds=perf_counter() - started)
        return epoch


class QueryResult:
    """What one admitted evaluation produced, with its provenance."""

    __slots__ = ("answers", "stats", "outcome", "epoch", "duration_s",
                 "query_id")

    def __init__(self, answers, stats: EvaluationStats, outcome: str,
                 epoch: int, duration_s: float,
                 query_id: str | None = None) -> None:
        self.answers = answers
        self.stats = stats
        #: ``"ok"`` or ``"truncated"`` (timeouts raise instead)
        self.outcome = outcome
        #: number of the epoch the query read
        self.epoch = epoch
        self.duration_s = duration_s
        #: the request-scoped id the evaluation was logged under
        self.query_id = query_id


class QueryService:
    """Admission-controlled concurrent reads over an epoch manager.

    *max_inflight* bounds concurrent evaluations; an arrival finding
    every slot busy waits up to *admit_wait_s* (default: not at all)
    and is then rejected.  *query_timeout_s* and *max_rows* are the
    per-query deadline defaults; a request may tighten or (for the
    timeout) loosen them per call.  All state transitions are exported
    to *metrics* when a registry is installed on the sessions.
    """

    def __init__(self, manager: EpochManager, *,
                 max_inflight: int = 8,
                 query_timeout_s: float | None = None,
                 max_rows: int | None = None,
                 admit_wait_s: float = 0.0) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.manager = manager
        self.max_inflight = max_inflight
        self.query_timeout_s = query_timeout_s
        self.max_rows = max_rows
        self.admit_wait_s = admit_wait_s
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._inflight = 0
        self._queued = 0
        self._draining = False
        #: EWMA of completed-query durations, the Retry-After source
        self._ewma_duration_s: float | None = None
        # plain counters for /healthz and the smoke's reconciliation
        self.admitted_total = 0
        self.rejected_total = 0
        self.completed_total = 0

    # -- admission -----------------------------------------------------

    @property
    def metrics(self):
        return self.manager.session.metrics

    def _export_gauges_locked(self) -> None:
        if self.metrics is not None:
            from .metrics.instrument import set_admission_gauges
            set_admission_gauges(self.metrics,
                                 inflight=self._inflight,
                                 queue_depth=self._queued)

    def retry_after_s(self) -> int:
        """Whole seconds until a slot plausibly frees up (>= 1)."""
        estimate = self._ewma_duration_s or 1.0
        return max(1, math.ceil(estimate))

    def _admit(self, wait_s: float | None = None,
               count_rejection: bool = True) -> None:
        wait = self.admit_wait_s if wait_s is None else wait_s
        deadline = perf_counter() + wait
        with self._lock:
            if self._draining:
                raise ServiceDraining(
                    "service is draining; no new queries admitted")
            while self._inflight >= self.max_inflight:
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    # a job worker's slot poll is not a client
                    # rejection: it raises the same way but leaves the
                    # 429 telemetry alone (count_rejection=False)
                    if count_rejection:
                        self.rejected_total += 1
                        if self.metrics is not None:
                            from .metrics.instrument import (
                                observe_rejection)
                            observe_rejection(self.metrics)
                    self._export_gauges_locked()
                    raise AdmissionRejected(
                        f"{self._inflight} queries in flight "
                        f"(limit {self.max_inflight})",
                        retry_after_s=self.retry_after_s())
                self._queued += 1
                self._export_gauges_locked()
                try:
                    self._slot_free.wait(remaining)
                finally:
                    self._queued -= 1
                if self._draining:
                    self._export_gauges_locked()
                    raise ServiceDraining(
                        "service is draining; no new queries admitted")
            self._inflight += 1
            self.admitted_total += 1
            self._export_gauges_locked()

    def _release(self, duration_s: float) -> None:
        with self._lock:
            self._inflight -= 1
            self.completed_total += 1
            previous = self._ewma_duration_s
            self._ewma_duration_s = (
                duration_s if previous is None
                else 0.8 * previous + 0.2 * duration_s)
            self._export_gauges_locked()
            self._slot_free.notify_all()

    # -- querying ------------------------------------------------------

    def run(self, query: str, *, engine: str = "compiled",
            workers: int | None = None,
            backend: str = "auto",
            timeout_s: float | None = None,
            max_rows: int | None = None,
            epoch: Epoch | None = None,
            cancel=None,
            stats: EvaluationStats | None = None,
            admit_wait_s: float | None = None,
            count_rejection: bool = True,
            ctx=None) -> QueryResult:
        """Admit, pin a snapshot, evaluate under a deadline, release.

        *backend* is handed to
        :meth:`~repro.session.DeductiveDatabase.query` verbatim —
        ``"auto"``/``"vector"`` allow the vectorised delta-loop kernel,
        ``"python"`` pins the tuple-set loop.

        Raises :class:`AdmissionRejected` when every slot is busy,
        :class:`ServiceDraining` during shutdown, and
        :class:`~repro.engine.deadline.QueryTimeout` when the query's
        wall-clock budget expires mid-fixpoint.  A row limit does not
        raise: the engines stop the fixpoint at the next round
        boundary and the (sound, partial) answers come back with
        ``outcome == "truncated"``.

        The background job queue (:mod:`repro.jobs`) threads three
        extras through: *epoch* evaluates against a snapshot pinned
        earlier (at job-submit time) instead of the current one,
        *cancel* (an ``is_set()`` flag) rides the deadline so the
        engines abort with
        :class:`~repro.engine.deadline.QueryCancelled` at the next
        round boundary, and *stats* lets the caller keep a live handle
        on the evaluation's counters (rounds, delta sizes) while it
        runs — that is how job progress is surfaced mid-flight.
        *admit_wait_s* overrides the service's ``admit_wait_s`` for
        this call and *count_rejection=False* keeps an expired wait
        out of the 429 counters (job workers wait for a slot in
        slices and retry — their polls are scheduling, not client
        rejections).

        *ctx* is an optional
        :class:`~repro.flight.RequestContext`: the service records
        the ``admission``, ``snapshot`` and ``engine`` phase spans on
        it, evaluates under its query id (so log lines and metric
        exemplars correlate with the request) and passes its tracer —
        if capture was sampled or forced — down to the engine.
        """
        admit_started = perf_counter()
        self._admit(admit_wait_s, count_rejection)
        if ctx is not None:
            ctx.add_phase("admission", admit_started)
        started = perf_counter()
        try:
            if epoch is None:
                epoch = self.manager.current
            age_s = epoch.age_s()
            if self.metrics is not None:
                from .metrics.instrument import observe_snapshot_age
                observe_snapshot_age(self.metrics, age_s)
            if ctx is not None:
                ctx.add_phase("snapshot", started, epoch=epoch.number,
                              snapshot_age_s=age_s)
            if stats is None:
                stats = EvaluationStats()
            stats.deadline = self._deadline(timeout_s, max_rows,
                                            cancel)
            engine_started = perf_counter()
            try:
                answers = epoch.session.query(
                    query, stats=stats, engine=engine, workers=workers,
                    trace=ctx.tracer if ctx is not None else None,
                    query_id=ctx.query_id if ctx is not None else None,
                    backend=backend)
            finally:
                if ctx is not None:
                    ctx.add_phase("engine", engine_started)
            outcome = "truncated" if stats.truncated else "ok"
            duration_s = perf_counter() - started
            return QueryResult(answers, stats, outcome, epoch.number,
                               duration_s,
                               ctx.query_id if ctx is not None
                               else None)
        finally:
            self._release(perf_counter() - started)

    def _deadline(self, timeout_s: float | None,
                  max_rows: int | None,
                  cancel=None) -> Deadline | None:
        effective_timeout = (self.query_timeout_s
                             if timeout_s is None else timeout_s)
        effective_rows = self.max_rows if max_rows is None else max_rows
        # a request may only tighten the service's row cap
        if self.max_rows is not None:
            effective_rows = (self.max_rows if effective_rows is None
                              else min(effective_rows, self.max_rows))
        if (effective_timeout is None and effective_rows is None
                and cancel is None):
            return None
        return Deadline(timeout_s=effective_timeout,
                        max_rows=effective_rows, cancel=cancel)

    # -- writes --------------------------------------------------------

    def apply_batch(self, *,
                    add: dict[str, Iterable[tuple]] | None = None,
                    remove: dict[str, Iterable[tuple]] | None = None,
                    rules: Iterable[str] | None = None) -> Epoch:
        """One write batch — adds, removals, new rules — one epoch."""
        def mutate(session: DeductiveDatabase) -> None:
            for predicate, rows in (remove or {}).items():
                session.remove_facts(predicate,
                                     [tuple(row) for row in rows])
            for predicate, rows in (add or {}).items():
                session.add_facts(predicate,
                                  [tuple(row) for row in rows])
            for rule in (rules or ()):
                session.add_rule(rule)
        return self.manager.apply(mutate)

    # -- shutdown ------------------------------------------------------

    def drain(self, grace_s: float = 10.0) -> bool:
        """Stop admitting, wait for in-flight queries, report success.

        Returns ``True`` when the last in-flight query finished within
        *grace_s*; ``False`` when the grace expired with work still
        running (the caller shuts down anyway — deadlines bound how
        long such a straggler can hold a thread).
        """
        with self._lock:
            self._draining = True
            # wake queued waiters so they fail fast with 503
            self._slot_free.notify_all()
            deadline = perf_counter() + grace_s
            while self._inflight > 0:
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    return False
                self._slot_free.wait(remaining)
            return True

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight


def _example_session() -> DeductiveDatabase:
    """Tiny session for the doctests above."""
    session = DeductiveDatabase()
    session.load("""
        anc(x, y) :- parent(x, z), anc(z, y).
        anc(x, y) :- parent(x, y).
        parent(ann, bea).
        parent(bea, cal).
    """)
    return session
