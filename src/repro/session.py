"""A user-facing deductive-database session.

:class:`DeductiveDatabase` ties the whole library together the way an
application would use it: load a program (rules and facts), ask
queries, and let the classification decide how each recursive
predicate is evaluated.

Programs may define *several* IDB predicates — non-recursive views and
linear recursion systems — as long as distinct predicates are not
mutually recursive (the paper's single-recursion setting).  Predicates
are materialised bottom-up in dependency order; the *queried*
predicate is evaluated with the compiled engine so query constants are
pushed into the recursion whenever its class allows.

>>> ddb = DeductiveDatabase()
>>> ddb.load('''
...     anc(x, y) :- parent(x, z), anc(z, y).
...     anc(x, y) :- parent(x, y).
...     parent(ann, bea).
...     parent(bea, cal).
... ''')
>>> sorted(ddb.query("anc(ann, Y)"))
[('ann', 'bea'), ('ann', 'cal')]
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable

from .core.classifier import Classification, classify
from .core.compile import CompiledFormula, compile_query
from .datalog.atoms import Atom
from .datalog.errors import EvaluationError, RuleValidationError
from .datalog.parser import parse_program, parse_rule
from .datalog.program import Program, RecursionSystem
from .datalog.rules import RecursiveRule, Rule
from .datalog.terms import Constant
from .engine.compiled import CompiledEngine
from .engine.conjunctive import solve_project
from .engine.naive import NaiveEngine
from .engine.topdown import TopDownEngine
from .engine.query import Query
from .engine.seminaive import SemiNaiveEngine
from .engine.sharded import ShardedSemiNaiveEngine
from .engine.stats import EvaluationStats
from .engine.trace import Tracer
from .engine.vector import validate_backend
from .ra.answers import AnswerSet
from .ra.database import Database


class DeductiveDatabase:
    """A mutable session over rules and facts with compiled queries."""

    #: answer-cache capacity (FIFO); stale entries from old database
    #: versions age out through this cap
    _ANSWER_CACHE_LIMIT = 1024

    def __init__(self, indexed: bool = True, metrics=None,
                 query_log=None, intern: bool = True) -> None:
        self._rules: list[Rule] = []
        self._edb = Database(indexed=indexed, intern=intern)
        self._materialised: Database | None = None
        self._plan_cache: dict[tuple[str, frozenset[int]],
                               CompiledFormula] = {}
        self._classification_cache: dict[str, Classification] = {}
        #: full answer sets keyed by (predicate, pattern, engine,
        #: workers, database epoch) — any fact mutation moves the
        #: epoch, so entries self-invalidate; rule changes clear it.
        #: Under interning the cached object is the *lazy* columnar
        #: :class:`~repro.ra.answers.AnswerSet` — codes plus the
        #: shared symbol table, not materialised value tuples — so a
        #: cached large enumeration costs one row set, not two, and a
        #: hit decodes only if the caller reads the values (the decode,
        #: once forced, is cached on the entry: this cache doubles as
        #: the LRU of decoded columns, keyed by database epoch)
        self._answer_cache: dict[
            tuple, tuple[AnswerSet | frozenset, str]] = {}
        #: optional :class:`~repro.metrics.MetricsRegistry`; when None
        #: (the default) :meth:`query` takes the uninstrumented path —
        #: bit-identical answers and stats, zero added work
        self.metrics = metrics
        #: optional :class:`~repro.logutil.QueryLogger` — one JSON
        #: line per query when installed
        self.query_log = query_log

    # -- loading -------------------------------------------------------

    def load(self, text: str) -> None:
        """Parse and add a program fragment (rules and/or facts)."""
        program = parse_program(text)
        for rule in program.rules:
            self.add_rule(rule)
        for fact in program.facts:
            self._add_fact_atom(fact)

    def add_rule(self, rule: Rule | str) -> None:
        """Add one rule (text or object); invalidates materialisation."""
        if isinstance(rule, str):
            rule = parse_rule(rule)
        self._rules.append(rule)
        # Intern the rule's constants up front: afterwards, "constant
        # not in the symbol table" means "constant appears in no fact
        # and no rule", which is what licenses the unseen-constant
        # short-circuit (range restriction: every answer value comes
        # from a fact or a rule constant).  It also keeps the symbol
        # table from growing mid-evaluation, so each probe table is
        # built exactly once per fixpoint in either storage mode.
        if self._edb.interned:
            for atom in (rule.head, *rule.body):
                for term in atom.args:
                    if isinstance(term, Constant):
                        self._edb.encode_const(term.value)
        self._invalidate(rules_changed=True)

    def add_fact(self, predicate: str, *values: object) -> None:
        """Add one ground fact."""
        self._edb.add(predicate, tuple(values))
        self._invalidate(rules_changed=False)

    def add_facts(self, predicate: str,
                  rows: Iterable[tuple]) -> None:
        """Add many ground facts for one predicate."""
        self._edb.bulk(predicate, rows)
        self._invalidate(rules_changed=False)

    def remove_fact(self, predicate: str, *values: object) -> bool:
        """Delete one ground fact; True when it was present."""
        removed = self._edb.remove(predicate, tuple(values))
        self._invalidate(rules_changed=False)
        return removed

    def remove_facts(self, predicate: str,
                     rows: Iterable[tuple]) -> int:
        """Delete many ground facts; number actually removed."""
        removed = self._edb.bulk_remove(predicate, rows)
        self._invalidate(rules_changed=False)
        return removed

    def _add_fact_atom(self, fact: Atom) -> None:
        values = []
        for term in fact.args:
            if not isinstance(term, Constant):
                raise RuleValidationError(
                    f"fact {fact} is not ground: {term} is not a "
                    f"constant")
            values.append(term.value)
        self._edb.add(fact.predicate, tuple(values))
        self._invalidate(rules_changed=False)

    def _invalidate(self, rules_changed: bool) -> None:
        self._materialised = None
        if rules_changed:
            self._plan_cache.clear()
            self._classification_cache.clear()
            # fact changes are covered by the epoch in the cache key;
            # rule changes alter derivations at the same epoch
            self._answer_cache.clear()

    # -- snapshot forking ------------------------------------------------

    def fork_reader(self) -> "DeductiveDatabase":
        """An immutable snapshot of this session for concurrent reads.

        The fork is what the epoch manager publishes after each write
        batch: its database is an independent :meth:`Database.copy`
        (row sets copied, symbol table and version-tagged join caches
        shared) marked **read-only**, so a reader that would mutate
        shared state raises instead of corrupting other requests.
        Rules and the derived caches are carried over by value, so the
        fork answers exactly what the base would have answered at this
        instant — later mutations of the base are invisible to it.

        Concurrency contract of a fork: any number of threads may call
        :meth:`query` on it simultaneously.  Every fixpoint already
        copies the database before materialising
        (:meth:`_materialise_below`), so per-request evaluation state
        is private; what *is* shared between the fork's readers — the
        plan/classification caches, the answer cache, a lazily
        computed view materialisation — is filled with deterministic,
        interchangeable values under single dict-slot assignments
        (atomic under the GIL), so a race costs at most a duplicated
        computation, never a wrong answer.
        """
        clone = object.__new__(DeductiveDatabase)
        clone._rules = list(self._rules)
        clone._edb = self._edb.copy()
        clone._edb.read_only = True
        clone._materialised = self._materialised
        clone._plan_cache = dict(self._plan_cache)
        clone._classification_cache = dict(self._classification_cache)
        clone._answer_cache = dict(self._answer_cache)
        clone.metrics = self.metrics
        clone.query_log = self.query_log
        return clone

    # -- structure -------------------------------------------------------

    @property
    def program(self) -> Program:
        """The current rule set as a :class:`Program` (facts excluded —
        they live in the fact store)."""
        return Program(tuple(self._rules))

    @property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by rules."""
        return self.program.idb_predicates

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """The rules defining *predicate*."""
        return self.program.rules_for(predicate)

    def system_for(self, predicate: str) -> RecursionSystem | None:
        """The recursion system of *predicate*, or None for a
        non-recursive view."""
        rules = self.rules_for(predicate)
        recursive = [r for r in rules if r.is_recursive()]
        if not recursive:
            return None
        if len(recursive) > 1:
            raise RuleValidationError(
                f"{predicate!r} has {len(recursive)} recursive rules; "
                f"the paper's setting is single recursion")
        exits = tuple(r for r in rules if not r.is_recursive())
        if not exits:
            raise RuleValidationError(
                f"recursive predicate {predicate!r} has no exit rule")
        return RecursionSystem(RecursiveRule(recursive[0]), exits)

    def classification(self, predicate: str) -> Classification:
        """Classification of a recursive predicate (cached)."""
        cached = self._classification_cache.get(predicate)
        if cached is None:
            system = self.system_for(predicate)
            if system is None:
                raise EvaluationError(
                    f"{predicate!r} is not a recursive predicate")
            cached = classify(system)
            self._classification_cache[predicate] = cached
        return cached

    # -- materialisation ----------------------------------------------

    def _materialise_below(self, target: str) -> Database:
        """All IDB predicates strictly below *target*, bottom-up."""
        program = self.program
        order = program.evaluation_order()
        if target in order:
            order = order[:order.index(target)]
        db = self._edb.copy()
        for predicate in order:
            self._materialise_one(predicate, db)
        return db

    def _materialise_one(self, predicate: str, db: Database) -> None:
        # solve_project and the fixpoint hand back storage-space rows
        # and *db* stores storage-space rows — bulk_encoded keeps them
        # out of the encoder (a value-space ``bulk`` would re-encode
        # int codes as if they were user values).
        system = self.system_for(predicate)
        if system is None:
            arity = self.rules_for(predicate)[0].head.arity
            db.declare(predicate, arity)
            for rule in self.rules_for(predicate):
                db.bulk_encoded(
                    predicate,
                    solve_project(db, rule.body, rule.head.args))
        else:
            db.bulk_encoded(
                predicate,
                SemiNaiveEngine().evaluate(system, db, decode=False))

    def materialise(self) -> Database:
        """Fully materialise every IDB predicate (cached until the
        session changes)."""
        if self._materialised is None:
            db = self._edb.copy()
            for predicate in self.program.evaluation_order():
                self._materialise_one(predicate, db)
            self._materialised = db
        return self._materialised

    # -- querying --------------------------------------------------------

    ENGINES = {"compiled": CompiledEngine, "semi-naive": SemiNaiveEngine,
               "naive": NaiveEngine, "top-down": TopDownEngine,
               "sharded": ShardedSemiNaiveEngine}

    #: engines that can absorb a ``workers=`` pool size (the sharded
    #: engine *is* the parallel semi-naive, and the compiled default
    #: upgrades transparently, matching the documented behaviour)
    _SHARDABLE = frozenset({"compiled", "semi-naive", "sharded"})

    def query(self, query: Query | str,
              stats: EvaluationStats | None = None,
              engine: str = "compiled",
              workers: int | None = None,
              trace: Tracer | None = None,
              query_id: str | None = None,
              backend: str = "auto") -> frozenset[tuple]:
        """Answer a query, choosing the evaluation by classification.

        EDB predicates are looked up directly; non-recursive views are
        materialised; recursive predicates go through the chosen
        *engine* (default: the compiled engine, with a cached plan so
        the constants are pushed into the recursion).  Passing
        *workers* selects the sharded engine with that pool size
        (0 = deterministic in-process sharding); combining it with an
        engine that cannot shard raises ``ValueError``.  Passing a
        :class:`~repro.engine.trace.Tracer` as *trace* records the
        execution; the finished :class:`~repro.engine.trace.Trace` is
        available as ``trace.trace`` afterwards.

        With a metrics registry and/or query log installed on the
        session, each call additionally records latency, answer-count
        and work counters (snapshot-delta of the stats, so registry
        totals reconcile with per-query stats exactly) and emits one
        structured log line; with neither installed this method is the
        pre-telemetry code path, unchanged.

        *query_id* names the query in the log line and the metrics
        exemplar; ``repro serve`` passes the request-scoped id so the
        response envelope, log, trace and metrics all correlate.  When
        ``None`` a fresh id is minted per instrumented call.

        *backend* picks the delta-loop execution backend for the
        fixpoint engines: ``"auto"``/``"vector"`` hand certified plan
        shapes to the vectorised kernel
        (:mod:`repro.engine.vector` — numpy when importable, the
        bit-identical pure-python stub otherwise), ``"python"`` pins
        the tuple-set loop.  Engines without a delta loop (naive,
        top-down, edb/view lookups) ignore it.
        """
        if isinstance(query, str):
            query = Query.parse(query)
        backend = validate_backend(backend)
        if self.metrics is None and self.query_log is None:
            return self._evaluate_query(query, stats, engine, workers,
                                        trace, backend)
        return self._instrumented_query(query, stats, engine, workers,
                                        trace, query_id, backend)

    def _evaluate_query(self, query: Query,
                        stats: EvaluationStats | None,
                        engine: str, workers: int | None,
                        trace: Tracer | None,
                        backend: str = "auto") -> frozenset[tuple]:
        """Answer-cache wrapper around the evaluation proper.

        Successful answer sets are memoised on (query pattern, engine,
        workers, database epoch): re-asking an unchanged session the
        same question is a dict lookup.  *Active* traced runs bypass
        the cache — the caller asked to watch the evaluation happen —
        and error paths never populate it.  A **passive** tracer
        (serve-mode sampling) keeps the cache enabled: a hit records a
        one-span trace with ``cache_hit=true`` instead of silently
        disabling capture, so sampled requests stay answer- and
        stats-identical to unsampled ones.
        """
        if trace is not None and not trace.passive:
            return self._evaluate_query_uncached(query, stats, engine,
                                                 workers, trace, backend)
        key = (query.predicate, query.pattern, engine, workers, backend,
               self._edb.global_version())
        hit = self._answer_cache.get(key)
        if hit is not None:
            answers, engine_label = hit
            if stats is not None:
                stats.answer_cache_hits += 1
                stats.engine = engine_label
                stats.answers = len(answers)
            if trace is not None:
                trace.begin(engine_label, predicate=query.predicate,
                            query=query, cache_hit=True)
                trace.begin_round("cache", 0, stats)
                trace.end_round(len(answers), stats)
                trace.finish(len(answers), stats)
            return answers
        local = stats if stats is not None else EvaluationStats()
        answers = self._evaluate_query_uncached(query, local, engine,
                                                workers, trace, backend)
        if local.truncated:
            # a row-budget abort returned a sound but *partial* set;
            # caching it would serve incomplete answers to later
            # callers with laxer (or no) budgets
            return answers
        if len(self._answer_cache) >= self._ANSWER_CACHE_LIMIT:
            try:
                self._answer_cache.pop(next(iter(self._answer_cache)))
            except (KeyError, StopIteration, RuntimeError):
                pass  # a concurrent reader evicted the same entry
        self._answer_cache[key] = (answers, local.engine or engine)
        return answers

    def _evaluate_query_uncached(self, query: Query,
                                 stats: EvaluationStats | None,
                                 engine: str, workers: int | None,
                                 trace: Tracer | None,
                                 backend: str = "auto"
                                 ) -> frozenset[tuple]:
        """The evaluation itself, free of any telemetry concern."""
        if workers is not None:
            if engine not in self._SHARDABLE:
                raise ValueError(
                    f"workers= shards the fixpoint and requires the "
                    f"sharded engine (or semi-naive/compiled, which "
                    f"upgrade to it); got engine={engine!r}")
            engine = "sharded"
        if engine not in self.ENGINES:
            raise EvaluationError(
                f"unknown engine {engine!r}; valid engines: "
                f"{', '.join(sorted(self.ENGINES))}")
        predicate = query.predicate

        if predicate not in self.idb_predicates:
            known_arity = self._edb.arity(predicate)
            if known_arity is None:
                raise EvaluationError(
                    f"unknown predicate {predicate!r}: no rule defines "
                    f"it and no facts were loaded for it")
            self._check_query_arity(query, known_arity)
            if trace is not None:
                trace.begin("edb", predicate=predicate, query=query)
            answers = self._relation_answers(self._edb, predicate,
                                             query)
            if stats is not None:
                stats.engine = "edb"
                stats.answers = len(answers)
            if trace is not None:
                trace.finish(len(answers), stats)
            return answers

        self._check_query_arity(
            query, self.rules_for(predicate)[0].head.arity)
        system = self.system_for(predicate)
        if system is None:
            if trace is not None:
                trace.begin("view", predicate=predicate, query=query)
            answers = self._relation_answers(self.materialise(),
                                             predicate, query)
            if stats is not None:
                stats.engine = "view"
                stats.answers = len(answers)
            if trace is not None:
                trace.finish(len(answers), stats)
            return answers

        if (trace is None or trace.passive) and self._edb.interned:
            # A query constant the symbol table has never seen occurs
            # in no fact and no rule (rule constants are interned at
            # add_rule time), so by range restriction it can appear in
            # no answer: skip materialisation and the fixpoint
            # entirely.  Actively traced runs take the full path — the
            # caller asked to watch the evaluation; a passive tracer
            # (serve-mode sampling) keeps the shortcut and records it.
            lookup = self._edb.symbols.lookup
            if any(value is not None and lookup(value) is None
                   for value in query.pattern):
                if stats is not None:
                    stats.engine = engine
                    stats.answers = 0
                if trace is not None:
                    trace.begin(engine, predicate=predicate,
                                query=query, unseen_constant=True)
                    trace.finish(0, stats)
                return frozenset()

        base = self._materialise_below(predicate)
        if engine != "compiled":
            cls = self.ENGINES[engine]
            if cls is ShardedSemiNaiveEngine:
                instance = cls(workers=workers or 0, backend=backend)
            elif cls is SemiNaiveEngine:
                instance = cls(backend=backend)
            else:
                # naive/top-down have no delta loop to vectorise
                instance = cls()
            return instance.evaluate(system, base, query, stats,
                                     trace=trace)
        key = (predicate, query.adornment)
        compiled = self._plan_cache.get(key)
        if compiled is None:
            compiled = compile_query(system, query.adornment,
                                     self.classification(predicate))
            self._plan_cache[key] = compiled
        return CompiledEngine(backend=backend).evaluate(
            system, base, query, stats, compiled=compiled, trace=trace)

    @staticmethod
    def _relation_answers(db: Database, predicate: str,
                          query: Query) -> AnswerSet | frozenset:
        """Filtered rows of a stored relation, without decoding it.

        EDB and view lookups used to decode the whole relation and
        filter in value space; now the filter runs over encoded rows
        (the query's constants are *looked up*, never interned — an
        unseen constant matches nothing) and the result is a lazy
        :class:`~repro.ra.answers.AnswerSet`.  Raw databases keep the
        value-space path verbatim.
        """
        if not db.interned:
            return query.filter(db.rows(predicate))
        pattern = db._lookup_pattern(query.pattern)
        if pattern is None:
            return AnswerSet(frozenset(), db.symbols)
        encoded = Query(predicate, pattern)
        return AnswerSet(encoded.filter(db.rows_encoded(predicate)),
                         db.symbols)

    # -- telemetry -------------------------------------------------------

    def _instrumented_query(self, query: Query,
                            stats: EvaluationStats | None,
                            engine: str, workers: int | None,
                            trace: Tracer | None,
                            query_id: str | None = None,
                            backend: str = "auto"
                            ) -> frozenset[tuple]:
        """Evaluate with metrics/log recording around the call.

        The caller's *stats* object (when given) is used directly, so
        it ends up bit-identical to an uninstrumented run; the
        registry is fed the snapshot *delta*, so a stats object reused
        across queries is never double counted.
        """
        from .logutil import new_query_id
        from .metrics.instrument import (observe_query,
                                         observe_query_error)
        from .engine.deadline import QueryCancelled, QueryTimeout
        from .engine.stats import delta_between

        local = stats if stats is not None else EvaluationStats()
        if query_id is None:
            query_id = new_query_id()
        before = local.to_dict()
        started = perf_counter()
        try:
            answers = self._evaluate_query(query, local, engine,
                                           workers, trace, backend)
        except Exception as error:
            duration = perf_counter() - started
            label = self._class_label(query.predicate)
            # A deadline expiry (and likewise a cooperative
            # cancellation) is its own outcome in
            # ``repro_queries_total`` (the admission layer budgets on
            # it), distinct from genuine evaluation errors.
            outcome = ("timeout" if isinstance(error, QueryTimeout)
                       else "cancelled"
                       if isinstance(error, QueryCancelled)
                       else "error")
            if self.metrics is not None:
                observe_query_error(self.metrics, engine=engine,
                                    formula_class=label,
                                    error=type(error).__name__,
                                    outcome=outcome)
            if self.query_log is not None:
                self.query_log.log(
                    event="query", query_id=query_id,
                    query=str(query), predicate=query.predicate,
                    engine=engine, formula_class=label,
                    duration_s=round(duration, 6),
                    outcome=outcome if outcome in ("timeout",
                                                   "cancelled")
                    else type(error).__name__,
                    error=str(error))
            raise
        duration = perf_counter() - started
        delta = delta_between(before, local.to_dict())
        label = self._class_label(query.predicate)
        engine_label = local.engine or engine
        outcome = "truncated" if local.truncated else "ok"
        if self.metrics is not None:
            # Answers that leave the query boundary still encoded: the
            # decode counter (repro_answers_decoded_total) ticks only
            # where materialisation is later forced, so the gap between
            # the two is the decode work laziness saved.
            lazy = (isinstance(answers, AnswerSet)
                    and not answers.is_decoded)
            observe_query(self.metrics, engine=engine_label,
                          formula_class=label, duration_s=duration,
                          answers=len(answers), stats_delta=delta,
                          lazy_answers=len(answers) if lazy else 0,
                          outcome=outcome, query_id=query_id)
        if self.query_log is not None:
            self.query_log.log(
                event="query", query_id=query_id, query=str(query),
                predicate=query.predicate, engine=engine_label,
                formula_class=label, rounds=delta["rounds"],
                answers=len(answers), duration_s=round(duration, 6),
                outcome=outcome)
        return answers

    def class_label(self, predicate: str) -> str:
        """Public alias of :meth:`_class_label` for the serve layer:
        trace summaries label each request with the formula class the
        classifier assigned its predicate."""
        return self._class_label(predicate)

    def _class_label(self, predicate: str) -> str:
        """The ``formula_class`` label value for a predicate:
        ``A1``…``F`` for recursive predicates, ``view`` for
        non-recursive IDB, ``edb`` for stored relations, ``unknown``
        when the predicate cannot be analysed (error paths)."""
        try:
            if predicate not in self.idb_predicates:
                return "edb"
            if self.system_for(predicate) is None:
                return "view"
            return str(self.classification(predicate).formula_class)
        except Exception:
            return "unknown"

    def collect_gauges(self) -> None:
        """Refresh the database/plan-cache gauges on the installed
        registry (a no-op without one).  Scrape-time only: the server
        calls this before rendering ``/metrics`` and ``/stats``."""
        if self.metrics is None:
            return
        from .metrics.instrument import export_database_gauges
        export_database_gauges(self.metrics, self._edb)

    @staticmethod
    def _check_query_arity(query: Query, arity: int) -> None:
        if query.arity != arity:
            raise EvaluationError(
                f"{query.predicate!r} has arity {arity}, but the "
                f"query {query} has {query.arity} argument(s)")

    def prove(self, query: Query | str,
              limit: int | None = None) -> list:
        """Derivation trees for the answers of a recursive query.

        Returns :class:`~repro.engine.provenance.Derivation` objects,
        sorted by answer, at most *limit* of them.
        """
        from .engine.provenance import _tuple_depths, explain_answer
        if isinstance(query, str):
            query = Query.parse(query)
        system = self.system_for(query.predicate)
        if system is None:
            raise EvaluationError(
                f"{query.predicate!r} is not a recursive predicate")
        base = self._materialise_below(query.predicate)
        answers = sorted(self.query(query), key=repr)
        if limit is not None:
            answers = answers[:limit]
        depths = _tuple_depths(system, base)
        return [explain_answer(system, base, answer, depths)
                for answer in answers]

    def explain(self, query: Query | str) -> str:
        """The compiled formula and strategy for a query, as text."""
        if isinstance(query, str):
            query = Query.parse(query)
        system = self.system_for(query.predicate)
        if system is None:
            return (f"{query.predicate} is not recursive; evaluated by "
                    f"materialisation")
        compiled = compile_query(system, query.adornment,
                                 self.classification(query.predicate))
        return compiled.describe()

    def explain_analyze(self, query: Query | str,
                        engine: str = "compiled",
                        workers: int | None = None) -> str:
        """EXPLAIN ANALYZE: run the query traced, render what happened.

        For the compiled engine the output leads with the compiled
        formula (what :meth:`explain` shows) followed by the observed
        per-round cardinalities, join fan-outs, hash-table reuse and
        timings; other engines render the trace alone.  The underlying
        :class:`~repro.engine.trace.Trace` is available through
        :meth:`query` with ``trace=``.
        """
        if isinstance(query, str):
            query = Query.parse(query)
        tracer = Tracer()
        self.query(query, engine=engine, workers=workers, trace=tracer)
        assert tracer.trace is not None
        header = ""
        if engine == "compiled" and self.system_for(query.predicate):
            header = self.explain(query) + "\n\n"
        return header + tracer.trace.render()

    def __repr__(self) -> str:
        return (f"DeductiveDatabase({len(self._rules)} rules, "
                f"{self._edb.total_facts()} facts)")
