"""Relational-algebra substrate: relations, a fact store, expressions."""

from .answers import AnswerSet
from .database import Database, Pattern
from .expr import (CartesianProduct, DifferenceOp, EqualColumns, Expr,
                   Extend, Join, Literal,
                   Projection, Renaming, Scan, Selection, Semijoin,
                   UnionOp, evaluate, scan, select)
from .io import (load_database, load_relation, save_database,
                 save_relation)
from .optimize import (count_nodes, optimize, output_columns,
                       selection_depths)
from .relation import Relation, relation_from_pairs

__all__ = [
    "AnswerSet",
    "CartesianProduct", "Database", "DifferenceOp", "EqualColumns",
    "Expr", "Extend", "Join",
    "Literal", "Pattern", "Projection", "Relation", "Renaming", "Scan",
    "Selection", "Semijoin", "UnionOp", "evaluate",
    "load_database", "load_relation", "relation_from_pairs",
    "save_database", "save_relation", "scan", "select",
    "count_nodes", "optimize", "output_columns", "selection_depths",
]
