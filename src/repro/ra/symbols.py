"""Dictionary encoding: intern constants to dense non-negative ints.

Every engine in this reproduction iterates joins over a *fixed active
domain* — the standard systems response is to dictionary-encode the
constants once at the storage boundary and run the whole evaluation
pipeline over dense integer codes.  A :class:`SymbolTable` is that
dictionary: append-only, with an id→value list and a value→id dict, so

* encoding is one dict lookup (interning on first sight),
* decoding is one list index,
* codes are dense (``0 .. len(table)-1``), which makes *array-indexed*
  access paths possible — see :meth:`~repro.ra.database.Database
  .dense_table` — where value-keyed storage can only hash.

Tables pickle as their value list (the code of a value is its list
position, so the dict half is rebuilt on arrival) and support a
*frozen* read-only mode for worker processes: a frozen table still
encodes every value it has seen and decodes every code it has issued,
but refuses to grow — exactly the discipline a read-only snapshot
shipped to a worker pool needs.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

__all__ = ["SymbolTable"]

#: Process-unique tokens; a table's token names its code space, so any
#: cache keyed by encoded values (e.g. the join-plan cache) can include
#: it and never confuse codes from two different tables.
_TOKENS = itertools.count(1)


class SymbolTable:
    """An append-only value ⇄ dense-int dictionary.

    >>> table = SymbolTable()
    >>> table.encode("a"), table.encode("b"), table.encode("a")
    (0, 1, 0)
    >>> table.decode(1)
    'b'
    >>> len(table)
    2
    """

    __slots__ = ("_values", "_codes", "_frozen", "token")

    def __init__(self, values: Iterable[object] = ()) -> None:
        self._values: list = list(values)
        self._codes: dict = {value: code
                             for code, value in enumerate(self._values)}
        if len(self._codes) != len(self._values):
            raise ValueError("duplicate values in symbol table seed")
        self._frozen = False
        #: process-unique identity of this table's code space
        self.token = next(_TOKENS)

    # -- encoding ------------------------------------------------------

    def encode(self, value) -> int:
        """The code of *value*, interning it on first sight."""
        code = self._codes.get(value)
        if code is None:
            if self._frozen:
                raise KeyError(
                    f"frozen symbol table cannot intern new value "
                    f"{value!r}")
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def lookup(self, value) -> int | None:
        """The code of *value*, or None when it was never interned."""
        return self._codes.get(value)

    def decode(self, code: int):
        """The value behind *code* (IndexError for codes never issued)."""
        return self._values[code]

    def encode_row(self, row: Iterable) -> tuple[int, ...]:
        """Encode every value of *row* (interning as needed)."""
        return tuple(map(self.encode, row))

    def decode_row(self, row: Iterable[int]) -> tuple:
        """Decode every code of *row*."""
        values = self._values
        return tuple(values[code] for code in row)

    def decode_column(self, codes) -> list:
        """Decode one flat code column in a single C-level pass.

        Codes are *dense*, so the value list is itself the complete
        code→value dictionary: the per-distinct-code decode work was
        paid once at intern time, and a column of 100k rows over 300
        distinct constants (every transitive-closure endpoint column)
        costs 100k O(1) list indexes — no per-row dict rebuilds, no
        hashing, no memo to populate.  This is the per-column
        discipline the columnar answer path
        (:class:`~repro.ra.answers.AnswerSet`) is built on.
        """
        return list(map(self._values.__getitem__, codes))

    def decode_rows(self, rows: Iterable[tuple]) -> frozenset[tuple]:
        """Bulk-decode a row collection (the eager answer boundary).

        Column-wise: one flat :meth:`decode_column` pass over the
        row-major codes, then per-column stride slices zipped back to
        rows.  On a 100k-answer result this is several times faster
        than calling :meth:`decode_row` per row — the transpose and
        the decode both run in C.
        """
        rows = list(rows)
        if not rows:
            return frozenset()
        arity = len(rows[0])
        if arity == 0:
            # zip(*) of nullary rows is empty; keep that identity
            return frozenset()
        flat = self.decode_column(itertools.chain.from_iterable(rows))
        return frozenset(zip(*(flat[i::arity] for i in range(arity))))

    # -- snapshots -----------------------------------------------------

    def freeze(self) -> None:
        """Make the table read-only: lookups keep working, interning a
        *new* value raises.  Workers freeze their snapshot so a
        mixed-up code space fails loudly instead of silently."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        """True when the table refuses to grow."""
        return self._frozen

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator:
        """The interned values, in code order."""
        return iter(self._values)

    def __contains__(self, value) -> bool:
        return value in self._codes

    def __getstate__(self) -> dict:
        """Pickle as the value list (codes are list positions)."""
        return {"values": self._values, "frozen": self._frozen}

    def __setstate__(self, state: dict) -> None:
        self._values = state["values"]
        self._codes = {value: code
                       for code, value in enumerate(self._values)}
        self._frozen = state["frozen"]
        self.token = next(_TOKENS)

    def __repr__(self) -> str:
        state = "frozen, " if self._frozen else ""
        return f"SymbolTable({state}{len(self._values)} symbols)"
