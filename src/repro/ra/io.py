"""Loading and saving fact stores (TSV per relation, directory per DB).

A database maps to a directory with one tab-separated file per
relation (``A.tsv`` holding one row per line).  Values are stored as
text; integers and floats are recovered on load.  This keeps EDBs
diffable and editable by hand — the right trade-off for a research
library.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

from ..datalog.errors import EvaluationError
from .database import Database

_SUFFIX = ".tsv"


def _render_value(value: object) -> str:
    text = str(value)
    if "\t" in text or "\n" in text:
        raise EvaluationError(
            f"values may not contain tabs or newlines: {text!r}")
    return text


def _parse_value(text: str) -> object:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def save_database(database: Database, directory: str | pathlib.Path
                  ) -> None:
    """Write every relation of *database* to ``directory/<name>.tsv``.

    Rows are written in sorted order, so repeated saves of equal
    databases produce identical files.
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    for name in database.relation_names:
        lines = ["\t".join(_render_value(v) for v in row)
                 for row in sorted(database.rows(name), key=repr)]
        (path / f"{name}{_SUFFIX}").write_text(
            "\n".join(lines) + ("\n" if lines else ""),
            encoding="utf-8")


def load_database(directory: str | pathlib.Path,
                  indexed: bool = True,
                  intern: bool = True) -> Database:
    """Read every ``*.tsv`` file of *directory* into a database.

    *intern* selects dictionary-encoded storage (the default) or the
    raw value-tuple path (``intern=False``); the file format is
    identical either way — encoding is purely in-memory.

    >>> import tempfile
    >>> db = Database.from_dict({"A": [("a", 1)]})
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     save_database(db, tmp)
    ...     again = load_database(tmp)
    >>> again.rows("A")
    frozenset({('a', 1)})
    """
    path = pathlib.Path(directory)
    if not path.is_dir():
        raise EvaluationError(f"not a directory: {path}")
    database = Database(indexed=indexed, intern=intern)
    for file_path in sorted(path.glob(f"*{_SUFFIX}")):
        name = file_path.stem
        for line in file_path.read_text(encoding="utf-8").splitlines():
            if not line:
                continue
            database.add(name, tuple(_parse_value(v)
                                     for v in line.split("\t")))
    return database


def load_relation(path: str | pathlib.Path) -> list[tuple]:
    """Read a single TSV file into a row list (without a database)."""
    file_path = pathlib.Path(path)
    rows: list[tuple] = []
    for line in file_path.read_text(encoding="utf-8").splitlines():
        if line:
            rows.append(tuple(_parse_value(v) for v in line.split("\t")))
    return rows


def save_relation(rows: Iterable[tuple], path: str | pathlib.Path
                  ) -> None:
    """Write a row collection as one TSV file."""
    lines = ["\t".join(_render_value(v) for v in row)
             for row in sorted(rows, key=repr)]
    pathlib.Path(path).write_text(
        "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
