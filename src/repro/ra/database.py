"""The extensional database: named fact relations with hash indexes.

A :class:`Database` stores the EDB (and, during bottom-up evaluation,
the IDB) as mutable sets of tuples keyed by predicate name, with
per-position hash indexes built lazily and invalidated on insertion —
the access-path layer every engine shares.

Storage is *dictionary encoded* by default: a shared
:class:`~repro.ra.symbols.SymbolTable` interns every constant to a
dense non-negative int on the way in, rows are stored as int tuples,
and decoding happens exactly once at the answer boundary.  Two layers
of API coexist:

* the **value-space** methods (:meth:`add`, :meth:`bulk`,
  :meth:`rows`, :meth:`match`, …) keep their historical semantics —
  values in, values out — so users, tests and the I/O layer never see
  a code;
* the **storage-space** methods (:meth:`add_encoded`,
  :meth:`rows_encoded`, :meth:`match_encoded`, :meth:`hash_table`,
  :meth:`dense_table`) speak int tuples and are what the engines run
  on.  With ``intern=False`` the two layers coincide and every code
  path is the verbatim pre-encoding one.

Two kinds of access path coexist:

* per-position indexes (``_index``) backing tuple-at-a-time
  :meth:`match_encoded` probes;
* multi-column hash tables (:meth:`hash_table`) backing the
  set-at-a-time join plans of :mod:`repro.engine.setjoin`, keyed by an
  arbitrary column combination and invalidated by a per-relation
  version counter — plus, under interning, :meth:`dense_table`:
  single-column tables stored as plain lists indexed by key *code*,
  the array access path dictionary encoding exists to enable.

Bulk loads bump the version once per call instead of once per row, so
a 10k-row load invalidates each derived structure a single time.
Removals (:meth:`remove`, :meth:`bulk_remove`) go through the same
version discipline, so cached hash tables never serve deleted rows.

Databases pickle as *snapshots*: rows, arities, version counters and
the symbol table cross the wire — lazily built indexes and hash tables
are dropped and rebuilt on first use in the receiving process.  This
is the serialization boundary the sharded engine's worker pool relies
on: the symbol table ships once per pool warm-up, after which every
delta shard is pure int tuples (each worker freezes its snapshot's
table, so a code-space mix-up fails loudly).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Mapping

from ..datalog.atoms import Atom
from ..datalog.errors import EvaluationError, RuleValidationError
from ..datalog.program import Program
from ..datalog.terms import Constant
from .relation import Relation
from .symbols import SymbolTable

#: A match pattern: one entry per position, None meaning "any value".
Pattern = tuple

#: Sentinel for "pattern constant was never interned" (matches nothing).
_UNSEEN = object()


class Database:
    """Mutable fact store keyed by predicate name.

    >>> db = Database()
    >>> db.add("A", ("a", "b"))
    True
    >>> db.add("A", ("a", "b"))   # duplicates are ignored
    False
    >>> sorted(db.match("A", ("a", None)))
    [('a', 'b')]
    """

    def __init__(self, indexed: bool = True,
                 intern: bool = True) -> None:
        self._relations: dict[str, set[tuple]] = {}
        self._arities: dict[str, int] = {}
        self._indexes: dict[tuple[str, int], dict[object, set[tuple]]] = {}
        #: per-relation mutation counters; derived structures snapshot
        #: the counter at build time and are stale when it moved on
        self._versions: dict[str, int] = {}
        #: multi-column hash tables for the set-at-a-time join kernel,
        #: keyed by (relation, key-columns) → (version, key → row list)
        self._hash_tables: dict[tuple[str, tuple[int, ...]],
                                tuple[int, dict]] = {}
        #: dense (list-indexed) single-column tables, interned mode
        #: only, keyed by (relation, column) → (version, list)
        self._dense_tables: dict[tuple[str, int],
                                 tuple[int, list]] = {}
        #: single-column projections of dense tables for the fused
        #: columnar probe, keyed by (relation, key-col, value-col) →
        #: (version, list); views over an already-counted build, so
        #: they do not move ``hash_builds``
        self._dense_columns: dict[tuple[str, int, int],
                                  tuple[int, list]] = {}
        #: CSR flattening of dense columns for the vectorised kernel,
        #: keyed like ``_dense_columns`` → (version, (values, offsets))
        #: flat ``array('q')`` pairs; derived views, no ``hash_builds``
        self._csr_columns: dict[tuple[str, int, int],
                                tuple[int, tuple]] = {}
        #: the constant dictionary; None runs the raw value-tuple path
        self._symbols: SymbolTable | None = (SymbolTable() if intern
                                             else None)
        #: >0 while inside :meth:`bulk`: index/version upkeep deferred
        self._bulk_depth = 0
        #: relations mutated while inside a bulk operation; each gets
        #: exactly one version bump when the outermost bulk ends
        self._bulk_dirty: set[str] = set()
        #: when False, `match` falls back to full scans (for ablations)
        self.indexed = indexed
        #: when True every mutation raises — the concurrent query
        #: service marks each published MVCC snapshot read-only, so a
        #: reader that would scribble on shared state fails loudly
        #: instead of corrupting other requests.  :meth:`copy` hands
        #: back a *writable* database (engines copy-then-materialise),
        #: which is exactly the per-request snapshot discipline.
        self.read_only = False
        #: rows examined while matching (indexes make this ≈ answers)
        self.touches = 0
        #: lazy per-position index (re)builds — regressions in bulk
        #: loading show up here as a rebuild count ≈ row count
        self.index_rebuilds = 0
        #: hash tables built for the set-at-a-time join kernel
        #: (dense tables count here too — same build, different shape)
        self.hash_builds = 0

    # -- encoding boundary ----------------------------------------------

    @property
    def symbols(self) -> SymbolTable | None:
        """The shared constant dictionary (None with ``intern=False``)."""
        return self._symbols

    @property
    def interned(self) -> bool:
        """True when rows are stored dictionary-encoded."""
        return self._symbols is not None

    @property
    def symbols_token(self) -> int:
        """Process-unique id of this database's code space (0 = raw).

        Caches keyed by encoded constants (the join-plan cache) include
        this so plans never leak codes across symbol tables.
        """
        return self._symbols.token if self._symbols is not None else 0

    def encode_const(self, value):
        """Storage representation of one constant (interns it)."""
        if self._symbols is None:
            return value
        return self._symbols.encode(value)

    def encode_row(self, row: tuple) -> tuple:
        """Storage representation of a value row (interns)."""
        if self._symbols is None:
            return tuple(row)
        return self._symbols.encode_row(row)

    def decode_row(self, row: tuple) -> tuple:
        """Value representation of a stored row."""
        if self._symbols is None:
            return tuple(row)
        return self._symbols.decode_row(row)

    def encode_pattern(self, pattern: Pattern) -> Pattern:
        """Encode a match pattern, preserving None wildcards
        (interning the constants — used for query patterns, so the
        evaluation machinery runs identically whether or not the
        constant can match anything)."""
        if self._symbols is None:
            return tuple(pattern)
        encode = self._symbols.encode
        return tuple(None if v is None else encode(v) for v in pattern)

    def decode_pattern(self, pattern: Pattern) -> Pattern:
        """Decode a storage-space pattern, preserving None wildcards."""
        if self._symbols is None:
            return tuple(pattern)
        decode = self._symbols.decode
        return tuple(None if v is None else decode(v) for v in pattern)

    def _lookup_pattern(self, pattern: Pattern) -> Pattern | None:
        """Encode a pattern without interning; None when a constant
        was never seen (such a pattern cannot match any stored row)."""
        lookup = self._symbols.lookup
        out = []
        for value in pattern:
            if value is None:
                out.append(None)
            else:
                code = lookup(value)
                if code is None:
                    return None
                out.append(code)
        return tuple(out)

    def freeze_symbols(self) -> None:
        """Freeze the symbol table (worker-side snapshot discipline)."""
        if self._symbols is not None:
            self._symbols.freeze()

    def decoded(self) -> "Database":
        """A raw (``intern=False``) copy holding decoded value rows —
        for cold paths that want to work in value space wholesale
        (provenance reconstruction).  Returns *self* when already raw."""
        if self._symbols is None:
            return self
        db = Database(indexed=self.indexed, intern=False)
        decode_rows = self._symbols.decode_rows
        for name, rows in self._relations.items():
            # column-wise, one lookup per distinct code — a full-EDB
            # dump is exactly the shape where per-row decode_row loops
            # pay |rows| × arity dict hits for |domain| distinct values
            db._relations[name] = set(decode_rows(rows))
            db._arities[name] = self._arities[name]
        db._versions = dict(self._versions)
        return db

    # -- construction --------------------------------------------------

    @classmethod
    def from_atoms(cls, facts: Iterable[Atom],
                   intern: bool = True) -> "Database":
        """Build a database from ground atoms.

        A fact with a variable argument is rejected rather than
        silently truncated to its constant positions.
        """
        db = cls(intern=intern)
        for fact in facts:
            values = []
            for term in fact.args:
                if not isinstance(term, Constant):
                    raise RuleValidationError(
                        f"fact {fact} is not ground: {term} is not a "
                        f"constant")
                values.append(term.value)
            db.add(fact.predicate, tuple(values))
        return db

    @classmethod
    def from_program(cls, program: Program,
                     intern: bool = True) -> "Database":
        """Build a database from a program's fact section."""
        return cls.from_atoms(program.facts, intern=intern)

    @classmethod
    def from_dict(cls, relations: Mapping[str, Iterable[tuple]],
                  intern: bool = True) -> "Database":
        """Build a database from ``{"A": [("a", "b"), ...]}``."""
        db = cls(intern=intern)
        for name, rows in relations.items():
            db.bulk(name, rows)
        return db

    def copy(self) -> "Database":
        """An independent copy (indexes are rebuilt lazily).

        The symbol table is *shared*, not copied: it is append-only,
        so rows encoded by the copy stay decodable by the original and
        vice versa — which is what lets a fixpoint engine copy the EDB
        and still hand back rows the session can decode.

        Cached join tables (hash and dense) carry over too: an entry
        is an immutable ``(version, table)`` pair that is replaced, not
        mutated, on rebuild, so a copy that later mutates a relation
        simply bumps its own version and rebuilds into its own cache —
        while the common fixpoint discipline (engine copies the EDB,
        reads it, throws the copy away) pays each table build once per
        EDB version instead of once per evaluation.  Per-position match
        indexes are *not* shared: those are updated in place.
        """
        db = Database(indexed=self.indexed, intern=False)
        db._symbols = self._symbols
        for name, rows in self._relations.items():
            db._relations[name] = set(rows)
            db._arities[name] = self._arities[name]
        db._versions = dict(self._versions)
        db._hash_tables = dict(self._hash_tables)
        db._dense_tables = dict(self._dense_tables)
        db._dense_columns = dict(self._dense_columns)
        db._csr_columns = dict(self._csr_columns)
        return db

    # -- mutation -------------------------------------------------------

    def _check_arity(self, name: str, row: tuple) -> None:
        known = self._arities.get(name)
        if known is None:
            self._arities[name] = len(row)
        elif known != len(row):
            raise EvaluationError(
                f"arity mismatch for {name!r}: expected {known}, "
                f"got {len(row)} in {row}")

    def add(self, name: str, row: tuple) -> bool:
        """Insert one value row; returns True when it was new."""
        row = tuple(row)
        if self._symbols is not None:
            row = self._symbols.encode_row(row)
        return self.add_encoded(name, row)

    def _check_writable(self) -> None:
        if self.read_only:
            raise EvaluationError(
                "database is a read-only snapshot; writes go through "
                "the epoch manager (which publishes a new snapshot), "
                "never through a reader")

    def add_encoded(self, name: str, row: tuple) -> bool:
        """Insert one storage-space row (engine path — no encoding)."""
        self._check_writable()
        row = tuple(row)
        self._check_arity(name, row)
        rows = self._relations.setdefault(name, set())
        if row in rows:
            return False
        rows.add(row)
        if self._bulk_depth:
            self._bulk_dirty.add(name)  # one bump when the bulk ends
            return True
        self._versions[name] = self._versions.get(name, 0) + 1
        for (indexed_name, position), index in self._indexes.items():
            if indexed_name == name:
                index.setdefault(row[position], set()).add(row)
        return True

    def remove(self, name: str, row: tuple) -> bool:
        """Delete one value row; returns True when it was present.

        Removal moves the version counter exactly like insertion, so
        cached hash tables and per-position indexes never serve a
        deleted row.

        >>> db = Database.from_dict({"A": [("a", "b")]})
        >>> db.remove("A", ("a", "b")), db.remove("A", ("a", "b"))
        (True, False)
        """
        row = tuple(row)
        if self._symbols is not None:
            encoded = self._lookup_pattern(row)
            if encoded is None:
                return False  # a never-seen constant is in no row
            row = encoded
        return self.remove_encoded(name, row)

    def remove_encoded(self, name: str, row: tuple) -> bool:
        """Delete one storage-space row; True when it was present."""
        self._check_writable()
        row = tuple(row)
        rows = self._relations.get(name)
        if rows is None or row not in rows:
            return False
        rows.remove(row)
        if self._bulk_depth:
            self._bulk_dirty.add(name)
            return True
        self._versions[name] = self._versions.get(name, 0) + 1
        for (indexed_name, position), index in self._indexes.items():
            if indexed_name == name:
                bucket = index.get(row[position])
                if bucket is not None:
                    bucket.discard(row)
        return True

    def bulk(self, name: str, rows: Iterable[tuple]) -> int:
        """Insert many value rows; returns the number actually new.

        Index and version upkeep is batched: one version bump and one
        index invalidation per mutated relation when the outermost
        bulk operation ends, however many rows arrive, instead of
        per-row maintenance in :meth:`add`.
        """
        added = 0
        self._bulk_depth += 1
        try:
            for row in rows:
                added += self.add(name, row)
        finally:
            self._bulk_depth -= 1
            if not self._bulk_depth:
                self._flush_bulk()
        return added

    def bulk_encoded(self, name: str, rows: Iterable[tuple]) -> int:
        """Insert many storage-space rows; number actually new."""
        added = 0
        self._bulk_depth += 1
        try:
            for row in rows:
                added += self.add_encoded(name, row)
        finally:
            self._bulk_depth -= 1
            if not self._bulk_depth:
                self._flush_bulk()
        return added

    def bulk_remove(self, name: str, rows: Iterable[tuple]) -> int:
        """Delete many value rows; returns the number actually removed.

        The batched-invalidation discipline of :meth:`bulk` applies:
        one version bump per mutated relation at the end of the
        outermost bulk operation.
        """
        removed = 0
        self._bulk_depth += 1
        try:
            for row in rows:
                removed += self.remove(name, row)
        finally:
            self._bulk_depth -= 1
            if not self._bulk_depth:
                self._flush_bulk()
        return removed

    def _flush_bulk(self) -> None:
        """Apply the deferred invalidation for every dirty relation.

        Tracking dirtiness per relation (rather than a per-call "did I
        add anything" flag) makes nested bulk operations and mixed
        add/remove batches invalidate correctly: every relation that
        changed gets its bump, and only those.
        """
        for name in self._bulk_dirty:
            self._versions[name] = self._versions.get(name, 0) + 1
            for key in [k for k in self._indexes if k[0] == name]:
                del self._indexes[key]
        self._bulk_dirty.clear()

    def version(self, name: str) -> int:
        """Mutation counter of the relation (0 when never touched)."""
        return self._versions.get(name, 0)

    def global_version(self) -> int:
        """Sum of all relation versions: a monotonic mutation epoch.

        Any insert/remove (bulk or not) strictly increases it, which is
        what the session's answer cache keys on.
        """
        return sum(self._versions.values())

    def declare(self, name: str, arity: int) -> None:
        """Register an (initially empty) relation with known arity."""
        self._check_writable()
        self._check_arity(name, (None,) * arity)
        self._relations.setdefault(name, set())

    # -- access ----------------------------------------------------------

    @property
    def relation_names(self) -> tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(sorted(self._relations))

    def rows(self, name: str) -> frozenset[tuple]:
        """All value rows of a relation (empty when unknown — an absent
        EDB relation is an empty one, as in any Datalog engine)."""
        stored = self._relations.get(name, ())
        if self._symbols is None:
            return frozenset(stored)
        return self._symbols.decode_rows(stored)

    def rows_encoded(self, name: str) -> frozenset[tuple]:
        """All storage-space rows of a relation (engine path)."""
        return frozenset(self._relations.get(name, ()))

    def count(self, name: str) -> int:
        """Number of rows in the relation."""
        return len(self._relations.get(name, ()))

    def arity(self, name: str) -> int | None:
        """Known arity of the relation, None when never seen."""
        return self._arities.get(name)

    def total_facts(self) -> int:
        """Number of rows across all relations."""
        return sum(len(rows) for rows in self._relations.values())

    def _index(self, name: str, position: int) -> dict[object, set[tuple]]:
        key = (name, position)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for row in self._relations.get(name, ()):
                index.setdefault(row[position], set()).add(row)
            self._indexes[key] = index
            self.index_rebuilds += 1
        return index

    def hash_table(self, name: str, key_positions: tuple[int, ...]
                   ) -> dict:
        """The rows of *name* hashed by the *key_positions* columns.

        The table maps key → list of full rows; a single-column key is
        stored unwrapped (``row[p]``), a multi-column key as a tuple,
        and the empty key groups every row under ``()``.  Keys and rows
        are storage-space (codes under interning).  Tables are cached
        against the relation's version counter, so a semi-naive
        fixpoint builds each (relation, key) table exactly once however
        many rounds it runs.
        """
        cache_key = (name, key_positions)
        version = self._versions.get(name, 0)
        entry = self._hash_tables.get(cache_key)
        if entry is not None and entry[0] == version:
            return entry[1]
        table: dict = {}
        rows = self._relations.get(name, ())
        if not key_positions:
            table[()] = list(rows)
        elif len(key_positions) == 1:
            position = key_positions[0]
            for row in rows:
                table.setdefault(row[position], []).append(row)
        else:
            for row in rows:
                table.setdefault(
                    tuple(row[p] for p in key_positions), []).append(row)
        self._hash_tables[cache_key] = (version, table)
        self.hash_builds += 1
        return table

    def dense_table(self, name: str, position: int) -> list | None:
        """The rows of *name* grouped by the code at *position*, as a
        plain list indexed by that code — the array-structured access
        path dense interning makes possible.  ``table[code]`` is the
        row bucket; codes carried by no stored row share one empty
        tuple, so a probing kernel can iterate every bucket without a
        miss branch.  An out-of-range code means "no rows" (new codes
        can be interned after the build; they cannot appear in any
        stored row of this version).

        Every bucket — empty or populated — is a *tuple*: one uniform
        immutable type, so downstream consumers (the fused probe, the
        CSR flattener) never special-case on bucket type and can never
        scribble on a cached view.

        Returns None when the database is not interned (callers fall
        back to :meth:`hash_table`).  Cached and invalidated exactly
        like hash tables, and counted in the same ``hash_builds``.
        """
        if self._symbols is None:
            return None
        cache_key = (name, position)
        version = self._versions.get(name, 0)
        entry = self._dense_tables.get(cache_key)
        if entry is not None and entry[0] == version:
            return entry[1]
        table: list = [()] * len(self._symbols)
        for row in self._relations.get(name, ()):
            code = row[position]
            bucket = table[code]
            if bucket:
                bucket.append(row)
            else:
                table[code] = [row]
        for code, bucket in enumerate(table):
            if bucket:
                table[code] = tuple(bucket)  # freeze: uniform buckets
        self._dense_tables[cache_key] = (version, table)
        self.hash_builds += 1
        return table

    def dense_column(self, name: str, key_position: int,
                     value_position: int) -> list | None:
        """A columnar view of :meth:`dense_table`: ``view[code]`` holds
        only the *value_position* column of the rows whose
        *key_position* column is ``code``.

        This is the emit shape of the fused final probe
        (:mod:`repro.engine.setjoin`): when the join's last step binds
        exactly one output column, probing this view hands that column
        back directly — no per-emitted-row ``row[position]`` indexing,
        no intermediate full-row tuples.  Buckets are uniformly tuples
        (empty buckets share one ``()``), mirroring
        :meth:`dense_table`.  The view is derived from the (already
        cached, already counted) dense table, so ``hash_builds``
        accounting is identical whether a fixpoint probes row buckets
        or column buckets.  Returns None when not interned.
        """
        if self._symbols is None:
            return None
        cache_key = (name, key_position, value_position)
        version = self._versions.get(name, 0)
        entry = self._dense_columns.get(cache_key)
        if entry is not None and entry[0] == version:
            return entry[1]
        dense = self.dense_table(name, key_position)
        if dense is None:
            return None
        view = [()] * len(dense)
        for code, bucket in enumerate(dense):
            if bucket:
                view[code] = tuple(row[value_position]
                                   for row in bucket)
        self._dense_columns[cache_key] = (version, view)
        return view

    def dense_column_csr(self, name: str, key_position: int,
                         value_position: int) -> tuple | None:
        """The CSR flattening of :meth:`dense_column`: a
        ``(values, offsets)`` pair of flat ``array('q')`` int vectors
        where bucket *code* is ``values[offsets[code]:offsets[code+1]]``
        (``len(offsets)`` is bucket count + 1).

        This is the zero-object access path of the vectorised kernel
        (:mod:`repro.engine.vector`): both arrays expose the buffer
        protocol, so a numpy backend wraps them without copying and a
        pure-python backend slices them without building per-bucket
        tuples.  An out-of-range code means "no rows", exactly as for
        the list views.  Derived from the already-counted dense-column
        view — fetching it never moves ``hash_builds`` beyond what the
        row path pays.  Returns None when not interned.
        """
        if self._symbols is None:
            return None
        cache_key = (name, key_position, value_position)
        version = self._versions.get(name, 0)
        entry = self._csr_columns.get(cache_key)
        if entry is not None and entry[0] == version:
            return entry[1]
        view = self.dense_column(name, key_position, value_position)
        if view is None:
            return None
        values = array("q")
        offsets = array("q", [0])
        total = 0
        for bucket in view:
            if bucket:
                values.extend(bucket)
                total += len(bucket)
            offsets.append(total)
        csr = (values, offsets)
        self._csr_columns[cache_key] = (version, csr)
        return csr

    def match(self, name: str, pattern: Pattern) -> Iterator[tuple]:
        """All value rows matching *pattern* (None entries match any).

        Uses a hash index on the first bound position, then filters the
        remaining bound positions.
        """
        if self._symbols is None:
            yield from self.match_encoded(name, pattern)
            return
        encoded = self._lookup_pattern(pattern)
        if encoded is None:
            return  # a never-interned constant matches no stored row
        decode = self._symbols.decode_row
        for row in self.match_encoded(name, encoded):
            yield decode(row)

    def match_encoded(self, name: str,
                      pattern: Pattern) -> Iterator[tuple]:
        """All storage-space rows matching a storage-space *pattern*."""
        bound = [(i, v) for i, v in enumerate(pattern) if v is not None]
        if not bound:
            rows = self._relations.get(name, ())
            self.touches += len(rows)
            yield from rows
            return
        if self.indexed:
            first_position, first_value = bound[0]
            candidates = self._index(name, first_position).get(
                first_value, ())
            rest = bound[1:]
        else:
            candidates = self._relations.get(name, ())
            rest = bound
        for row in candidates:
            self.touches += 1
            if all(row[i] == v for i, v in rest):
                yield row

    def has_match(self, name: str, pattern: Pattern) -> bool:
        """True when at least one value row matches *pattern*."""
        return next(self.match(name, pattern), None) is not None

    def relation(self, name: str,
                 columns: Iterable[str] | None = None) -> Relation:
        """A :class:`Relation` view of the stored rows (value space)."""
        if columns is None:
            arity = self._arities.get(name, 0)
            columns = tuple(f"c{i}" for i in range(arity))
        return Relation(columns, self.rows(name))

    def metrics_snapshot(self) -> dict:
        """Point-in-time state for the telemetry layer's gauges.

        Plain data, no metrics dependency — the registry side lives in
        :func:`repro.metrics.instrument.export_database_gauges`, which
        calls this at scrape time (``GET /metrics``), keeping the
        query path free of any sampling cost.

        ``symbols`` is the interned-constant count (0 when raw);
        ``encoded_bytes_estimate`` approximates the storage footprint:
        8 bytes per stored tuple slot plus, under interning, the
        dictionary's payload (each distinct value once) — the point of
        the gauge is watching the dictionary grow, not byte-exact
        accounting.
        """
        slots = sum(len(rows) * self._arities.get(name, 0)
                    for name, rows in self._relations.items())
        payload = (sum(len(str(value)) + 49 for value in self._symbols)
                   if self._symbols is not None else 0)
        return {
            "relations": {
                name: {"rows": len(rows),
                       "version": self._versions.get(name, 0)}
                for name, rows in sorted(self._relations.items())},
            "cached_hash_tables": (len(self._hash_tables)
                                   + len(self._dense_tables)),
            "index_rebuilds": self.index_rebuilds,
            "hash_builds": self.hash_builds,
            "touches": self.touches,
            "symbols": (len(self._symbols)
                        if self._symbols is not None else 0),
            "encoded_bytes_estimate": slots * 8 + payload,
        }

    def active_domain(self) -> frozenset:
        """Every constant appearing anywhere in the database."""
        values: set = set()
        for rows in self._relations.values():
            for row in rows:
                values.update(row)
        if self._symbols is None:
            return frozenset(values)
        decode = self._symbols.decode
        return frozenset(decode(code) for code in values)

    # -- snapshots --------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle as a snapshot: rows, arities, versions and the
        symbol table.

        Derived structures (per-position indexes, hash tables) are
        process-local caches — they are dropped at the serialization
        boundary and rebuilt lazily on first use in the receiver,
        where the versioned cache makes each rebuild a one-time cost.
        Under interning the rows are int tuples and the dictionary
        crosses the wire exactly once, which is why a sharded
        snapshot's pickle shrinks relative to raw string tuples.
        """
        return {
            "relations": {name: set(rows)
                          for name, rows in self._relations.items()},
            "arities": dict(self._arities),
            "versions": dict(self._versions),
            "indexed": self.indexed,
            "symbols": self._symbols,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(indexed=state["indexed"], intern=False)
        self._symbols = state.get("symbols")
        self._relations = state["relations"]
        self._arities = state["arities"]
        self._versions = state["versions"]

    def __contains__(self, name_row: tuple[str, tuple]) -> bool:
        name, row = name_row
        row = tuple(row)
        if self._symbols is not None:
            encoded = self._lookup_pattern(row)
            if encoded is None:
                return False
            row = encoded
        return row in self._relations.get(name, ())

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}:{len(rows)}"
                          for name, rows in sorted(self._relations.items()))
        return f"Database({parts})"
