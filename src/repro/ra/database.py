"""The extensional database: named fact relations with hash indexes.

A :class:`Database` stores the EDB (and, during bottom-up evaluation,
the IDB) as mutable sets of tuples keyed by predicate name, with
per-position hash indexes built lazily and invalidated on insertion —
the access-path layer every engine shares.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..datalog.atoms import Atom
from ..datalog.errors import EvaluationError
from ..datalog.program import Program
from ..datalog.terms import Constant
from .relation import Relation

#: A match pattern: one entry per position, None meaning "any value".
Pattern = tuple


class Database:
    """Mutable fact store keyed by predicate name.

    >>> db = Database()
    >>> db.add("A", ("a", "b"))
    True
    >>> db.add("A", ("a", "b"))   # duplicates are ignored
    False
    >>> sorted(db.match("A", ("a", None)))
    [('a', 'b')]
    """

    def __init__(self, indexed: bool = True) -> None:
        self._relations: dict[str, set[tuple]] = {}
        self._arities: dict[str, int] = {}
        self._indexes: dict[tuple[str, int], dict[object, set[tuple]]] = {}
        #: when False, `match` falls back to full scans (for ablations)
        self.indexed = indexed
        #: rows examined while matching (indexes make this ≈ answers)
        self.touches = 0

    # -- construction --------------------------------------------------

    @classmethod
    def from_atoms(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        db = cls()
        for fact in facts:
            db.add(fact.predicate,
                   tuple(term.value for term in fact.args
                         if isinstance(term, Constant)))
        return db

    @classmethod
    def from_program(cls, program: Program) -> "Database":
        """Build a database from a program's fact section."""
        return cls.from_atoms(program.facts)

    @classmethod
    def from_dict(cls, relations: Mapping[str, Iterable[tuple]]
                  ) -> "Database":
        """Build a database from ``{"A": [("a", "b"), ...]}``."""
        db = cls()
        for name, rows in relations.items():
            db.bulk(name, rows)
        return db

    def copy(self) -> "Database":
        """An independent copy (indexes are rebuilt lazily)."""
        db = Database(indexed=self.indexed)
        for name, rows in self._relations.items():
            db._relations[name] = set(rows)
            db._arities[name] = self._arities[name]
        return db

    # -- mutation -------------------------------------------------------

    def _check_arity(self, name: str, row: tuple) -> None:
        known = self._arities.get(name)
        if known is None:
            self._arities[name] = len(row)
        elif known != len(row):
            raise EvaluationError(
                f"arity mismatch for {name!r}: expected {known}, "
                f"got {len(row)} in {row}")

    def add(self, name: str, row: tuple) -> bool:
        """Insert one row; returns True when it was new."""
        row = tuple(row)
        self._check_arity(name, row)
        rows = self._relations.setdefault(name, set())
        if row in rows:
            return False
        rows.add(row)
        for (indexed_name, position), index in self._indexes.items():
            if indexed_name == name:
                index.setdefault(row[position], set()).add(row)
        return True

    def bulk(self, name: str, rows: Iterable[tuple]) -> int:
        """Insert many rows; returns the number actually new."""
        added = 0
        for row in rows:
            added += self.add(name, row)
        return added

    def declare(self, name: str, arity: int) -> None:
        """Register an (initially empty) relation with known arity."""
        self._check_arity(name, (None,) * arity)
        self._relations.setdefault(name, set())

    # -- access ----------------------------------------------------------

    @property
    def relation_names(self) -> tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(sorted(self._relations))

    def rows(self, name: str) -> frozenset[tuple]:
        """All rows of a relation (empty when unknown — an absent EDB
        relation is an empty one, as in any Datalog engine)."""
        return frozenset(self._relations.get(name, ()))

    def count(self, name: str) -> int:
        """Number of rows in the relation."""
        return len(self._relations.get(name, ()))

    def arity(self, name: str) -> int | None:
        """Known arity of the relation, None when never seen."""
        return self._arities.get(name)

    def total_facts(self) -> int:
        """Number of rows across all relations."""
        return sum(len(rows) for rows in self._relations.values())

    def _index(self, name: str, position: int) -> dict[object, set[tuple]]:
        key = (name, position)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for row in self._relations.get(name, ()):
                index.setdefault(row[position], set()).add(row)
            self._indexes[key] = index
        return index

    def match(self, name: str, pattern: Pattern) -> Iterator[tuple]:
        """All rows matching *pattern* (None entries are wildcards).

        Uses a hash index on the first bound position, then filters the
        remaining bound positions.
        """
        bound = [(i, v) for i, v in enumerate(pattern) if v is not None]
        if not bound:
            rows = self._relations.get(name, ())
            self.touches += len(rows)
            yield from rows
            return
        if self.indexed:
            first_position, first_value = bound[0]
            candidates = self._index(name, first_position).get(
                first_value, ())
            rest = bound[1:]
        else:
            candidates = self._relations.get(name, ())
            rest = bound
        for row in candidates:
            self.touches += 1
            if all(row[i] == v for i, v in rest):
                yield row

    def has_match(self, name: str, pattern: Pattern) -> bool:
        """True when at least one row matches *pattern*."""
        return next(self.match(name, pattern), None) is not None

    def relation(self, name: str,
                 columns: Iterable[str] | None = None) -> Relation:
        """A :class:`Relation` view of the stored rows."""
        rows = self._relations.get(name, set())
        if columns is None:
            arity = self._arities.get(name, 0)
            columns = tuple(f"c{i}" for i in range(arity))
        return Relation(columns, rows)

    def active_domain(self) -> frozenset:
        """Every constant appearing anywhere in the database."""
        values: set = set()
        for rows in self._relations.values():
            for row in rows:
                values.update(row)
        return frozenset(values)

    def __contains__(self, name_row: tuple[str, tuple]) -> bool:
        name, row = name_row
        return tuple(row) in self._relations.get(name, ())

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}:{len(rows)}"
                          for name, rows in sorted(self._relations.items()))
        return f"Database({parts})"
