"""The extensional database: named fact relations with hash indexes.

A :class:`Database` stores the EDB (and, during bottom-up evaluation,
the IDB) as mutable sets of tuples keyed by predicate name, with
per-position hash indexes built lazily and invalidated on insertion —
the access-path layer every engine shares.

Two kinds of access path coexist:

* per-position indexes (``_index``) backing tuple-at-a-time
  :meth:`match` probes;
* multi-column hash tables (:meth:`hash_table`) backing the
  set-at-a-time join plans of :mod:`repro.engine.setjoin`, keyed by an
  arbitrary column combination and invalidated by a per-relation
  version counter.

Bulk loads bump the version once per call instead of once per row, so
a 10k-row load invalidates each derived structure a single time.
Removals (:meth:`remove`, :meth:`bulk_remove`) go through the same
version discipline, so cached hash tables never serve deleted rows.

Databases pickle as *snapshots*: only the rows, arities and version
counters cross the wire — lazily built indexes and hash tables are
dropped and rebuilt on first use in the receiving process.  This is
the serialization boundary the sharded engine's worker pool relies on
(each worker re-derives its own hash tables once, then reuses them
across every round because the snapshot's versions never move).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..datalog.atoms import Atom
from ..datalog.errors import EvaluationError, RuleValidationError
from ..datalog.program import Program
from ..datalog.terms import Constant
from .relation import Relation

#: A match pattern: one entry per position, None meaning "any value".
Pattern = tuple


class Database:
    """Mutable fact store keyed by predicate name.

    >>> db = Database()
    >>> db.add("A", ("a", "b"))
    True
    >>> db.add("A", ("a", "b"))   # duplicates are ignored
    False
    >>> sorted(db.match("A", ("a", None)))
    [('a', 'b')]
    """

    def __init__(self, indexed: bool = True) -> None:
        self._relations: dict[str, set[tuple]] = {}
        self._arities: dict[str, int] = {}
        self._indexes: dict[tuple[str, int], dict[object, set[tuple]]] = {}
        #: per-relation mutation counters; derived structures snapshot
        #: the counter at build time and are stale when it moved on
        self._versions: dict[str, int] = {}
        #: multi-column hash tables for the set-at-a-time join kernel,
        #: keyed by (relation, key-columns) → (version, key → row list)
        self._hash_tables: dict[tuple[str, tuple[int, ...]],
                                tuple[int, dict]] = {}
        #: >0 while inside :meth:`bulk`: index/version upkeep deferred
        self._bulk_depth = 0
        #: relations mutated while inside a bulk operation; each gets
        #: exactly one version bump when the outermost bulk ends
        self._bulk_dirty: set[str] = set()
        #: when False, `match` falls back to full scans (for ablations)
        self.indexed = indexed
        #: rows examined while matching (indexes make this ≈ answers)
        self.touches = 0
        #: lazy per-position index (re)builds — regressions in bulk
        #: loading show up here as a rebuild count ≈ row count
        self.index_rebuilds = 0
        #: hash tables built for the set-at-a-time join kernel
        self.hash_builds = 0

    # -- construction --------------------------------------------------

    @classmethod
    def from_atoms(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms.

        A fact with a variable argument is rejected rather than
        silently truncated to its constant positions.
        """
        db = cls()
        for fact in facts:
            values = []
            for term in fact.args:
                if not isinstance(term, Constant):
                    raise RuleValidationError(
                        f"fact {fact} is not ground: {term} is not a "
                        f"constant")
                values.append(term.value)
            db.add(fact.predicate, tuple(values))
        return db

    @classmethod
    def from_program(cls, program: Program) -> "Database":
        """Build a database from a program's fact section."""
        return cls.from_atoms(program.facts)

    @classmethod
    def from_dict(cls, relations: Mapping[str, Iterable[tuple]]
                  ) -> "Database":
        """Build a database from ``{"A": [("a", "b"), ...]}``."""
        db = cls()
        for name, rows in relations.items():
            db.bulk(name, rows)
        return db

    def copy(self) -> "Database":
        """An independent copy (indexes are rebuilt lazily)."""
        db = Database(indexed=self.indexed)
        for name, rows in self._relations.items():
            db._relations[name] = set(rows)
            db._arities[name] = self._arities[name]
        return db

    # -- mutation -------------------------------------------------------

    def _check_arity(self, name: str, row: tuple) -> None:
        known = self._arities.get(name)
        if known is None:
            self._arities[name] = len(row)
        elif known != len(row):
            raise EvaluationError(
                f"arity mismatch for {name!r}: expected {known}, "
                f"got {len(row)} in {row}")

    def add(self, name: str, row: tuple) -> bool:
        """Insert one row; returns True when it was new."""
        row = tuple(row)
        self._check_arity(name, row)
        rows = self._relations.setdefault(name, set())
        if row in rows:
            return False
        rows.add(row)
        if self._bulk_depth:
            self._bulk_dirty.add(name)  # one bump when the bulk ends
            return True
        self._versions[name] = self._versions.get(name, 0) + 1
        for (indexed_name, position), index in self._indexes.items():
            if indexed_name == name:
                index.setdefault(row[position], set()).add(row)
        return True

    def remove(self, name: str, row: tuple) -> bool:
        """Delete one row; returns True when it was present.

        Removal moves the version counter exactly like insertion, so
        cached hash tables and per-position indexes never serve a
        deleted row.

        >>> db = Database.from_dict({"A": [("a", "b")]})
        >>> db.remove("A", ("a", "b")), db.remove("A", ("a", "b"))
        (True, False)
        """
        row = tuple(row)
        rows = self._relations.get(name)
        if rows is None or row not in rows:
            return False
        rows.remove(row)
        if self._bulk_depth:
            self._bulk_dirty.add(name)
            return True
        self._versions[name] = self._versions.get(name, 0) + 1
        for (indexed_name, position), index in self._indexes.items():
            if indexed_name == name:
                bucket = index.get(row[position])
                if bucket is not None:
                    bucket.discard(row)
        return True

    def bulk(self, name: str, rows: Iterable[tuple]) -> int:
        """Insert many rows; returns the number actually new.

        Index and version upkeep is batched: one version bump and one
        index invalidation per mutated relation when the outermost
        bulk operation ends, however many rows arrive, instead of
        per-row maintenance in :meth:`add`.
        """
        added = 0
        self._bulk_depth += 1
        try:
            for row in rows:
                added += self.add(name, row)
        finally:
            self._bulk_depth -= 1
            if not self._bulk_depth:
                self._flush_bulk()
        return added

    def bulk_remove(self, name: str, rows: Iterable[tuple]) -> int:
        """Delete many rows; returns the number actually removed.

        The batched-invalidation discipline of :meth:`bulk` applies:
        one version bump per mutated relation at the end of the
        outermost bulk operation.
        """
        removed = 0
        self._bulk_depth += 1
        try:
            for row in rows:
                removed += self.remove(name, row)
        finally:
            self._bulk_depth -= 1
            if not self._bulk_depth:
                self._flush_bulk()
        return removed

    def _flush_bulk(self) -> None:
        """Apply the deferred invalidation for every dirty relation.

        Tracking dirtiness per relation (rather than a per-call "did I
        add anything" flag) makes nested bulk operations and mixed
        add/remove batches invalidate correctly: every relation that
        changed gets its bump, and only those.
        """
        for name in self._bulk_dirty:
            self._versions[name] = self._versions.get(name, 0) + 1
            for key in [k for k in self._indexes if k[0] == name]:
                del self._indexes[key]
        self._bulk_dirty.clear()

    def version(self, name: str) -> int:
        """Mutation counter of the relation (0 when never touched)."""
        return self._versions.get(name, 0)

    def declare(self, name: str, arity: int) -> None:
        """Register an (initially empty) relation with known arity."""
        self._check_arity(name, (None,) * arity)
        self._relations.setdefault(name, set())

    # -- access ----------------------------------------------------------

    @property
    def relation_names(self) -> tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(sorted(self._relations))

    def rows(self, name: str) -> frozenset[tuple]:
        """All rows of a relation (empty when unknown — an absent EDB
        relation is an empty one, as in any Datalog engine)."""
        return frozenset(self._relations.get(name, ()))

    def count(self, name: str) -> int:
        """Number of rows in the relation."""
        return len(self._relations.get(name, ()))

    def arity(self, name: str) -> int | None:
        """Known arity of the relation, None when never seen."""
        return self._arities.get(name)

    def total_facts(self) -> int:
        """Number of rows across all relations."""
        return sum(len(rows) for rows in self._relations.values())

    def _index(self, name: str, position: int) -> dict[object, set[tuple]]:
        key = (name, position)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for row in self._relations.get(name, ()):
                index.setdefault(row[position], set()).add(row)
            self._indexes[key] = index
            self.index_rebuilds += 1
        return index

    def hash_table(self, name: str, key_positions: tuple[int, ...]
                   ) -> dict:
        """The rows of *name* hashed by the *key_positions* columns.

        The table maps key → list of full rows; a single-column key is
        stored unwrapped (``row[p]``), a multi-column key as a tuple,
        and the empty key groups every row under ``()``.  Tables are
        cached against the relation's version counter, so a semi-naive
        fixpoint builds each (relation, key) table exactly once however
        many rounds it runs.
        """
        cache_key = (name, key_positions)
        version = self._versions.get(name, 0)
        entry = self._hash_tables.get(cache_key)
        if entry is not None and entry[0] == version:
            return entry[1]
        table: dict = {}
        rows = self._relations.get(name, ())
        if not key_positions:
            table[()] = list(rows)
        elif len(key_positions) == 1:
            position = key_positions[0]
            for row in rows:
                table.setdefault(row[position], []).append(row)
        else:
            for row in rows:
                table.setdefault(
                    tuple(row[p] for p in key_positions), []).append(row)
        self._hash_tables[cache_key] = (version, table)
        self.hash_builds += 1
        return table

    def match(self, name: str, pattern: Pattern) -> Iterator[tuple]:
        """All rows matching *pattern* (None entries are wildcards).

        Uses a hash index on the first bound position, then filters the
        remaining bound positions.
        """
        bound = [(i, v) for i, v in enumerate(pattern) if v is not None]
        if not bound:
            rows = self._relations.get(name, ())
            self.touches += len(rows)
            yield from rows
            return
        if self.indexed:
            first_position, first_value = bound[0]
            candidates = self._index(name, first_position).get(
                first_value, ())
            rest = bound[1:]
        else:
            candidates = self._relations.get(name, ())
            rest = bound
        for row in candidates:
            self.touches += 1
            if all(row[i] == v for i, v in rest):
                yield row

    def has_match(self, name: str, pattern: Pattern) -> bool:
        """True when at least one row matches *pattern*."""
        return next(self.match(name, pattern), None) is not None

    def relation(self, name: str,
                 columns: Iterable[str] | None = None) -> Relation:
        """A :class:`Relation` view of the stored rows."""
        rows = self._relations.get(name, set())
        if columns is None:
            arity = self._arities.get(name, 0)
            columns = tuple(f"c{i}" for i in range(arity))
        return Relation(columns, rows)

    def metrics_snapshot(self) -> dict:
        """Point-in-time state for the telemetry layer's gauges.

        Plain data, no metrics dependency — the registry side lives in
        :func:`repro.metrics.instrument.export_database_gauges`, which
        calls this at scrape time (``GET /metrics``), keeping the
        query path free of any sampling cost.
        """
        return {
            "relations": {
                name: {"rows": len(rows),
                       "version": self._versions.get(name, 0)}
                for name, rows in sorted(self._relations.items())},
            "cached_hash_tables": len(self._hash_tables),
            "index_rebuilds": self.index_rebuilds,
            "hash_builds": self.hash_builds,
            "touches": self.touches,
        }

    def active_domain(self) -> frozenset:
        """Every constant appearing anywhere in the database."""
        values: set = set()
        for rows in self._relations.values():
            for row in rows:
                values.update(row)
        return frozenset(values)

    # -- snapshots --------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle as a snapshot: rows, arities and versions only.

        Derived structures (per-position indexes, hash tables) are
        process-local caches — they are dropped at the serialization
        boundary and rebuilt lazily on first use in the receiver,
        where the versioned cache makes each rebuild a one-time cost.
        """
        return {
            "relations": {name: set(rows)
                          for name, rows in self._relations.items()},
            "arities": dict(self._arities),
            "versions": dict(self._versions),
            "indexed": self.indexed,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(indexed=state["indexed"])
        self._relations = state["relations"]
        self._arities = state["arities"]
        self._versions = state["versions"]

    def __contains__(self, name_row: tuple[str, tuple]) -> bool:
        name, row = name_row
        return tuple(row) in self._relations.get(name, ())

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}:{len(rows)}"
                          for name, rows in sorted(self._relations.items()))
        return f"Database({parts})"
