"""Relational-algebra expression trees and their evaluator.

A small executable algebra over :class:`~repro.ra.relation.Relation`:
scans read named relations from a :class:`~repro.ra.database.Database`,
the operators mirror the Relation methods.  Used by the test suite's
algebraic-law checks and by examples that want to show a compiled
formula actually running as algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..datalog.errors import SchemaError
from .database import Database
from .relation import Relation

Expr = Union["Scan", "Literal", "Selection", "EqualColumns", "Extend",
             "Projection", "Renaming", "Join", "CartesianProduct",
             "UnionOp", "DifferenceOp", "Semijoin"]


@dataclass(frozen=True)
class Scan:
    """Read a stored relation under the given column names."""

    name: str
    columns: tuple[str, ...]


@dataclass(frozen=True)
class Literal:
    """An inline constant relation."""

    relation: Relation


@dataclass(frozen=True)
class Selection:
    """σ: equality selection on named columns."""

    child: Expr
    equalities: tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class EqualColumns:
    """σ with a column-to-column equality (for repeated variables)."""

    child: Expr
    left: str
    right: str


@dataclass(frozen=True)
class Extend:
    """Duplicate a column under a new name (for repeated head vars)."""

    child: Expr
    source: str
    new: str


@dataclass(frozen=True)
class Projection:
    """π: keep the named columns."""

    child: Expr
    columns: tuple[str, ...]


@dataclass(frozen=True)
class Renaming:
    """ρ: rename columns."""

    child: Expr
    mapping: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class Join:
    """⋈: natural join."""

    left: Expr
    right: Expr


@dataclass(frozen=True)
class CartesianProduct:
    """×: product of schema-disjoint operands."""

    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnionOp:
    """∪ of union-compatible operands."""

    left: Expr
    right: Expr


@dataclass(frozen=True)
class DifferenceOp:
    """− of union-compatible operands."""

    left: Expr
    right: Expr


@dataclass(frozen=True)
class Semijoin:
    """⋉: filter left by joinability with right."""

    left: Expr
    right: Expr


def evaluate(expr: Expr, database: Database) -> Relation:
    """Evaluate *expr* against *database*.

    >>> db = Database.from_dict({"A": [("a", "b"), ("b", "c")]})
    >>> result = evaluate(Selection(Scan("A", ("x", "y")),
    ...                             (("x", "a"),)), db)
    >>> sorted(result.rows)
    [('a', 'b')]
    """
    if isinstance(expr, Scan):
        stored = database.rows(expr.name)
        arity = database.arity(expr.name)
        if arity is not None and arity != len(expr.columns):
            raise SchemaError(
                f"scan of {expr.name!r} with {len(expr.columns)} columns "
                f"but stored arity is {arity}")
        return Relation(expr.columns, stored)
    if isinstance(expr, Literal):
        return expr.relation
    if isinstance(expr, Selection):
        return evaluate(expr.child, database).select(
            **dict(expr.equalities))
    if isinstance(expr, EqualColumns):
        child = evaluate(expr.child, database)
        left = child.column_index(expr.left)
        right = child.column_index(expr.right)
        return child.where(lambda row: row[left] == row[right])
    if isinstance(expr, Extend):
        child = evaluate(expr.child, database)
        source = child.column_index(expr.source)
        return Relation(child.columns + (expr.new,),
                        (row + (row[source],) for row in child.rows))
    if isinstance(expr, Projection):
        return evaluate(expr.child, database).project(expr.columns)
    if isinstance(expr, Renaming):
        return evaluate(expr.child, database).rename(dict(expr.mapping))
    if isinstance(expr, Join):
        return evaluate(expr.left, database).join(
            evaluate(expr.right, database))
    if isinstance(expr, CartesianProduct):
        return evaluate(expr.left, database).product(
            evaluate(expr.right, database))
    if isinstance(expr, UnionOp):
        return evaluate(expr.left, database).union(
            evaluate(expr.right, database))
    if isinstance(expr, DifferenceOp):
        return evaluate(expr.left, database).difference(
            evaluate(expr.right, database))
    if isinstance(expr, Semijoin):
        return evaluate(expr.left, database).semijoin(
            evaluate(expr.right, database))
    raise TypeError(f"not a relational-algebra expression: {expr!r}")


def scan(name: str, *columns: str) -> Scan:
    """Shorthand scan constructor."""
    return Scan(name, columns)


def select(child: Expr, **equalities: object) -> Selection:
    """Shorthand selection constructor."""
    return Selection(child, tuple(equalities.items()))
