"""A rewriting optimiser for relational-algebra expression trees.

Implements the textbook equivalences the paper's evaluation principle
("selections before joins") relies on, as source-to-source rewrites:

* σ over ⋈ / × — push each equality to the operand that owns the column;
* σ over ∪ — distribute;
* σ over ρ — rewrite the column name through the renaming;
* σ over π — select below the projection;
* σ over σ — merge equality lists;
* π over π — keep only the outer projection;
* identity ρ — drop.

:func:`optimize` applies the rewrites bottom-up to a fixpoint.  The
result is always equivalent (property-tested against the evaluator on
random databases); on the compiled-formula trees of
:mod:`repro.core.algebra` it moves the query-constant selections from
the top of each ∪k term down onto the scans.
"""

from __future__ import annotations

from .expr import (CartesianProduct, DifferenceOp, EqualColumns, Expr,
                   Extend, Join, Literal, Projection, Renaming, Scan,
                   Selection, Semijoin, UnionOp)


def output_columns(expr: Expr) -> tuple[str, ...]:
    """The statically-known output schema of *expr*."""
    if isinstance(expr, Scan):
        return expr.columns
    if isinstance(expr, Literal):
        return expr.relation.columns
    if isinstance(expr, (Selection, EqualColumns)):
        return output_columns(expr.child)
    if isinstance(expr, Extend):
        return output_columns(expr.child) + (expr.new,)
    if isinstance(expr, Projection):
        return expr.columns
    if isinstance(expr, Renaming):
        mapping = dict(expr.mapping)
        return tuple(mapping.get(c, c)
                     for c in output_columns(expr.child))
    if isinstance(expr, Join):
        left = output_columns(expr.left)
        right = output_columns(expr.right)
        return left + tuple(c for c in right if c not in left)
    if isinstance(expr, CartesianProduct):
        return output_columns(expr.left) + output_columns(expr.right)
    if isinstance(expr, (UnionOp, DifferenceOp)):
        return output_columns(expr.left)
    if isinstance(expr, Semijoin):
        return output_columns(expr.left)
    raise TypeError(f"not a relational-algebra expression: {expr!r}")


def _push_selection(expr: Selection) -> Expr:
    """One pushdown step for a selection node (or the node unchanged)."""
    child = expr.child
    equalities = expr.equalities
    if isinstance(child, Selection):
        return Selection(child.child, child.equalities + equalities)
    if isinstance(child, Renaming):
        inverse = {new: old for old, new in child.mapping}
        rewritten = tuple((inverse.get(col, col), value)
                          for col, value in equalities)
        return Renaming(Selection(child.child, rewritten),
                        child.mapping)
    if isinstance(child, Projection):
        return Projection(Selection(child.child, equalities),
                          child.columns)
    if isinstance(child, UnionOp):
        return UnionOp(Selection(child.left, equalities),
                       Selection(child.right, equalities))
    if isinstance(child, (Join, CartesianProduct)):
        left_cols = set(output_columns(child.left))
        right_cols = set(output_columns(child.right))
        to_left = tuple((c, v) for c, v in equalities
                        if c in left_cols)
        to_right = tuple((c, v) for c, v in equalities
                         if c in right_cols and c not in left_cols)
        stuck = tuple(e for e in equalities
                      if e not in to_left and e not in to_right)
        if not to_left and not to_right:
            return expr
        left = (Selection(child.left, to_left)
                if to_left else child.left)
        right = (Selection(child.right, to_right)
                 if to_right else child.right)
        rebuilt: Expr = type(child)(left, right)
        return Selection(rebuilt, stuck) if stuck else rebuilt
    if isinstance(child, Semijoin):
        return Semijoin(Selection(child.left, equalities), child.right)
    return expr


def _rewrite(expr: Expr) -> Expr:
    """Bottom-up single pass of all rewrites."""
    # First rebuild children.
    if isinstance(expr, Selection):
        expr = Selection(_rewrite(expr.child), expr.equalities)
    elif isinstance(expr, EqualColumns):
        expr = EqualColumns(_rewrite(expr.child), expr.left, expr.right)
    elif isinstance(expr, Extend):
        expr = Extend(_rewrite(expr.child), expr.source, expr.new)
    elif isinstance(expr, Projection):
        expr = Projection(_rewrite(expr.child), expr.columns)
    elif isinstance(expr, Renaming):
        expr = Renaming(_rewrite(expr.child), expr.mapping)
    elif isinstance(expr, (Join, CartesianProduct, UnionOp,
                           DifferenceOp, Semijoin)):
        expr = type(expr)(_rewrite(expr.left), _rewrite(expr.right))

    # Then rewrite this node.
    if isinstance(expr, Selection):
        if not expr.equalities:
            return expr.child
        return _push_selection(expr)
    if isinstance(expr, Projection) and isinstance(expr.child,
                                                   Projection):
        return Projection(expr.child.child, expr.columns)
    if isinstance(expr, Projection) and \
            expr.columns == output_columns(expr.child):
        return expr.child
    if isinstance(expr, Renaming):
        if all(old == new for old, new in expr.mapping):
            return expr.child
    return expr


def optimize(expr: Expr, max_passes: int = 25) -> Expr:
    """Apply the rewrites to a fixpoint (expressions are finite, each
    pushdown strictly lowers a selection, so this terminates)."""
    for _ in range(max_passes):
        rewritten = _rewrite(expr)
        if rewritten == expr:
            return expr
        expr = rewritten
    return expr


def count_nodes(expr: Expr) -> int:
    """Size of the expression tree (for optimisation-effect tests)."""
    if isinstance(expr, (Scan, Literal)):
        return 1
    if isinstance(expr, (Selection, EqualColumns, Extend, Projection,
                         Renaming)):
        return 1 + count_nodes(expr.child)
    return 1 + count_nodes(expr.left) + count_nodes(expr.right)


def selection_depths(expr: Expr, depth: int = 0) -> list[int]:
    """Depths of all Selection nodes (0 = root); lower is later."""
    if isinstance(expr, Selection):
        return [depth] + selection_depths(expr.child, depth + 1)
    if isinstance(expr, (EqualColumns, Extend, Projection, Renaming)):
        return selection_depths(expr.child, depth + 1)
    if isinstance(expr, (Scan, Literal)):
        return []
    return (selection_depths(expr.left, depth + 1)
            + selection_depths(expr.right, depth + 1))
