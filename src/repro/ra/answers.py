"""Columnar answer sets: encoded results that decode lazily.

PR 5 moved the whole evaluation pipeline into dense-int storage space
but paid the win back at the answer boundary: every engine eagerly
decoded its full result through :meth:`SymbolTable.decode_rows`, so a
100k-row enumeration rebuilt 100k value tuples the caller often never
looked at (the session answer cache, ``len(answers)``, bound-query
benches).  :class:`AnswerSet` is the fix — the boundary now hands back
the *encoded* rows plus the symbol table that gives them meaning, and
materialises values only when someone actually iterates, compares
against raw values, or renders JSON.

Representation
--------------
An :class:`AnswerSet` holds the answer relation twice over, each half
built lazily from the other side of the encoding boundary:

* ``encoded`` — the frozenset of storage-space (int-code) rows exactly
  as the fixpoint produced them; membership, length, equality between
  two results of the same code space, and hashing of the *encoded*
  side never decode anything;
* ``columns()`` — the same rows transposed into per-column flat code
  sequences (``array('q')``), the hand-off shape for a vectorised
  backend and for per-column decoding;

either side may come first: row-built sets (:meth:`__init__`)
transpose columns on demand, column-built sets
(:meth:`AnswerSet.from_columns`, the vectorised backend's boundary)
materialise the row frozenset on demand — so a fixpoint that ran on
flat vectors pays for row tuples only when set semantics are actually
exercised;
* the decoded side — built on first request by one flat
  :meth:`SymbolTable.decode_column` pass over the row-major codes
  (codes are dense, so the symbol list is itself the per-distinct-code
  dictionary and each occurrence costs one C-level index) followed by
  per-column stride slices zipped back to rows.  The materialisation
  is two-tier: iteration, sorting and rendering need only the decoded
  *list* (no hashing); the value-space ``frozenset`` the pre-columnar
  API returned is built on top of it only when set semantics are
  actually exercised (``==`` against a foreign set, ``hash``, set
  operators).  Both tiers are cached on the instance, so the session
  answer cache doubles as the decoded-column cache: entries are keyed
  by database epoch, and the symbol table is append-only, so a cached
  decode can never go stale.

Compatibility
-------------
The class registers as a :class:`collections.abc.Set`, so everything
the old ``frozenset[tuple]`` supported keeps working: iteration yields
decoded value rows, ``in`` takes value rows (encoded through a lookup
— an unseen constant is a guaranteed miss, decoded from nothing),
``==`` works in both directions against ``set``/``frozenset`` (their
``__eq__`` returns ``NotImplemented`` for a non-set, so Python falls
back to ours), set operators return plain frozensets, and ``hash``
agrees with the decoded frozenset.  ``intern=False`` databases never
produce an :class:`AnswerSet` — the raw path returns verbatim
frozensets, which is what the parity property tests compare against.
"""

from __future__ import annotations

from array import array
from collections.abc import Set
from itertools import chain
from time import perf_counter
from typing import Iterable, Iterator

from .symbols import SymbolTable

__all__ = ["AnswerSet"]


class AnswerSet(Set):
    """A lazily decoded, column-addressable answer relation.

    >>> table = SymbolTable()
    >>> rows = {table.encode_row(("a", "b")), table.encode_row(("a", "c"))}
    >>> answers = AnswerSet(rows, table)
    >>> len(answers), answers.is_decoded
    (2, False)
    >>> ("a", "b") in answers        # membership encodes the probe
    True
    >>> answers.is_decoded           # ...without materialising values
    False
    >>> sorted(answers)              # iteration decodes, once
    [('a', 'b'), ('a', 'c')]
    >>> answers == {("a", "b"), ("a", "c")}
    True
    """

    __slots__ = ("_rows", "_symbols", "_columns", "_list", "_decoded",
                 "_sorted", "decode_seconds")

    def __init__(self, rows: Iterable[tuple],
                 symbols: SymbolTable) -> None:
        self._rows: frozenset[tuple] | None = (
            rows if isinstance(rows, frozenset) else frozenset(rows))
        self._symbols = symbols
        self._columns: tuple[array, ...] | None = None
        self._list: list[tuple] | None = None
        self._decoded: frozenset[tuple] | None = None
        self._sorted: list[tuple] | None = None
        #: wall seconds of the first materialisation (None until then);
        #: the server's decode histogram reads this
        self.decode_seconds: float | None = None

    @classmethod
    def from_columns(cls, columns: tuple[array, ...],
                     symbols: SymbolTable) -> "AnswerSet":
        """An answer set handed over column-first — the vectorised
        backend's boundary shape (:mod:`repro.engine.vector`), where
        the fixpoint already holds flat code vectors and building row
        tuples up front would tax enumerations nobody reads.

        *columns* must be per-column ``array('q')`` code sequences of
        equal length holding *distinct* rows (the kernel's seen-set is
        deduplicated by construction); the row-set side (`encoded`,
        membership, set equality) materialises lazily from them, the
        mirror image of :meth:`columns` materialising from rows.
        """
        answers = cls.__new__(cls)
        answers._rows = None
        answers._symbols = symbols
        answers._columns = tuple(columns)
        answers._list = None
        answers._decoded = None
        answers._sorted = None
        answers.decode_seconds = None
        return answers

    # -- the encoded side (never decodes) ------------------------------

    @property
    def encoded(self) -> frozenset[tuple]:
        """The storage-space rows, exactly as the engine emitted them
        (transposed lazily out of a column-first construction)."""
        if self._rows is None:
            self._rows = frozenset(zip(*self._columns))
        return self._rows

    @property
    def symbols(self) -> SymbolTable:
        """The dictionary giving the codes meaning."""
        return self._symbols

    @property
    def arity(self) -> int:
        """Row width (0 for an empty or nullary result)."""
        if self._rows is None:
            return len(self._columns)
        for row in self._rows:
            return len(row)
        return 0

    @property
    def is_decoded(self) -> bool:
        """True once the value rows have been materialised."""
        return self._list is not None

    def columns(self) -> tuple[array, ...]:
        """The rows as per-column flat code sequences (``array('q')``).

        Built on first request by one C-level transpose of the encoded
        rows; codes are dense non-negative ints, so they always fit
        the signed-64 array type.  Column order is row-position order;
        the row order across columns is consistent but unspecified
        (set semantics), matching ``zip(*columns()) == encoded``.
        """
        if self._columns is None:
            self._columns = tuple(array("q", column)
                                  for column in zip(*self._rows))
        return self._columns

    def __len__(self) -> int:
        if self._rows is None:
            return len(self._columns[0]) if self._columns else 0
        return len(self._rows)

    def __contains__(self, row) -> bool:
        """Value-space membership via lookup-encoding the probe: a
        constant the table never interned occurs in no stored row, so
        the probe misses without decoding anything."""
        if not isinstance(row, tuple):
            return False
        lookup = self._symbols.lookup
        codes = []
        for value in row:
            code = lookup(value)
            if code is None:
                return False
            codes.append(code)
        return tuple(codes) in self.encoded

    # -- the decoded side (lazy, cached) -------------------------------

    def _materialised(self) -> list[tuple]:
        """The decoded value rows as a list — the cheap tier every
        read-only consumer (iteration, sorting, JSON render) needs.
        One flat ``decode_column`` pass over the row-major codes, then
        per-column stride slices zipped back; no tuple hashing."""
        if self._list is None:
            started = perf_counter()
            arity = self.arity
            if arity == 0:
                # empty result, or nullary rows — nothing to decode
                self._list = list(self._rows or ())
            elif self._rows is None:
                # column-first construction: decode each flat column
                # in place and zip back — no row transpose needed
                self._list = list(zip(
                    *(self._symbols.decode_column(column)
                      for column in self._columns)))
            else:
                flat = self._symbols.decode_column(
                    chain.from_iterable(self._rows))
                self._list = list(
                    zip(*(flat[i::arity] for i in range(arity))))
            self.decode_seconds = perf_counter() - started
        return self._list

    def decoded(self) -> frozenset[tuple]:
        """The value-space rows as the ``frozenset`` the pre-columnar
        API returned; built over :meth:`_materialised` only when set
        semantics are exercised, cached forever after (the table is
        append-only, so the cache cannot go stale)."""
        if self._decoded is None:
            self._decoded = frozenset(self._materialised())
        return self._decoded

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._materialised())

    def sorted_rows(self) -> list[tuple]:
        """The decoded rows sorted by ``repr`` — the deterministic
        output order the CLI and the HTTP server print.  Cached, so a
        cache-hit query renders without re-sorting."""
        if self._sorted is None:
            self._sorted = sorted(self._materialised(), key=repr)
        return self._sorted

    # -- set behaviour -------------------------------------------------

    @classmethod
    def _from_iterable(cls, iterable) -> frozenset:
        # Set-operator results (|, &, -, ^) are value-space mixtures
        # with arbitrary other sets; hand back a plain frozenset.
        return frozenset(iterable)

    def __eq__(self, other) -> bool:
        if isinstance(other, AnswerSet):
            if self._symbols is other._symbols:
                # same code space: compare without decoding either side
                return self.encoded == other.encoded
            return self.decoded() == other.decoded()
        if isinstance(other, Set):
            return self.decoded() == other
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Must agree with the decoded frozenset so AnswerSet and
        # frozenset results interchange as dict keys / set members.
        return hash(self.decoded())

    def __repr__(self) -> str:
        state = "decoded" if self.is_decoded else "lazy"
        return (f"AnswerSet({len(self)} rows × {self.arity} "
                f"columns, {state})")
