"""Immutable relations over named columns.

The evaluation engines work tuple-at-a-time against the
:class:`~repro.ra.database.Database`; :class:`Relation` is the
set-at-a-time view used for results, for the relational-algebra
expression trees, and throughout the test-suite's algebraic law checks.

Rows are plain Python tuples of hashable values; the schema is a tuple
of column names.  All operations return new relations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from ..datalog.errors import SchemaError


class Relation:
    """An immutable named-column relation.

    >>> r = Relation(("src", "dst"), [("a", "b"), ("b", "c")])
    >>> len(r.select(src="a"))
    1
    >>> sorted(r.project(("dst",)).rows)
    [('b',), ('c',)]
    """

    __slots__ = ("_columns", "_rows")

    def __init__(self, columns: Iterable[str],
                 rows: Iterable[tuple] = ()) -> None:
        self._columns = tuple(columns)
        if len(set(self._columns)) != len(self._columns):
            raise SchemaError(f"duplicate column names: {self._columns}")
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != len(self._columns):
                raise SchemaError(
                    f"row {row} does not match schema {self._columns}")
        self._rows = frozen

    # -- accessors ---------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        """The schema: column names in positional order."""
        return self._columns

    @property
    def rows(self) -> frozenset[tuple]:
        """The row set."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self._columns)

    def column_index(self, name: str) -> int:
        """Position of column *name* (SchemaError when absent)."""
        try:
            return self._columns.index(name)
        except ValueError:
            raise SchemaError(
                f"no column {name!r} in schema {self._columns}") from None

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._columns == other._columns and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._columns, self._rows))

    def __repr__(self) -> str:
        return f"Relation({self._columns}, {len(self._rows)} rows)"

    # -- unary operators ----------------------------------------------

    def select(self, **equalities: object) -> "Relation":
        """σ: keep rows whose named columns equal the given values."""
        indexed = [(self.column_index(col), value)
                   for col, value in equalities.items()]
        rows = (row for row in self._rows
                if all(row[i] == v for i, v in indexed))
        return Relation(self._columns, rows)

    def where(self, predicate: Callable[[tuple], bool]) -> "Relation":
        """Generalised σ with an arbitrary row predicate."""
        return Relation(self._columns,
                        (row for row in self._rows if predicate(row)))

    def project(self, columns: Iterable[str]) -> "Relation":
        """π: keep the named columns (duplicates collapse, set
        semantics)."""
        names = tuple(columns)
        indices = [self.column_index(c) for c in names]
        return Relation(names, (tuple(row[i] for i in indices)
                                for row in self._rows))

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """ρ: rename columns according to *mapping*."""
        return Relation(tuple(mapping.get(c, c) for c in self._columns),
                        self._rows)

    # -- binary operators ----------------------------------------------

    def _require_same_schema(self, other: "Relation") -> None:
        if self._columns != other._columns:
            raise SchemaError(
                f"schema mismatch: {self._columns} vs {other._columns}")

    def union(self, other: "Relation") -> "Relation":
        """∪ over union-compatible relations."""
        self._require_same_schema(other)
        return Relation(self._columns, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """− over union-compatible relations."""
        self._require_same_schema(other)
        return Relation(self._columns, self._rows - other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        """∩ over union-compatible relations."""
        self._require_same_schema(other)
        return Relation(self._columns, self._rows & other._rows)

    def product(self, other: "Relation") -> "Relation":
        """× — schemas must be disjoint (rename first otherwise)."""
        overlap = set(self._columns) & set(other._columns)
        if overlap:
            raise SchemaError(
                f"product schemas overlap on {sorted(overlap)}; "
                f"rename first")
        return Relation(
            self._columns + other._columns,
            (left + right for left in self._rows for right in other._rows))

    def join(self, other: "Relation") -> "Relation":
        """⋈ — natural join on the shared column names.

        With no shared columns this degenerates to the product, which
        mirrors the paper's evaluation principle (a join is only a
        Cartesian product when nothing connects the operands).

        The hash table is built on the *smaller* operand and the
        larger one streams as the probe side — joining a huge delta
        against a tiny relation must hash the tiny one, whichever side
        of the call it is on.  The output schema and row layout are
        the same either way: ``self``'s columns first, then ``other``'s
        non-shared columns.
        """
        shared = [c for c in self._columns if c in other._columns]
        if not shared:
            return self.product(other)
        left_keys = [self.column_index(c) for c in shared]
        right_keys = [other.column_index(c) for c in shared]
        right_extra = [i for i, c in enumerate(other._columns)
                       if c not in shared]
        out_columns = self._columns + tuple(
            other._columns[i] for i in right_extra)
        rows: list[tuple] = []
        by_key: dict[tuple, list[tuple]] = {}
        if len(other._rows) <= len(self._rows):
            # build on other, probe with self (the historical path)
            for row in other._rows:
                by_key.setdefault(
                    tuple(row[i] for i in right_keys), []).append(row)
            for row in self._rows:
                key = tuple(row[i] for i in left_keys)
                for match in by_key.get(key, ()):
                    rows.append(row
                                + tuple(match[i] for i in right_extra))
        else:
            # build on self, probe with other; emit rows in the same
            # self-columns-first layout
            for row in self._rows:
                by_key.setdefault(
                    tuple(row[i] for i in left_keys), []).append(row)
            for row in other._rows:
                key = tuple(row[i] for i in right_keys)
                extras = tuple(row[i] for i in right_extra)
                for match in by_key.get(key, ()):
                    rows.append(match + extras)
        return Relation(out_columns, rows)

    def semijoin(self, other: "Relation") -> "Relation":
        """⋉ — rows of self that join with at least one row of other."""
        shared = [c for c in self._columns if c in other._columns]
        if not shared:
            return self if other._rows else Relation(self._columns)
        left_keys = [self.column_index(c) for c in shared]
        right_keys = [other.column_index(c) for c in shared]
        keys = {tuple(row[i] for i in right_keys) for row in other._rows}
        return Relation(
            self._columns,
            (row for row in self._rows
             if tuple(row[i] for i in left_keys) in keys))

    def divide(self, divisor: "Relation") -> "Relation":
        """÷ — rows of the quotient schema related to *every* divisor row.

        The divisor's columns must be a proper subset of this
        relation's; the result keeps the remaining columns.

        >>> enrolled = Relation(("student", "course"),
        ...     [("ann", "db"), ("ann", "os"), ("bob", "db")])
        >>> required = Relation(("course",), [("db",), ("os",)])
        >>> sorted(enrolled.divide(required).rows)
        [('ann',)]
        """
        divisor_cols = set(divisor.columns)
        if not divisor_cols < set(self._columns):
            raise SchemaError(
                f"divisor columns {divisor.columns} must be a proper "
                f"subset of {self._columns}")
        quotient_cols = tuple(c for c in self._columns
                              if c not in divisor_cols)
        quotient_idx = [self.column_index(c) for c in quotient_cols]
        divisor_idx = [self.column_index(c) for c in divisor.columns]
        present: dict[tuple, set[tuple]] = {}
        for row in self._rows:
            key = tuple(row[i] for i in quotient_idx)
            present.setdefault(key, set()).add(
                tuple(row[i] for i in divisor_idx))
        needed = divisor.rows
        return Relation(quotient_cols,
                        (key for key, have in present.items()
                         if needed <= have))

    @property
    def is_empty(self) -> bool:
        """True when the relation has no rows (the ∃-check's question)."""
        return not self._rows


def relation_from_pairs(pairs: Iterable[tuple],
                        columns: tuple[str, str] = ("src", "dst")
                        ) -> Relation:
    """Convenience constructor for the ubiquitous binary relation."""
    return Relation(columns, pairs)
