"""Realistic scenario generators for examples, tests, and benches.

Deterministic, parameterised builders for the workload families the
deductive-database literature of the paper's era actually used:
genealogies (ancestor / same-generation), corporate hierarchies, and
part-subpart assemblies.  Each returns a plain ``{relation: rows}``
dict ready for :meth:`Database.from_dict`.
"""

from __future__ import annotations

import random


def genealogy(generations: int, families: int = 2,
              children_per_couple: int = 2, seed: int = 0
              ) -> dict[str, list[tuple]]:
    """A multi-generation population with ``parent`` and ``female``.

    Each generation-g person ``g<g>_p<i>`` has
    ``children_per_couple`` children in generation g+1; roughly half
    of the population is marked female (deterministically by index).

    >>> rows = genealogy(2, families=1, children_per_couple=2)
    >>> len(rows["parent"])   # 2 children of the root + their 4
    6
    """
    rng = random.Random(seed)
    parent: list[tuple] = []
    female: list[tuple] = []
    current = [f"g0_p{i}" for i in range(families)]
    for person_index, person in enumerate(current):
        if person_index % 2 == 0:
            female.append((person,))
    counter = 0
    for generation in range(1, generations + 1):
        next_generation: list[str] = []
        for person in current:
            for _ in range(children_per_couple):
                child = f"g{generation}_p{counter}"
                counter += 1
                parent.append((person, child))
                next_generation.append(child)
                if rng.random() < 0.5:
                    female.append((child,))
        current = next_generation
    return {"parent": parent, "female": female}


def genealogy_updown(generations: int, families: int = 2,
                     children_per_couple: int = 2, seed: int = 0
                     ) -> dict[str, list[tuple]]:
    """The same population shaped for same-generation queries:
    ``up`` (child→parent), ``down`` (parent→child), and the ``flat``
    exit relation over the oldest generation."""
    base = genealogy(generations, families, children_per_couple, seed)
    up = [(child, parent) for parent, child in base["parent"]]
    roots = sorted({p for p, _ in base["parent"]}
                   - {c for _, c in base["parent"]})
    return {"up": up,
            "down": base["parent"],
            "flat": [(r, r) for r in roots]}


def org_hierarchy(levels: int, span: int = 3, seed: int = 0
                  ) -> dict[str, list[tuple]]:
    """A management tree: ``manages(boss, report)`` with *span*
    reports per manager and a ``grade`` relation by level."""
    manages: list[tuple] = []
    grade: list[tuple] = []
    current = ["ceo"]
    grade.append(("ceo", "L0"))
    counter = 0
    for level in range(1, levels + 1):
        next_level: list[str] = []
        for boss in current:
            for _ in range(span):
                person = f"e{counter}"
                counter += 1
                manages.append((boss, person))
                grade.append((person, f"L{level}"))
                next_level.append(person)
        current = next_level
    return {"manages": manages, "grade": grade}


def assembly(depth: int, fanout: int = 2, shared_parts: int = 2,
             seed: int = 0) -> dict[str, list[tuple]]:
    """A bill of materials: a subpart tree plus a few *shared*
    standard parts (bolts, washers) used by many assemblies — making
    the subpart graph a DAG, not a tree."""
    rng = random.Random(seed)
    subpart: list[tuple] = []
    current = ["product"]
    counter = 0
    all_assemblies = list(current)
    for _ in range(depth):
        next_level: list[str] = []
        for part in current:
            for _ in range(fanout):
                child = f"part{counter}"
                counter += 1
                subpart.append((part, child))
                next_level.append(child)
        current = next_level
        all_assemblies.extend(next_level)
    shared = [f"std{i}" for i in range(shared_parts)]
    for standard in shared:
        for assembly_part in rng.sample(
                all_assemblies, min(3, len(all_assemblies))):
            subpart.append((assembly_part, standard))
    return {"subpart": sorted(set(subpart))}
