"""Synthetic EDB generators for tests and benchmarks.

All generators are deterministic given a seed and produce plain
``list[tuple]`` rows, ready for :meth:`Database.from_dict`.  The shapes
are the classic deductive-database workloads: chains (worst-case depth
for transitive closure), complete binary trees (ancestor queries),
random digraphs (dense joins), grids, and cycles (fixpoint
termination on cyclic data).
"""

from __future__ import annotations

import random
from typing import Callable

from ..ra.database import Database


def chain(length: int, prefix: str = "n") -> list[tuple]:
    """A path ``n0 → n1 → … → n<length>`` (length edges).

    >>> chain(2)
    [('n0', 'n1'), ('n1', 'n2')]
    """
    return [(f"{prefix}{i}", f"{prefix}{i + 1}") for i in range(length)]


def cycle(length: int, prefix: str = "n") -> list[tuple]:
    """A directed cycle of *length* nodes."""
    return [(f"{prefix}{i}", f"{prefix}{(i + 1) % length}")
            for i in range(length)]


def binary_tree(depth: int, prefix: str = "t") -> list[tuple]:
    """Parent→child edges of a complete binary tree of *depth* levels.

    Node ``t1`` is the root; node ``tK`` has children ``t2K`` and
    ``t2K+1`` (heap numbering).
    """
    edges = []
    total = 2 ** (depth + 1)  # nodes are 1 .. total-1
    for node in range(1, 2 ** depth):
        left, right = 2 * node, 2 * node + 1
        if left < total:
            edges.append((f"{prefix}{node}", f"{prefix}{left}"))
        if right < total:
            edges.append((f"{prefix}{node}", f"{prefix}{right}"))
    return edges


def random_digraph(nodes: int, edges: int, seed: int = 0,
                   prefix: str = "v") -> list[tuple]:
    """*edges* uniform random edges over *nodes* labelled vertices."""
    rng = random.Random(seed)
    names = [f"{prefix}{i}" for i in range(nodes)]
    out = set()
    while len(out) < min(edges, nodes * nodes):
        out.add((rng.choice(names), rng.choice(names)))
    return sorted(out)


def grid(width: int, height: int, prefix: str = "g") -> list[tuple]:
    """Right/down edges of a width×height grid."""
    edges = []
    for row in range(height):
        for col in range(width):
            here = f"{prefix}{row}_{col}"
            if col + 1 < width:
                edges.append((here, f"{prefix}{row}_{col + 1}"))
            if row + 1 < height:
                edges.append((here, f"{prefix}{row + 1}_{col}"))
    return edges


def random_unary(nodes: int, count: int, seed: int = 0,
                 prefix: str = "v") -> list[tuple]:
    """*count* random unary facts over the vertex names."""
    rng = random.Random(seed)
    names = [f"{prefix}{i}" for i in range(nodes)]
    return sorted({(rng.choice(names),) for _ in range(count)})


def random_tuples(nodes: int, count: int, arity: int, seed: int = 0,
                  prefix: str = "v") -> list[tuple]:
    """*count* random *arity*-tuples over the vertex names."""
    rng = random.Random(seed)
    names = [f"{prefix}{i}" for i in range(nodes)]
    out = set()
    attempts = 0
    while len(out) < count and attempts < 50 * count:
        out.add(tuple(rng.choice(names) for _ in range(arity)))
        attempts += 1
    return sorted(out)


def database_for(system_edb: dict[str, list[tuple]]) -> Database:
    """Wrap generator output in a :class:`Database`."""
    return Database.from_dict(system_edb)


def reflexive_exit(nodes: int, arity: int = 2, prefix: str = "n"
                   ) -> list[tuple]:
    """The identity exit relation ``E = {(n, …, n)}`` over the nodes —
    the conventional exit for transitive-closure-style recursions."""
    return [((f"{prefix}{i}",) * arity) for i in range(nodes + 1)]


#: Named generators for parameterised benches.
GENERATORS: dict[str, Callable[..., list[tuple]]] = {
    "chain": chain,
    "cycle": cycle,
    "tree": binary_tree,
    "random": random_digraph,
    "grid": grid,
}
