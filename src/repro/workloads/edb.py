"""EDB builders matched to a recursion system's predicate signature.

Property tests and benches need a database for an *arbitrary* formula:
:func:`random_edb` inspects the system's EDB predicates and their
arities and fills each with random tuples over a shared node universe,
so that joins actually connect.  :func:`chain_edb` builds the
worst-case-depth chain workload for binary-relation recursions.
"""

from __future__ import annotations

import random

from ..datalog.program import RecursionSystem
from ..datalog.rules import Rule
from ..ra.database import Database
from .generators import chain, reflexive_exit


def _predicate_arities(system: RecursionSystem) -> dict[str, int]:
    arities: dict[str, int] = {}
    rules: list[Rule] = [system.recursive.rule, *system.exits]
    for rule in rules:
        for body_atom in rule.body:
            if body_atom.predicate == system.predicate:
                continue
            arities[body_atom.predicate] = body_atom.arity
    return arities


def random_edb(system: RecursionSystem, nodes: int = 8,
               tuples_per_relation: int = 12, seed: int = 0) -> Database:
    """A random database covering every EDB predicate of *system*.

    All relations draw from one universe of *nodes* named constants so
    chains and joins connect with useful probability.

    >>> from ..datalog.parser import parse_system
    >>> s = parse_system("P(x, y) :- A(x, z), P(z, y).")
    >>> db = random_edb(s, nodes=4, tuples_per_relation=5, seed=1)
    >>> sorted(db.relation_names)
    ['A', 'P__exit']
    """
    rng = random.Random(seed)
    names = [f"c{i}" for i in range(nodes)]
    db = Database()
    for predicate, arity in sorted(_predicate_arities(system).items()):
        rows = {tuple(rng.choice(names) for _ in range(arity))
                for _ in range(tuples_per_relation)}
        db.bulk(predicate, rows)
    return db


def chain_edb(system: RecursionSystem, length: int,
              reflexive_exits: bool = True, seed: int = 0) -> Database:
    """A chain workload: every binary EDB predicate gets the same chain.

    Binary predicates share the chain edges (so cycles compose into
    long paths); unary predicates get every node; higher-arity
    predicates and non-identity exits get random tuples over the chain
    nodes.  With *reflexive_exits*, synthesised generic exits get the
    identity relation — the transitive-closure convention.
    """
    rng = random.Random(seed)
    edges = chain(length)
    names = [f"n{i}" for i in range(length + 1)]
    db = Database()
    exit_name = system.predicate + RecursionSystem.EXIT_SUFFIX
    for predicate, arity in sorted(_predicate_arities(system).items()):
        if predicate == exit_name and reflexive_exits:
            db.bulk(predicate, reflexive_exit(length, system.dimension))
        elif arity == 2:
            db.bulk(predicate, edges)
        elif arity == 1:
            db.bulk(predicate, [(n,) for n in names])
        else:
            db.bulk(predicate,
                    {tuple(rng.choice(names) for _ in range(arity))
                     for _ in range(3 * length)})
    return db
