"""The catalogue of the paper's example formulas (and a few more).

Every worked example of the paper, by its statement number, plus the
implicit examples used inside proofs and remarks, plus a handful of
classic deductive-database recursions for the example programs.  Each
entry records the paper's claims so the benches can print
paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.parser import parse_system
from ..datalog.program import RecursionSystem


@dataclass(frozen=True)
class CatalogueEntry:
    """One formula with the paper's claims about it."""

    name: str
    source: str                       #: where in the paper it appears
    text: str                         #: the rule, in parser syntax
    paper_class: str                  #: the paper's (implied) class label
    paper_components: str             #: component classes, "+"-joined
    paper_stable: bool
    paper_transformable: bool
    paper_unfold: int | None          #: Thm 2/4 unfold count, when given
    paper_bounded: str                #: bounded / unbounded / unknown
    paper_rank_bound: int | None      #: when the paper names one
    notes: str = ""
    query_forms: tuple[str, ...] = ()

    def system(self) -> RecursionSystem:
        """Parse the rule into a fresh recursion system."""
        return parse_system(self.text)


CATALOGUE: dict[str, CatalogueEntry] = {}


def _entry(**kwargs: object) -> None:
    entry = CatalogueEntry(**kwargs)  # type: ignore[arg-type]
    CATALOGUE[entry.name] = entry


_entry(name="s1a", source="Example 1 / Figure 1(a)",
       text="P(x, y) :- A(x, z), P(z, y).",
       paper_class="A5", paper_components="A1+A2",
       paper_stable=True, paper_transformable=True, paper_unfold=1,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="transitive closure; unit rotational + unit permutational",
       query_forms=("dv", "vd", "vv", "dd"))

_entry(name="s1b", source="Example 1 / Figure 1(b)",
       text="P(x, y, z) :- A(x, y), P(u, z, v), B(u, v).",
       paper_class="C", paper_components="C",
       paper_stable=False, paper_transformable=False, paper_unfold=None,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="multi-directional cycle of weight -1",
       query_forms=("dvv",))

_entry(name="s2a", source="Example 2 / Figure 2",
       text="P(x, y) :- A(x, z), P(z, u), B(u, y).",
       paper_class="A1", paper_components="A1+A1",
       paper_stable=True, paper_transformable=True, paper_unfold=1,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="the resolution-graph running example",
       query_forms=("dv", "vd", "dd"))

_entry(name="s3", source="Example 3",
       text="P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).",
       paper_class="A1", paper_components="A1+A1+A1",
       paper_stable=True, paper_transformable=True, paper_unfold=1,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="three disjoint unit rotational cycles; P(a,b,Z) plan",
       query_forms=("ddv", "vdd", "dvd"))

_entry(name="s4", source="Example 4 / (s4a)",
       text="P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), "
            "P(y1, y2, y3).",
       paper_class="A3", paper_components="A3",
       paper_stable=False, paper_transformable=True, paper_unfold=3,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="one-directional rotational cycle of weight 3",
       query_forms=("ddv",))

_entry(name="s5", source="Example 5 / (s5)",
       text="P(x, y, z) :- P(y, z, x).",
       paper_class="A4", paper_components="A4",
       paper_stable=False, paper_transformable=True, paper_unfold=3,
       paper_bounded="bounded", paper_rank_bound=2,
       notes="permutational cycle of weight 3; bounded (Thm 10: LCM-1)",
       query_forms=("dvv",))

_entry(name="s6", source="Example 6 / (s6)",
       text="P(x, y, z, u, v, w) :- P(z, y, u, x, w, v).",
       paper_class="A5", paper_components="A4+A4+A2",
       paper_stable=False, paper_transformable=True, paper_unfold=6,
       paper_bounded="bounded", paper_rank_bound=5,
       notes="permutational cycles of weights 3, 1, 2; stable after 6",
       query_forms=("dvvvvv",))

_entry(name="s7", source="Example 7 / (s7)",
       text="P(x, y, z, u, w, s, v) :- A(x, t), "
            "P(t, z, y, w, s, r, v), B(u, r).",
       paper_class="A5", paper_components="A3+A1+A2+A4",
       paper_stable=False, paper_transformable=True, paper_unfold=6,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="4 one-directional cycles of weights 1, 2, 3, 1; LCM 6. "
             "(components listed in graph order: weight-1 rotational, "
             "weight-2 permutational, weight-3 rotational, weight-1 "
             "permutational)",
       query_forms=("dvvvvvv",))

_entry(name="s8", source="Example 8 / Figure 3",
       text="P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), "
            "P(z, y1, z1, u1).",
       paper_class="B", paper_components="B",
       paper_stable=False, paper_transformable=False, paper_unfold=None,
       paper_bounded="bounded", paper_rank_bound=2,
       notes="bounded cycle (weight 0); Ioannidis bound 2; "
             "pseudo recursion (s8a'), (s8b')",
       query_forms=("dvvv", "vvvv"))

_entry(name="s9", source="Example 9 / Figure 4",
       text="P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).",
       paper_class="C", paper_components="C",
       paper_stable=False, paper_transformable=False, paper_unfold=None,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="unbounded cycle; plans for P(d,v,v) and P(v,v,d)",
       query_forms=("dvv", "vvd"))

_entry(name="s10", source="Example 10 / (s10)",
       text="P(x, y) :- B(y), C(x, y1), P(x1, y1).",
       paper_class="D", paper_components="D",
       paper_stable=False, paper_transformable=False, paper_unfold=None,
       paper_bounded="bounded", paper_rank_bound=2,
       notes="no non-trivial cycle; upper bound 2 [Ioan 85]",
       query_forms=("vv",))

_entry(name="s11", source="Example 11 / Figure 5",
       text="P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).",
       paper_class="E", paper_components="E",
       paper_stable=False, paper_transformable=False, paper_unfold=None,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="dependent cycles; P(d,v) plan with {A,B} branches",
       query_forms=("dv",))

_entry(name="s12", source="Example 14 / (s12) / Figure 6",
       text="P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), "
            "P(u, v, w).",
       paper_class="F", paper_components="E+A1",
       paper_stable=False, paper_transformable=False, paper_unfold=None,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="mixed; the paper's prose says '(D) and (A1)' where (D) "
             "names the dependent component (cf. DESIGN.md §2); "
             "query-dependently stable: dvv -> ddv -> ddv",
       query_forms=("dvv", "vvd"))

_entry(name="compressed", source="Section 3 Remark",
       text="P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).",
       paper_class="A5", paper_components="A1+A2",
       paper_stable=True, paper_transformable=True, paper_unfold=1,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="ABC compresses to one undirected edge; two unit cycles",
       query_forms=("dv",))

_entry(name="thm1", source="Theorem 1 proof",
       text="P(x, y) :- A(x, z), P(y, z).",
       paper_class="A3", paper_components="A3",
       paper_stable=False, paper_transformable=True, paper_unfold=2,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="the 'uniform cycle of length two' counterexample",
       query_forms=("dv", "vd"))

#: Names of the paper's numbered statements, in paper order.
PAPER_ORDER = ("s1a", "s1b", "s2a", "s3", "s4", "s5", "s6", "s7", "s8",
               "s9", "s10", "s11", "s12")

#: Extra recursions for the example programs (not from the paper).
EXTRAS: dict[str, str] = {
    # ancestor: classic genealogy recursion (class A1+A2, stable)
    "ancestor": "anc(x, y) :- parent(x, z), anc(z, y).",
    # same generation, right-linear form (one-directional, weight 2)
    "same_generation": "sg(x, y) :- up(x, u), sg(u, v), down(v, y).",
}


def paper_systems() -> dict[str, RecursionSystem]:
    """Fresh recursion systems for every paper example, in order."""
    return {name: CATALOGUE[name].system() for name in PAPER_ORDER}


def all_systems() -> dict[str, RecursionSystem]:
    """Fresh recursion systems for the entire catalogue."""
    return {name: entry.system() for name, entry in CATALOGUE.items()}


#: Corner-case formulas beyond the paper's examples, with expected
#: classifier verdicts — a regression corpus exercising every branch
#: the paper-sourced catalogue does not reach.
EXTRA_CATALOGUE: dict[str, CatalogueEntry] = {}


def _extra(**kwargs: object) -> None:
    entry = CatalogueEntry(**kwargs)  # type: ignore[arg-type]
    EXTRA_CATALOGUE[entry.name] = entry


_extra(name="decorated_stable", source="corner case",
       text="P(x, y) :- A(x, u), B(y, w), C(u, m), P(u, y).",
       paper_class="A5", paper_components="A1+A2",
       paper_stable=True, paper_transformable=True, paper_unfold=1,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="decorations (B on the self-loop, C on the cycle) must "
             "not break stability",
       query_forms=("dv", "vd"))

_extra(name="compressed_chain", source="corner case",
       text="P(x, y) :- A(x, m), B(m, n), C(n, z), P(z, y).",
       paper_class="A5", paper_components="A1+A2",
       paper_stable=True, paper_transformable=True, paper_unfold=1,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="a three-relation undirected path compresses to one "
             "ABC edge",
       query_forms=("dv",))

_extra(name="dependent_bounded", source="corner case",
       text="P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), D(u, z), "
            "P(z, y1, z1, u1).",
       paper_class="E", paper_components="E",
       paper_stable=False, paper_transformable=False, paper_unfold=None,
       paper_bounded="bounded", paper_rank_bound=2,
       notes="(s8) plus a same-potential chord: dependent, yet "
             "Ioannidis still applies (no permutational pattern)",
       query_forms=("dvvv",))

_extra(name="unknown_boundedness", source="corner case",
       text="P(x, y) :- A(x, y), P(y, x).",
       paper_class="E", paper_components="E",
       paper_stable=False, paper_transformable=False, paper_unfold=None,
       paper_bounded="unknown", paper_rank_bound=None,
       notes="a permutational 2-cycle with a chord: the corner the "
             "paper leaves open",
       query_forms=("dv",))

_extra(name="pure_a2", source="corner case",
       text="P(x, y) :- P(x, y).",
       paper_class="A2", paper_components="A2+A2",
       paper_stable=True, paper_transformable=True, paper_unfold=1,
       paper_bounded="bounded", paper_rank_bound=0,
       notes="the degenerate identity recursion: two self-loops, "
             "rank 0",
       query_forms=("dv",))

_extra(name="lcm_mix", source="corner case",
       text="P(a, b, c, d, e) :- R(a, t), P(t, c, b, e, d).",
       paper_class="A5", paper_components="A1+A4+A4",
       paper_stable=False, paper_transformable=True, paper_unfold=2,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="weight-1 rotational with two weight-2 swaps: LCM 2",
       query_forms=("dvvvv",))

_extra(name="double_d", source="corner case",
       text="P(x, y) :- C(x, m), D(y, n), P(x1, y1).",
       paper_class="D", paper_components="D+D",
       paper_stable=False, paper_transformable=False, paper_unfold=None,
       paper_bounded="bounded", paper_rank_bound=1,
       notes="two disjoint acyclic components (fresh recursive "
             "arguments, decorated heads)",
       query_forms=("dv", "vv"))

_extra(name="long_rotational", source="corner case",
       text="P(x1, x2, x3, x4) :- A(x1, y4), B(x2, y1), C(x3, y2), "
            "D(x4, y3), P(y1, y2, y3, y4).",
       paper_class="A3", paper_components="A3",
       paper_stable=False, paper_transformable=True, paper_unfold=4,
       paper_bounded="unbounded", paper_rank_bound=None,
       notes="a weight-4 one-directional rotational cycle",
       query_forms=("dvvv",))


def extra_systems() -> dict[str, RecursionSystem]:
    """Fresh recursion systems for the corner-case corpus."""
    return {name: entry.system()
            for name, entry in EXTRA_CATALOGUE.items()}
