"""Workloads: the paper's formula catalogue and synthetic EDB generators."""

from .edb import chain_edb, random_edb
from .formulas import (CATALOGUE, EXTRA_CATALOGUE, EXTRAS, PAPER_ORDER,
                       CatalogueEntry, all_systems, extra_systems,
                       paper_systems)
from .generators import (GENERATORS, binary_tree, chain, cycle,
                         database_for, grid, random_digraph, random_tuples,
                         random_unary, reflexive_exit)
from .scenarios import (assembly, genealogy, genealogy_updown,
                        org_hierarchy)

__all__ = [
    "CATALOGUE", "CatalogueEntry", "EXTRA_CATALOGUE", "EXTRAS",
    "GENERATORS", "PAPER_ORDER", "extra_systems",
    "all_systems", "binary_tree", "chain", "chain_edb", "cycle",
    "database_for", "grid", "paper_systems", "random_digraph",
    "random_edb", "random_tuples", "random_unary", "reflexive_exit",
    "assembly", "genealogy", "genealogy_updown", "org_hierarchy",
]
