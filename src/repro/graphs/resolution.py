"""Resolution graphs: the graph of the k-th expansion of a formula.

The paper's definition (section 2): the first resolution graph is the
I-graph of the formula; the k-th is obtained from the (k−1)-st by
renumbering the rule's variables, unifying the renamed head with the
recursive atom of the (k−1)-st expansion, and appending the renamed
I-graph along the shared variables.  All arrows of earlier levels are
*retained*, which is what lets the graph show e.g. that after two
expansions the weight from ``x`` to ``z₁`` is two (Figure 2(c)).

Two views are provided:

* :class:`ResolutionGraph` — the cumulative graph with retained
  arrows, level by level;
* :meth:`ResolutionGraph.collapsed_igraph` — the I-graph of the k-th
  expansion *considered as a formula by itself* (Figure 2(d)), i.e.
  directed edges run straight from the consequent variables to the
  recursive-atom variables of the k-th expansion.  Theorem 2's claim
  that a weight-n one-directional formula "becomes stable after each n
  expansions" is checked on this view.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.program import RecursionSystem
from ..datalog.rules import Rule
from ..datalog.terms import Variable
from .edges import DirectedEdge, UndirectedEdge
from .igraph import IGraph, build_igraph, undirected_edges_of_atom


@dataclass(frozen=True)
class ResolutionGraph:
    """The k-th resolution graph of a recursion system.

    Attributes
    ----------
    system:
        The recursion system the graph was expanded from.
    level:
        The expansion depth k (k = 1 is the I-graph itself).
    graph:
        The cumulative hybrid graph: undirected edges of all k layers
        plus the retained directed edges of every layer.  Directed
        edges keep their position; their layer is recoverable from the
        variables' renaming subscripts.
    expansion:
        The k-th expansion rule (still containing the recursive atom).
    frontier:
        The recursive-atom variables of the k-th expansion, in
        positional order — the vertices new arrows would grow from.
    """

    system: RecursionSystem
    level: int
    graph: IGraph
    expansion: Rule
    frontier: tuple[Variable, ...]

    def collapsed_igraph(self) -> IGraph:
        """The I-graph of the k-th expansion as a formula by itself.

        Directed edges run from the head variables straight to the
        frontier variables (weight k paths collapse to single edges of
        the new formula) — the paper's Figure 2(d) view.
        """
        return build_igraph(self.expansion)

    def __str__(self) -> str:
        return (f"ResolutionGraph(level {self.level}, "
                f"{len(self.graph.directed)} directed, "
                f"{len(self.graph.undirected)} undirected)")


def resolution_graph(system: RecursionSystem, level: int) -> ResolutionGraph:
    """Build the *level*-th resolution graph of *system*.

    >>> from ..datalog.parser import parse_system
    >>> s = parse_system("P(x, y) :- A(x, z), P(z, u), B(u, y).")
    >>> second = resolution_graph(s, 2)
    >>> len(second.graph.directed)   # arrows of both layers retained
    4
    >>> [v.name for v in second.frontier]
    ['z_1', 'u_1']
    """
    if level < 1:
        raise ValueError(f"resolution graph level must be >= 1, got {level}")

    directed: list[DirectedEdge] = []
    undirected: list[UndirectedEdge] = []
    vertices: set[Variable] = set()

    expansion = system.recursive.rule
    previous_frontier = tuple(
        t for t in system.recursive.head.args if isinstance(t, Variable))
    seen_atoms: set[int] = set()
    atom_counter = 0

    for current_level in range(1, level + 1):
        if current_level > 1:
            expansion = system.expansion(current_level)
        recursive_atom = next(
            a for a in expansion.body
            if a.predicate == system.predicate)
        frontier = tuple(t for t in recursive_atom.args
                         if isinstance(t, Variable))
        for position, (tail, head) in enumerate(
                zip(previous_frontier, frontier)):
            edge = DirectedEdge(tail, head, position)
            if edge not in directed:  # self-loops persist across levels
                directed.append(edge)
        for body_atom in expansion.body:
            if body_atom.predicate == system.predicate:
                continue
            key = hash((body_atom.predicate, body_atom.args))
            if key in seen_atoms:
                continue
            seen_atoms.add(key)
            undirected.extend(
                undirected_edges_of_atom(body_atom, atom_counter))
            atom_counter += 1
        vertices.update(expansion.variables)
        previous_frontier = frontier

    graph = IGraph(frozenset(vertices), tuple(directed), tuple(undirected),
                   system.predicate)
    return ResolutionGraph(system=system, level=level, graph=graph,
                           expansion=expansion,
                           frontier=previous_frontier)


def resolution_trace(system: RecursionSystem,
                     depth: int) -> tuple[ResolutionGraph, ...]:
    """Resolution graphs for levels 1..depth (the paper's figure series)."""
    return tuple(resolution_graph(system, k) for k in range(1, depth + 1))
