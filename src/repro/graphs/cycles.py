"""Cycle objects and cycle extraction on I-graphs and reduced graphs.

The paper's classification rests on a handful of cycle attributes:

* **non-trivial** — contains at least one directed edge;
* **independent** — not connected to other non-trivial cycles nor to
  other directed edges (syntactically: its reduced component *is* the
  cycle);
* **one-directional** — every directed edge is traversed with the same
  orientation; otherwise multi-directional;
* **rotational** vs **permutational** — with vs without undirected
  edges on the cycle;
* **weight** — signed sum of edge weights along the traversal; a
  one-directional cycle of weight 1 is a **unit** cycle.

:class:`Cycle` carries a concrete traversal and exposes all of these.
:func:`independent_cycle_of_component` implements the syntactic
independence test on a reduced component;
:func:`permutational_cycles` walks the pure directed sub-graph (used
for Theorem 10 and the precondition of Ioannidis's theorem);
:func:`fundamental_cycles` produces a cycle basis of the full hybrid
graph for reporting and figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.terms import Variable
from .compress import ReducedGraph
from .edges import DirectedEdge, TraversedEdge
from .igraph import IGraph


@dataclass(frozen=True)
class Cycle:
    """A concrete cycle traversal in a hybrid weighted (multi)graph."""

    steps: tuple[TraversedEdge, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a cycle needs at least one step")
        for current, following in zip(self.steps,
                                      self.steps[1:] + self.steps[:1]):
            if current.target != following.source:
                raise ValueError(
                    f"steps do not chain: {current} then {following}")

    # -- structure ----------------------------------------------------

    @property
    def vertices(self) -> tuple[Variable, ...]:
        """Vertices in traversal order (each once)."""
        return tuple(step.source for step in self.steps)

    @property
    def weight(self) -> int:
        """Signed sum of the traversed edge weights (paper definition)."""
        return sum(step.weight for step in self.steps)

    @property
    def directed_steps(self) -> tuple[TraversedEdge, ...]:
        """Steps over directed edges."""
        return tuple(s for s in self.steps
                     if isinstance(s.edge, DirectedEdge))

    @property
    def undirected_steps(self) -> tuple[TraversedEdge, ...]:
        """Steps over undirected (incl. compressed) edges."""
        return tuple(s for s in self.steps
                     if not isinstance(s.edge, DirectedEdge))

    @property
    def is_nontrivial(self) -> bool:
        """True iff the cycle uses at least one directed edge."""
        return bool(self.directed_steps)

    # -- paper attributes ----------------------------------------------

    @property
    def is_one_directional(self) -> bool:
        """All directed edges traversed with the same orientation."""
        signs = {step.weight for step in self.directed_steps}
        return self.is_nontrivial and len(signs) == 1

    @property
    def is_multi_directional(self) -> bool:
        """Non-trivial but with directed edges in both orientations."""
        return self.is_nontrivial and not self.is_one_directional

    @property
    def is_permutational(self) -> bool:
        """One-directional with no undirected edges at all."""
        return self.is_one_directional and not self.undirected_steps

    @property
    def is_rotational(self) -> bool:
        """One-directional with at least one undirected edge."""
        return self.is_one_directional and bool(self.undirected_steps)

    @property
    def is_unit(self) -> bool:
        """One-directional of absolute weight 1."""
        return self.is_one_directional and abs(self.weight) == 1

    def canonical(self) -> "Cycle":
        """The traversal oriented so the weight is non-negative."""
        if self.weight >= 0:
            return self
        reversed_steps = tuple(
            TraversedEdge(step.edge, not step.forward)
            for step in reversed(self.steps))
        return Cycle(reversed_steps)

    def __str__(self) -> str:
        chain = " ".join(str(step) for step in self.steps)
        return f"[{chain}] (weight {self.weight})"


def self_loop_cycle(edge: DirectedEdge) -> Cycle:
    """The unit permutational cycle of a self-loop ``x → x``."""
    return Cycle((TraversedEdge(edge, True),))


def independent_cycle_of_component(
        reduced: ReducedGraph,
        component: frozenset[Variable]) -> Cycle | None:
    """The unique simple cycle, when *component* is exactly one cycle.

    A reduced component is an **independent** cycle iff it contains no
    hyper-cluster and every anchor has reduced degree exactly two —
    then the component is a single simple cycle (possibly a directed
    self-loop) and the paper's independence condition holds.  Returns
    None otherwise (the component is then either acyclic, class D, or
    dependent, class E).
    """
    for vertex in component:
        if reduced.hyper_at(vertex):
            return None
        if reduced.degree(vertex) != 2:
            return None

    start = min(component, key=lambda v: v.name)
    edges_here = reduced.edges_at(start)
    loop = next((e for e in edges_here
                 if isinstance(e, DirectedEdge) and e.is_self_loop), None)
    if loop is not None:
        return self_loop_cycle(loop)

    # Walk the cycle: leave `start` by its first edge, and at every
    # vertex continue over the incident edge not just used.
    steps: list[TraversedEdge] = []
    used_edges: list = []
    current = start
    previous_edge = None
    while True:
        candidates = [e for e in reduced.edges_at(current)
                      if e is not previous_edge]
        # Parallel two-edge cycles: both edges incident, pick the unused
        # one; on the very first step any edge will do.
        edge = candidates[0] if candidates else previous_edge
        step = _traverse_from(edge, current)
        steps.append(step)
        used_edges.append(edge)
        previous_edge = edge
        current = step.target
        if current == start:
            break
        if len(steps) > 2 * len(component):  # pragma: no cover - guard
            return None
    return Cycle(tuple(steps)).canonical()


def _traverse_from(edge, source: Variable) -> TraversedEdge:
    """A traversal step over *edge* leaving from *source*."""
    if isinstance(edge, DirectedEdge):
        return TraversedEdge(edge, forward=edge.tail == source)
    left = edge.left
    return TraversedEdge(edge, forward=left == source)


def permutational_cycles(graph: IGraph) -> tuple[Cycle, ...]:
    """All pure-directed cycles (the paper's *permutational patterns*).

    Because each vertex is the tail of at most one directed edge and
    the head of at most one, the directed sub-graph decomposes into
    disjoint simple paths and simple cycles; the cycles are found by
    following out-edges.

    >>> from ..datalog.parser import parse_rule
    >>> from .igraph import build_igraph
    >>> g = build_igraph(parse_rule(
    ...     "P(x, y, z, u, v, w) :- P(z, y, u, x, w, v)."))
    >>> sorted(c.weight for c in permutational_cycles(g))
    [1, 2, 3]
    """
    cycles: list[Cycle] = []
    visited: set[Variable] = set()
    for start in sorted(graph.anchors, key=lambda v: v.name):
        if start in visited:
            continue
        trail: list[Variable] = []
        positions: dict[Variable, int] = {}
        vertex = start
        while vertex is not None and vertex not in positions:
            if vertex in visited:
                break
            positions[vertex] = len(trail)
            trail.append(vertex)
            out = graph.out_edge(vertex)
            vertex = out.head if out is not None else None
        visited.update(trail)
        if vertex is not None and vertex in positions:
            loop_vertices = trail[positions[vertex]:]
            steps = tuple(
                TraversedEdge(graph.out_edge(v), True)
                for v in loop_vertices)
            cycles.append(Cycle(steps))
    return tuple(cycles)


def fundamental_cycles(graph: IGraph) -> tuple[Cycle, ...]:
    """A fundamental cycle basis of the full hybrid graph.

    Builds a BFS spanning forest (treating every edge as a link); each
    non-tree edge closes exactly one cycle with the tree path between
    its endpoints.  Self-loops yield their singleton cycle.  Used for
    reporting the cycle structure of dependent components.
    """
    all_edges: list = list(graph.directed) + list(graph.undirected)
    parent: dict[Variable, tuple[Variable, object] | None] = {}
    tree_edges: set[int] = set()
    cycles: list[Cycle] = []

    incident: dict[Variable, list[tuple[int, object]]] = {
        v: [] for v in graph.vertices}
    for index, edge in enumerate(all_edges):
        if isinstance(edge, DirectedEdge):
            if edge.is_self_loop:
                continue
            incident[edge.tail].append((index, edge))
            incident[edge.head].append((index, edge))
        else:
            incident[edge.left].append((index, edge))
            incident[edge.right].append((index, edge))

    for root in sorted(graph.vertices, key=lambda v: v.name):
        if root in parent:
            continue
        parent[root] = None
        queue = [root]
        while queue:
            vertex = queue.pop(0)
            for index, edge in incident[vertex]:
                other = (edge.head if isinstance(edge, DirectedEdge)
                         and edge.tail == vertex else
                         edge.tail if isinstance(edge, DirectedEdge) else
                         edge.other(vertex))
                if other not in parent:
                    parent[other] = (vertex, edge)
                    tree_edges.add(index)
                    queue.append(other)

    def tree_path(source: Variable, target: Variable) -> list[TraversedEdge]:
        """Traversal steps from *source* to *target* through the tree."""
        def root_path(vertex: Variable) -> list[Variable]:
            path = [vertex]
            while parent[path[-1]] is not None:
                path.append(parent[path[-1]][0])
            return path

        up_source = root_path(source)
        up_target = root_path(target)
        common = None
        target_set = set(up_target)
        for vertex in up_source:
            if vertex in target_set:
                common = vertex
                break
        assert common is not None
        steps: list[TraversedEdge] = []
        vertex = source
        while vertex != common:
            above, edge = parent[vertex]
            steps.append(_traverse_from(edge, vertex))
            vertex = above
        down: list[TraversedEdge] = []
        vertex = target
        while vertex != common:
            above, edge = parent[vertex]
            down.append(_traverse_from(edge, above))
            vertex = above
        return steps + list(reversed(down))

    for index, edge in enumerate(all_edges):
        if isinstance(edge, DirectedEdge) and edge.is_self_loop:
            cycles.append(self_loop_cycle(edge))
            continue
        if index in tree_edges:
            continue
        if isinstance(edge, DirectedEdge):
            source, target = edge.tail, edge.head
        else:
            source, target = edge.left, edge.right
        closing = _traverse_from(edge, source)
        back = tree_path(target, source)
        cycles.append(Cycle(tuple([closing] + back)).canonical())
    return tuple(cycles)
