"""Edge types of the labelled, weighted, hybrid I-graph.

The paper's graph ``G = (V, E_u, E_d, W, L)`` has two edge families:

* **directed** edges, one per argument position of the recursive
  predicate, from the consequent variable to the antecedent variable in
  the same position, with weight +1 (and an implicit reverse edge of
  weight −1);
* **undirected** edges, weight 0, connecting the variables of each
  non-recursive body atom, labelled with that predicate.

Both are immutable value objects.  A :class:`TraversedEdge` pairs an
edge with a traversal direction so cycles and paths can carry their
signed weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..datalog.terms import Variable


@dataclass(frozen=True, slots=True)
class DirectedEdge:
    """A directed edge ``tail → head`` of weight +1.

    ``tail`` is the consequent (rule-head) variable and ``head`` the
    antecedent (recursive body atom) variable at the same argument
    ``position`` (0-based).  A self-loop (``tail == head``) is the
    paper's *unit permutational* cycle.
    """

    tail: Variable
    head: Variable
    position: int

    #: weight of every directed edge, by definition
    WEIGHT = 1

    @property
    def is_self_loop(self) -> bool:
        """True for edges ``x → x`` (class A2 unit permutational cycles)."""
        return self.tail == self.head

    def endpoints(self) -> frozenset[Variable]:
        """The set of incident vertices (singleton for self-loops)."""
        return frozenset((self.tail, self.head))

    def __str__(self) -> str:
        return f"{self.tail} →({self.position + 1}) {self.head}"


@dataclass(frozen=True, slots=True)
class UndirectedEdge:
    """An undirected edge of weight 0, labelled with an EDB predicate.

    ``atom_index`` is the position of the contributing non-recursive
    atom in the rule body, letting several atoms over the same
    predicate contribute distinguishable parallel edges.
    """

    left: Variable
    right: Variable
    label: str
    atom_index: int

    WEIGHT = 0

    def endpoints(self) -> frozenset[Variable]:
        """The set of incident vertices."""
        return frozenset((self.left, self.right))

    def other(self, vertex: Variable) -> Variable:
        """The endpoint opposite *vertex*."""
        if vertex == self.left:
            return self.right
        if vertex == self.right:
            return self.left
        raise ValueError(f"{vertex} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.left} —[{self.label}]— {self.right}"


#: Any I-graph edge.
Edge = Union[DirectedEdge, UndirectedEdge]


@dataclass(frozen=True, slots=True)
class TraversedEdge:
    """An edge together with the direction it is walked in.

    For a directed edge, ``forward`` means along the arrow (weight +1);
    backward traversal uses the implicit reverse edge (weight −1).
    Undirected edges have weight 0 either way; ``forward`` records
    whether the walk goes ``left → right``.
    """

    edge: Edge
    forward: bool

    @property
    def weight(self) -> int:
        """Signed weight contributed to a path containing this step."""
        if isinstance(self.edge, DirectedEdge):
            return 1 if self.forward else -1
        return 0

    @property
    def source(self) -> Variable:
        """The vertex the step leaves from."""
        if isinstance(self.edge, DirectedEdge):
            return self.edge.tail if self.forward else self.edge.head
        return self.edge.left if self.forward else self.edge.right

    @property
    def target(self) -> Variable:
        """The vertex the step arrives at."""
        if isinstance(self.edge, DirectedEdge):
            return self.edge.head if self.forward else self.edge.tail
        return self.edge.right if self.forward else self.edge.left

    def __str__(self) -> str:
        arrow = "→" if self.weight > 0 else ("←" if self.weight < 0 else "—")
        return f"{self.source} {arrow} {self.target}"


def path_weight(steps: tuple[TraversedEdge, ...]) -> int:
    """Sum of signed weights along a walk (the paper's path weight)."""
    return sum(step.weight for step in steps)
