"""Rendering of I-graphs and resolution graphs (the paper's figures).

The paper's figures are drawings of I-graphs and resolution graphs.
We render the same information in two machine-checkable forms:

* :func:`ascii_figure` — a deterministic text listing (vertices, then
  directed edges with positions, then undirected edges with labels),
  which is what the figure-reproduction benches print and assert on;
* :func:`to_dot` — Graphviz source for anyone who wants the drawing.
"""

from __future__ import annotations

from ..datalog.pretty import subscript
from .igraph import IGraph
from .resolution import ResolutionGraph


def ascii_figure(graph: IGraph, title: str = "") -> str:
    """A deterministic text rendering of *graph*.

    >>> from ..datalog.parser import parse_rule
    >>> from .igraph import build_igraph
    >>> print(ascii_figure(build_igraph(parse_rule(
    ...     "P(x, y) :- A(x, z), P(z, y).")), title="Figure 1(a)"))
    Figure 1(a)
      vertices: x, y, z
      x →(1) z        [P, weight +1]
      y →(2) y        [P, weight +1, self-loop]
      x —(A)— z       [weight 0]
    """
    lines = []
    if title:
        lines.append(title)
    names = ", ".join(sorted(subscript(v.name) for v in graph.vertices))
    lines.append(f"  vertices: {names}")
    for edge in sorted(graph.directed, key=lambda e: e.position):
        loop = ", self-loop" if edge.is_self_loop else ""
        lines.append(
            f"  {subscript(edge.tail.name)} →({edge.position + 1}) "
            f"{subscript(edge.head.name)}        "
            f"[{graph.predicate}, weight +1{loop}]")
    for edge in sorted(graph.undirected,
                       key=lambda e: (e.atom_index, e.label,
                                      e.left.name, e.right.name)):
        lines.append(
            f"  {subscript(edge.left.name)} —({edge.label})— "
            f"{subscript(edge.right.name)}       [weight 0]")
    return "\n".join(lines)


def ascii_resolution(resolution: ResolutionGraph, title: str = "") -> str:
    """Text rendering of a resolution graph, frontier included."""
    base = ascii_figure(resolution.graph, title)
    frontier = ", ".join(subscript(v.name) for v in resolution.frontier)
    return (f"{base}\n  frontier (recursive atom of expansion "
            f"{resolution.level}): {frontier}")


def ascii_reduced(reduced, title: str = "") -> str:
    """Text rendering of a reduced (cluster-compressed) graph.

    Shows the anchor-level structure the classifier actually tests:
    directed edges, compressed undirected edges with their concatenated
    labels, hyper-clusters (the dependence witnesses), and decorations.
    """
    lines = []
    if title:
        lines.append(title)
    anchors = ", ".join(sorted(subscript(v.name)
                               for v in reduced.anchors))
    lines.append(f"  anchors: {anchors}")
    for edge in sorted(reduced.directed, key=lambda e: e.position):
        lines.append(f"  {subscript(edge.tail.name)} "
                     f"→({edge.position + 1}) "
                     f"{subscript(edge.head.name)}")
    for comp_edge in sorted(reduced.compressed,
                            key=lambda e: (e.label, e.left.name)):
        lines.append(f"  {subscript(comp_edge.left.name)} "
                     f"—[{comp_edge.label}]— "
                     f"{subscript(comp_edge.right.name)}   (compressed)")
    for cluster in sorted(reduced.hyper, key=lambda h: h.label):
        names = ", ".join(sorted(subscript(v.name)
                                 for v in cluster.anchors))
        lines.append(f"  hyper[{cluster.label}]({names})   "
                     f"(ties {len(cluster.anchors)} anchors → dependent)")
    for decoration in reduced.decorations:
        anchor = (subscript(decoration.anchor.name)
                  if decoration.anchor else "—")
        lines.append(f"  decoration[{decoration.label}] at {anchor}")
    return "\n".join(lines)


def to_dot(graph: IGraph, name: str = "igraph") -> str:
    """Graphviz DOT source for *graph*."""
    lines = [f"graph {name} {{", "  rankdir=LR;"]
    for vertex in sorted(graph.vertices, key=lambda v: v.name):
        lines.append(f'  "{vertex.name}" [shape=circle];')
    for edge in sorted(graph.directed, key=lambda e: e.position):
        lines.append(
            f'  "{edge.tail.name}" -- "{edge.head.name}" '
            f'[dir=forward, label="+1", color=black];')
    for edge in sorted(graph.undirected,
                       key=lambda e: (e.atom_index, e.label)):
        lines.append(
            f'  "{edge.left.name}" -- "{edge.right.name}" '
            f'[label="{edge.label}", style=dashed];')
    lines.append("}")
    return "\n".join(lines)
