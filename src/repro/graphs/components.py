"""Connected components of the hybrid I-graph.

Connectivity here treats every edge — directed or undirected — as a
link; this is the notion behind the paper's "disjoint" cycles and its
component-wise classification (Theorem 12 argues per component).
"""

from __future__ import annotations

from ..datalog.terms import Variable
from .igraph import IGraph


def components(graph: IGraph) -> tuple[frozenset[Variable], ...]:
    """The connected components of *graph*, largest-name-sorted for
    determinism.

    >>> from ..datalog.parser import parse_rule
    >>> from .igraph import build_igraph
    >>> g = build_igraph(parse_rule(
    ...     "P(x, y) :- A(x, z), P(z, y)."))
    >>> sorted(sorted(v.name for v in comp) for comp in components(g))
    [['x', 'z'], ['y']]
    """
    adjacency: dict[Variable, set[Variable]] = {
        v: set() for v in graph.vertices}
    for edge in graph.directed:
        adjacency[edge.tail].add(edge.head)
        adjacency[edge.head].add(edge.tail)
    for edge in graph.undirected:
        adjacency[edge.left].add(edge.right)
        adjacency[edge.right].add(edge.left)

    seen: set[Variable] = set()
    out: list[frozenset[Variable]] = []
    for start in sorted(graph.vertices, key=lambda v: v.name):
        if start in seen:
            continue
        stack = [start]
        component: set[Variable] = set()
        while stack:
            vertex = stack.pop()
            if vertex in component:
                continue
            component.add(vertex)
            stack.extend(adjacency[vertex] - component)
        seen.update(component)
        out.append(frozenset(component))
    return tuple(out)


def component_subgraph(graph: IGraph,
                       component: frozenset[Variable]) -> IGraph:
    """The restriction of *graph* to the vertices of *component*."""
    directed = tuple(e for e in graph.directed if e.tail in component)
    undirected = tuple(e for e in graph.undirected if e.left in component)
    return IGraph(component, directed, undirected, graph.predicate)


def nontrivial_components(graph: IGraph) -> tuple[IGraph, ...]:
    """Component subgraphs that contain at least one directed edge.

    Trivial components (only non-recursive predicates among themselves)
    play no role in the classification and are dropped here.
    """
    out = []
    for component in components(graph):
        subgraph = component_subgraph(graph, component)
        if subgraph.is_nontrivial:
            out.append(subgraph)
    return tuple(out)


def trivial_components(graph: IGraph) -> tuple[IGraph, ...]:
    """Component subgraphs with no directed edge."""
    out = []
    for component in components(graph):
        subgraph = component_subgraph(graph, component)
        if not subgraph.is_nontrivial:
            out.append(subgraph)
    return tuple(out)
