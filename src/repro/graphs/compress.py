"""Compression of undirected connectivity (the paper's §3 Remark).

The paper observes that several undirected edges "can be compressed
into one edge": in ::

    P(x, y) :- A(x, u) ∧ B(x, z) ∧ C(z, u) ∧ P(u, y)

the trivial triangle ``x—z—u—x`` collapses to a single undirected edge
``x —[ABC]— u`` and the formula has two independent unit cycles.

We formalise the remark as follows.  Call the vertices incident to
directed edges *anchors*.  Remove the directed edges; the remaining
undirected sub-graph falls apart into connected *clusters*.  A cluster
touching

* **zero or one** anchors is a *decoration* — it contains no directed
  edge and cannot take part in any non-trivial cycle, so it is dropped
  from the cycle analysis (it still matters for determined-variable
  propagation, which works on the full graph);
* **exactly two** anchors acts as a single compressed undirected edge
  between them, labelled with the concatenation of its predicates;
* **three or more** anchors ties that many recursion positions
  together — any non-trivial cycle through it is *dependent* (class E),
  which the reduction records as a :class:`HyperCluster`.

The result is the :class:`ReducedGraph` on which the classifier tests
independence, one-directionality and cycle weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.terms import Variable
from .edges import DirectedEdge
from .igraph import IGraph


@dataclass(frozen=True, slots=True)
class CompressedEdge:
    """A cluster with exactly two anchors, acting as one undirected edge.

    Field names mirror :class:`~repro.graphs.edges.UndirectedEdge` so
    traversal machinery treats both uniformly (weight 0).
    """

    left: Variable
    right: Variable
    label: str
    cluster: frozenset[Variable]

    WEIGHT = 0

    def endpoints(self) -> frozenset[Variable]:
        """The two anchor endpoints."""
        return frozenset((self.left, self.right))

    def other(self, vertex: Variable) -> Variable:
        """The endpoint opposite *vertex*."""
        if vertex == self.left:
            return self.right
        if vertex == self.right:
            return self.left
        raise ValueError(f"{vertex} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.left} —[{self.label}]— {self.right}"


@dataclass(frozen=True, slots=True)
class HyperCluster:
    """A cluster tying three or more anchors together (dependence)."""

    anchors: frozenset[Variable]
    label: str
    cluster: frozenset[Variable]

    def __str__(self) -> str:
        names = ", ".join(sorted(v.name for v in self.anchors))
        return f"hyper[{self.label}]({names})"


@dataclass(frozen=True, slots=True)
class Decoration:
    """A cluster touching at most one anchor (ignored by cycle analysis)."""

    anchor: Variable | None
    label: str
    cluster: frozenset[Variable]


@dataclass(frozen=True)
class ReducedGraph:
    """The anchor-level multigraph obtained by cluster compression."""

    source: IGraph
    anchors: frozenset[Variable]
    directed: tuple[DirectedEdge, ...]
    compressed: tuple[CompressedEdge, ...]
    hyper: tuple[HyperCluster, ...]
    decorations: tuple[Decoration, ...]

    # -- adjacency over the reduced multigraph ------------------------

    def edges_at(self, vertex: Variable):
        """All reduced edges (directed either role, compressed) at *vertex*."""
        out: list = [e for e in self.directed
                     if vertex in (e.tail, e.head)]
        out.extend(e for e in self.compressed
                   if vertex in (e.left, e.right))
        return tuple(out)

    def degree(self, vertex: Variable) -> int:
        """Reduced incidence count; directed self-loops count twice."""
        count = 0
        for edge in self.directed:
            if edge.is_self_loop and edge.tail == vertex:
                count += 2
            else:
                count += int(vertex in (edge.tail, edge.head))
        for comp_edge in self.compressed:
            count += int(vertex in (comp_edge.left, comp_edge.right))
        return count

    def hyper_at(self, vertex: Variable) -> tuple[HyperCluster, ...]:
        """Hyper-clusters one of whose anchors is *vertex*."""
        return tuple(h for h in self.hyper if vertex in h.anchors)

    # -- components ----------------------------------------------------

    def component_partition(self) -> tuple[frozenset[Variable], ...]:
        """Connected components of the reduced multigraph over anchors.

        Hyper-clusters connect all their anchors.
        """
        adjacency: dict[Variable, set[Variable]] = {
            v: set() for v in self.anchors}
        for edge in self.directed:
            adjacency[edge.tail].add(edge.head)
            adjacency[edge.head].add(edge.tail)
        for comp_edge in self.compressed:
            adjacency[comp_edge.left].add(comp_edge.right)
            adjacency[comp_edge.right].add(comp_edge.left)
        for cluster in self.hyper:
            anchor_list = sorted(cluster.anchors, key=lambda v: v.name)
            for i, first in enumerate(anchor_list):
                for second in anchor_list[i + 1:]:
                    adjacency[first].add(second)
                    adjacency[second].add(first)

        seen: set[Variable] = set()
        out: list[frozenset[Variable]] = []
        for start in sorted(self.anchors, key=lambda v: v.name):
            if start in seen:
                continue
            stack = [start]
            component: set[Variable] = set()
            while stack:
                vertex = stack.pop()
                if vertex in component:
                    continue
                component.add(vertex)
                stack.extend(adjacency[vertex] - component)
            seen.update(component)
            out.append(frozenset(component))
        return tuple(out)

    def __str__(self) -> str:
        parts = [str(e) for e in self.directed]
        parts += [str(e) for e in self.compressed]
        parts += [str(h) for h in self.hyper]
        return "; ".join(parts) if parts else "(empty)"


def _cluster_label(graph: IGraph, cluster: frozenset[Variable]) -> str:
    """Concatenated predicate label, in body order ("ABC" in the paper)."""
    labels: list[str] = []
    for edge in sorted(graph.undirected,
                       key=lambda e: (e.atom_index, e.label)):
        if edge.left in cluster and edge.label not in labels:
            labels.append(edge.label)
    return "".join(labels)


def reduce_graph(graph: IGraph) -> ReducedGraph:
    """Compress *graph*'s undirected clusters into a reduced multigraph.

    >>> from ..datalog.parser import parse_rule
    >>> from .igraph import build_igraph
    >>> g = build_igraph(parse_rule(
    ...     "P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y)."))
    >>> reduced = reduce_graph(g)
    >>> [str(e) for e in reduced.compressed]
    ['u —[ABC]— x']
    """
    anchors = graph.anchors
    adjacency: dict[Variable, set[Variable]] = {}
    for edge in graph.undirected:
        adjacency.setdefault(edge.left, set()).add(edge.right)
        adjacency.setdefault(edge.right, set()).add(edge.left)

    seen: set[Variable] = set()
    compressed: list[CompressedEdge] = []
    hyper: list[HyperCluster] = []
    decorations: list[Decoration] = []
    for start in sorted(adjacency, key=lambda v: v.name):
        if start in seen:
            continue
        stack = [start]
        cluster: set[Variable] = set()
        while stack:
            vertex = stack.pop()
            if vertex in cluster:
                continue
            cluster.add(vertex)
            stack.extend(adjacency[vertex] - cluster)
        seen.update(cluster)
        frozen = frozenset(cluster)
        cluster_anchors = sorted(frozen & anchors, key=lambda v: v.name)
        label = _cluster_label(graph, frozen)
        if len(cluster_anchors) == 2:
            compressed.append(CompressedEdge(
                cluster_anchors[0], cluster_anchors[1], label, frozen))
        elif len(cluster_anchors) > 2:
            hyper.append(HyperCluster(
                frozenset(cluster_anchors), label, frozen))
        else:
            anchor = cluster_anchors[0] if cluster_anchors else None
            decorations.append(Decoration(anchor, label, frozen))

    return ReducedGraph(source=graph,
                        anchors=anchors,
                        directed=graph.directed,
                        compressed=tuple(compressed),
                        hyper=tuple(hyper),
                        decorations=tuple(decorations))
