"""Potential (level) assignment and Ioannidis's bound machinery.

Ioannidis's theorem, as the paper states it: a recursive formula with
no permutational patterns is bounded iff its I-graph contains no cycle
of non-zero weight, and the tight rank bound is then the maximum weight
of any path in the graph.

Both halves reduce to a classic potential argument.  Walk each
component assigning a potential ``φ`` with ``φ(head) = φ(tail) + 1``
across directed edges and ``φ(u) = φ(v)`` across undirected ones:

* a conflict during the walk exhibits a **non-zero-weight cycle**;
* with consistent potentials, the weight of *any* path between two
  vertices equals ``φ(target) − φ(source)``, so the maximum path
  weight of a component is simply ``max φ − min φ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.terms import Variable
from .igraph import IGraph


@dataclass(frozen=True)
class PotentialResult:
    """Outcome of the potential assignment over one I-graph.

    Attributes
    ----------
    consistent:
        True iff every cycle of the graph has weight 0.
    potentials:
        The assignment, one integer per vertex (only meaningful per
        component — each component is normalised to start at 0).
        Vertices of inconsistent components carry the first value the
        walk reached.
    conflict_vertices:
        When inconsistent, a pair of values ``(vertex, expected, found)``
        witnessing the first conflict, else None.
    component_spreads:
        ``max φ − min φ`` per *consistent* component, keyed by the
        component's lexicographically smallest vertex.
    """

    consistent: bool
    potentials: dict[Variable, int]
    conflict: tuple[Variable, int, int] | None
    component_spreads: dict[Variable, int]

    @property
    def max_path_weight(self) -> int | None:
        """Ioannidis's bound: the maximum path weight over the graph.

        None when the graph has a non-zero-weight cycle (path weights
        are then unbounded).
        """
        if not self.consistent:
            return None
        if not self.component_spreads:
            return 0
        return max(self.component_spreads.values())


def assign_potentials(graph: IGraph) -> PotentialResult:
    """Assign potentials by BFS over every component of *graph*.

    >>> from ..datalog.parser import parse_rule
    >>> from .igraph import build_igraph
    >>> g = build_igraph(parse_rule(
    ...     "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), "
    ...     "P(z, y1, z1, u1)."))
    >>> result = assign_potentials(g)
    >>> result.consistent, result.max_path_weight
    (True, 2)
    """
    # adjacency with signed weights; undirected edges weigh 0 both ways
    adjacency: dict[Variable, list[tuple[Variable, int]]] = {
        v: [] for v in graph.vertices}
    for edge in graph.directed:
        adjacency[edge.tail].append((edge.head, +1))
        adjacency[edge.head].append((edge.tail, -1))
    for edge in graph.undirected:
        adjacency[edge.left].append((edge.right, 0))
        adjacency[edge.right].append((edge.left, 0))

    potentials: dict[Variable, int] = {}
    spreads: dict[Variable, int] = {}
    consistent = True
    conflict: tuple[Variable, int, int] | None = None

    for root in sorted(graph.vertices, key=lambda v: v.name):
        if root in potentials:
            continue
        potentials[root] = 0
        queue = [root]
        component: list[Variable] = [root]
        component_ok = True
        while queue:
            vertex = queue.pop(0)
            base = potentials[vertex]
            for neighbour, weight in adjacency[vertex]:
                expected = base + weight
                known = potentials.get(neighbour)
                if known is None:
                    potentials[neighbour] = expected
                    component.append(neighbour)
                    queue.append(neighbour)
                elif known != expected:
                    component_ok = False
                    if conflict is None:
                        conflict = (neighbour, expected, known)
        if component_ok:
            values = [potentials[v] for v in component]
            spreads[root] = max(values) - min(values)
        else:
            consistent = False

    return PotentialResult(consistent=consistent,
                           potentials=potentials,
                           conflict=conflict,
                           component_spreads=spreads)


def has_nonzero_weight_cycle(graph: IGraph) -> bool:
    """True iff some cycle of *graph* has non-zero weight."""
    return not assign_potentials(graph).consistent


def max_path_weight(graph: IGraph) -> int | None:
    """The maximum path weight, or None if some cycle weighs non-zero."""
    return assign_potentials(graph).max_path_weight


def directed_path_weight(graph: IGraph, source: Variable,
                         target: Variable) -> int | None:
    """Weight of the pure-directed path from *source* to *target*.

    Follows out-edges only (each vertex has at most one); None when
    *target* is not reachable that way.  Used to check resolution-graph
    facts such as "the weight from x to z₁ is two" (Figure 2(c)).
    """
    weight = 0
    vertex = source
    seen = {vertex}
    while vertex != target:
        out = graph.out_edge(vertex)
        if out is None:
            return None
        vertex = out.head
        weight += 1
        if vertex in seen:
            return None
        seen.add(vertex)
    return weight
