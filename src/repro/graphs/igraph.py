"""Construction of the I-graph of a linear recursive rule.

The I-graph (named for Ioannidis, who introduced the construction the
paper builds on) is the labelled, weighted, hybrid graph
``G = (V, E_u, E_d, W, L)`` of section 2:

* one vertex per variable of the rule;
* a directed edge of weight +1 from each consequent variable to the
  antecedent variable in the same recursive-predicate position;
* undirected edges of weight 0 between the variables of each
  non-recursive body atom, labelled with the predicate.

Because the paper forbids a variable from occurring twice under the
recursive predicate, every vertex is the tail of at most one directed
edge and the head of at most one — the directed sub-graph is a disjoint
union of simple paths and simple cycles, a fact the classifier exploits
throughout.

For non-binary EDB atoms the variables are pairwise connected (a
clique); for the paper's examples, which are all unary or binary, this
coincides with the paper's single-edge picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from ..datalog.atoms import Atom
from ..datalog.errors import RuleValidationError
from ..datalog.rules import RecursiveRule, Rule
from ..datalog.terms import Variable
from .edges import DirectedEdge, Edge, UndirectedEdge


@dataclass(frozen=True)
class IGraph:
    """The I-graph of a linear recursive rule.

    Instances are immutable; adjacency maps are computed on demand and
    cached by :func:`build_igraph`-produced helper methods.
    """

    vertices: frozenset[Variable]
    directed: tuple[DirectedEdge, ...]
    undirected: tuple[UndirectedEdge, ...]
    predicate: str

    # -- adjacency ----------------------------------------------------

    def out_edge(self, vertex: Variable) -> DirectedEdge | None:
        """The unique directed edge leaving *vertex*, if any."""
        for edge in self.directed:
            if edge.tail == vertex:
                return edge
        return None

    def in_edge(self, vertex: Variable) -> DirectedEdge | None:
        """The unique directed edge entering *vertex*, if any."""
        for edge in self.directed:
            if edge.head == vertex:
                return edge
        return None

    def undirected_at(self, vertex: Variable) -> tuple[UndirectedEdge, ...]:
        """All undirected edges incident to *vertex*."""
        return tuple(e for e in self.undirected
                     if vertex in (e.left, e.right))

    def edges_at(self, vertex: Variable) -> tuple[Edge, ...]:
        """All edges (directed in either role, undirected) at *vertex*."""
        out: list[Edge] = [e for e in self.directed
                           if vertex in (e.tail, e.head)]
        out.extend(self.undirected_at(vertex))
        return tuple(out)

    def degree(self, vertex: Variable) -> int:
        """Total incidence count (self-loops count twice)."""
        count = 0
        for edge in self.directed:
            if edge.is_self_loop and edge.tail == vertex:
                count += 2
            else:
                count += int(vertex in (edge.tail, edge.head))
        for edge in self.undirected:
            count += int(vertex in (edge.left, edge.right))
        return count

    # -- anchors and decorations ---------------------------------------

    @property
    def anchors(self) -> frozenset[Variable]:
        """Vertices incident to at least one directed edge.

        These are the variables that participate in the recursion; the
        paper's cycle analysis happens between them, with undirected
        connectivity compressed (see :mod:`repro.graphs.compress`).
        """
        out: set[Variable] = set()
        for edge in self.directed:
            out.add(edge.tail)
            out.add(edge.head)
        return frozenset(out)

    @property
    def is_nontrivial(self) -> bool:
        """True iff the graph has at least one directed edge."""
        return bool(self.directed)

    # -- misc -----------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Number of recursive argument positions (directed edges)."""
        return len(self.directed)

    def edge_summary(self) -> str:
        """A deterministic one-line-per-edge listing (used by figures)."""
        lines = [f"directed:   {e}" for e in sorted(
            self.directed, key=lambda e: e.position)]
        lines += [f"undirected: {e}" for e in sorted(
            self.undirected, key=lambda e: (e.atom_index, e.label))]
        return "\n".join(lines)

    def __str__(self) -> str:
        vertex_names = ", ".join(sorted(v.name for v in self.vertices))
        return (f"IGraph({self.predicate}; vertices: {vertex_names}; "
                f"{len(self.directed)} directed, "
                f"{len(self.undirected)} undirected)")


def undirected_edges_of_atom(body_atom: Atom,
                             atom_index: int) -> list[UndirectedEdge]:
    """The undirected clique contributed by one non-recursive atom."""
    distinct: list[Variable] = []
    for variable in body_atom.variables:
        if variable not in distinct:
            distinct.append(variable)
    return [UndirectedEdge(left, right, body_atom.predicate, atom_index)
            for left, right in combinations(distinct, 2)]


def build_igraph(rule: RecursiveRule | Rule,
                 strict: bool = False) -> IGraph:
    """Build the I-graph of a linear recursive rule.

    Accepts either a validated :class:`RecursiveRule` or a plain
    :class:`Rule` (validated on the fly with ``strict=False`` so that
    expansions — whose fresh variables are always distinct — and the
    paper's deliberately non-range-restricted illustrations can still
    be drawn).

    >>> from ..datalog.parser import parse_rule
    >>> graph = build_igraph(parse_rule("P(x, y) :- A(x, z), P(z, y)."))
    >>> sorted(str(e) for e in graph.directed)
    ['x →(1) z', 'y →(2) y']
    >>> [str(e) for e in graph.undirected]
    ['x —[A]— z']
    """
    if isinstance(rule, Rule):
        rule = RecursiveRule(rule, strict=strict)
    head_args = rule.head.args
    body_args = rule.recursive_atom.args
    directed: list[DirectedEdge] = []
    for position, (head_term, body_term) in enumerate(
            zip(head_args, body_args)):
        if not isinstance(head_term, Variable) or not isinstance(
                body_term, Variable):
            raise RuleValidationError(
                "recursive-predicate arguments must be variables "
                f"(position {position + 1})")
        directed.append(DirectedEdge(head_term, body_term, position))

    undirected: list[UndirectedEdge] = []
    for atom_index, body_atom in enumerate(rule.nonrecursive_atoms):
        undirected.extend(undirected_edges_of_atom(body_atom, atom_index))

    return IGraph(vertices=rule.rule.variables,
                  directed=tuple(directed),
                  undirected=tuple(undirected),
                  predicate=rule.predicate)


def igraph_from_parts(vertices: Iterable[Variable],
                      directed: Iterable[DirectedEdge],
                      undirected: Iterable[UndirectedEdge],
                      predicate: str = "P") -> IGraph:
    """Assemble an I-graph from explicit parts (used by resolution graphs)."""
    return IGraph(frozenset(vertices), tuple(directed), tuple(undirected),
                  predicate)
