"""The paper's graph model: I-graphs, resolution graphs, cycles.

This package implements section 2 of the paper (the labelled, weighted,
hybrid graph associated with a linear recursive rule and its k-th
resolution graphs) plus the structural analyses the classification in
sections 3–10 is built on: connected components, compression of
undirected clusters, cycle extraction, and the potential/level argument
behind Ioannidis's boundedness theorem.
"""

from .compress import (CompressedEdge, Decoration, HyperCluster,
                       ReducedGraph, reduce_graph)
from .components import (component_subgraph, components,
                         nontrivial_components, trivial_components)
from .cycles import (Cycle, fundamental_cycles,
                     independent_cycle_of_component, permutational_cycles,
                     self_loop_cycle)
from .edges import (DirectedEdge, Edge, TraversedEdge, UndirectedEdge,
                    path_weight)
from .igraph import IGraph, build_igraph, igraph_from_parts
from .potential import (PotentialResult, assign_potentials,
                        directed_path_weight, has_nonzero_weight_cycle,
                        max_path_weight)
from .render import (ascii_figure, ascii_reduced, ascii_resolution,
                     to_dot)
from .resolution import (ResolutionGraph, resolution_graph,
                         resolution_trace)

__all__ = [
    "CompressedEdge", "Cycle", "Decoration", "DirectedEdge", "Edge",
    "HyperCluster", "IGraph", "PotentialResult", "ReducedGraph",
    "ResolutionGraph", "TraversedEdge", "UndirectedEdge", "ascii_figure",
    "ascii_reduced",
    "ascii_resolution", "assign_potentials", "build_igraph",
    "component_subgraph", "components", "directed_path_weight",
    "fundamental_cycles", "has_nonzero_weight_cycle",
    "igraph_from_parts", "independent_cycle_of_component",
    "max_path_weight", "nontrivial_components", "path_weight",
    "permutational_cycles", "reduce_graph", "resolution_graph",
    "resolution_trace", "self_loop_cycle", "to_dot",
    "trivial_components",
]
