"""Compilation of queries against classified recursive formulas.

This module turns a recursion system plus a query form (adornment)
into a :class:`CompiledFormula`: the strategy the classification
licenses, the symbolic evaluation plan in the paper's notation, and —
for stable formulas — the per-cycle chain specification the compiled
engine executes.

Strategy selection follows the paper:

* **BOUNDED** (classes A2, A4, B, D and their disjoint combinations) —
  the recursion is pseudo recursion; the plan is the finite union of
  the exit expansions up to the rank bound, each ordered
  selection-first.
* **STABLE** (disjoint unit cycles, Theorem 1) — per-position chain
  iteration: bound positions iterate their cycle relation from the
  query constant (``σA^k`` branches), the exit is joined at each
  depth, unbound positions walk their chains backward from the exit.
* **TRANSFORM** (classes A3, A4-mixed, A5) — unfold LCM(cycle
  weights) times (Theorems 2/4), then compile the stable result.
* **ITERATIVE** (classes C, E, F) — no stable transformation exists
  (Theorems 5, 8, 9); the plan is derived from the resolution graph:
  the steady-state expansion is ordered selection-first, the atoms one
  further unfolding adds form the per-iteration block ``[...]^k``, and
  disconnected groups become Cartesian products or existence checks —
  exactly how the paper derives the plans of Examples 9, 11 and 14.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..datalog.atoms import Atom
from ..datalog.program import RecursionSystem
from ..datalog.rules import Rule
from ..datalog.terms import Variable
from ..graphs.components import components
from .bindings import (Adornment, BindingSequence, adornment_from_string,
                       adornment_to_string, binding_sequence)
from .classes import Boundedness
from .classifier import Classification, classify
from .plans import (Branches, Exists, JoinChain, PlanNode, Power, Product,
                    Rel, Select, Steps, UnionOverK, render)
from .transform import StableTransformation, to_stable

#: Name used for the generic exit relation in symbolic plans.
EXIT_NAME = "E"


class Strategy(enum.Enum):
    """How a compiled query will be evaluated."""

    BOUNDED = "bounded"      #: finite union of exit expansions
    STABLE = "stable"        #: per-cycle chain iteration
    TRANSFORM = "transform"  #: unfold to stable, then chain iteration
    ITERATIVE = "iterative"  #: resolution-graph-driven iteration

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class CycleSpec:
    """One unit cycle of a stable formula, ready for execution.

    Attributes
    ----------
    position:
        0-based recursive argument position the cycle carries.
    head_var / body_var:
        The consequent and antecedent variables of the position.
    is_permutational:
        True for self-loops (``head_var == body_var``); the chain step
        is then the identity, filtered by any decoration atoms.
    atoms:
        The non-recursive atoms whose variables live in this cycle's
        component — the conjunctive query one chain step evaluates.
    label:
        Concatenated predicate names (the paper's "AB" notation);
        empty for a bare self-loop.
    """

    position: int
    head_var: Variable
    body_var: Variable
    is_permutational: bool
    atoms: tuple[Atom, ...]
    label: str


@dataclass(frozen=True)
class StableCompilation:
    """A stable system factored into per-position cycle chains."""

    system: RecursionSystem
    classification: Classification
    specs: tuple[CycleSpec, ...]
    free_atoms: tuple[Atom, ...]

    def spec_at(self, position: int) -> CycleSpec:
        """The cycle spec of the given argument position."""
        return self.specs[position]


def compile_stable(system: RecursionSystem,
                   classification: Classification | None = None
                   ) -> StableCompilation:
    """Factor a strongly stable system into per-position cycle specs.

    Raises ``ValueError`` when the system is not strongly stable.

    >>> from ..datalog.parser import parse_system
    >>> s = parse_system(
    ...     "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).")
    >>> comp = compile_stable(s)
    >>> [(spec.position, spec.label) for spec in comp.specs]
    [(0, 'A'), (1, 'B'), (2, 'C')]
    """
    rule = system.recursive
    if classification is None:
        classification = classify(rule)
    if not classification.is_strongly_stable:
        raise ValueError(
            f"system is not strongly stable "
            f"({classification.formula_class}): {rule}")

    graph = classification.graph
    comps = components(graph)

    def component_of(var: Variable) -> frozenset[Variable]:
        return next(c for c in comps if var in c)

    head_vars = rule.head_variables
    body_vars = rule.body_recursive_variables
    assigned: set[int] = set()
    specs: list[CycleSpec] = []
    for position, (head_var, body_var) in enumerate(
            zip(head_vars, body_vars)):
        component = component_of(head_var)
        atoms: list[Atom] = []
        for atom_index, body_atom in enumerate(rule.nonrecursive_atoms):
            atom_vars = body_atom.variable_set()
            if atom_vars and atom_vars <= component:
                atoms.append(body_atom)
                assigned.add(atom_index)
        label = "".join(
            dict.fromkeys(a.predicate for a in atoms
                          if {head_var, body_var} & a.variable_set()))
        specs.append(CycleSpec(position=position,
                               head_var=head_var,
                               body_var=body_var,
                               is_permutational=head_var == body_var,
                               atoms=tuple(atoms),
                               label=label))

    free_atoms = tuple(
        body_atom
        for atom_index, body_atom in enumerate(rule.nonrecursive_atoms)
        if atom_index not in assigned)
    return StableCompilation(system=system,
                             classification=classification,
                             specs=tuple(specs),
                             free_atoms=free_atoms)


def stable_plan(compilation: StableCompilation,
                adornment: Adornment) -> PlanNode:
    """The paper's compiled formula for a stable system and query form.

    Bound rotational positions become ``σR^k`` branches, the exit is
    joined at every depth, unbound rotational positions walk their
    chain relations after the exit; permutational positions need no
    chain (bound ones select directly on the exit).
    """
    bound_branches: list[PlanNode] = []
    exit_selected = False
    for position in sorted(adornment):
        spec = compilation.spec_at(position)
        if spec.is_permutational:
            exit_selected = True
            if spec.atoms:
                bound_branches.append(Select(Rel(spec.label or "id")))
        else:
            bound_branches.append(Select(Power(Rel(spec.label))))

    after_exit: list[PlanNode] = []
    for spec in compilation.specs:
        if spec.position in adornment or spec.is_permutational:
            continue
        after_exit.append(Power(Rel(spec.label)))

    chain: list[PlanNode] = []
    if len(bound_branches) > 1:
        chain.append(Branches(tuple(bound_branches)))
    elif bound_branches:
        chain.append(bound_branches[0])
    exit_node: PlanNode = Rel(EXIT_NAME)
    if exit_selected:
        exit_node = Select(exit_node)
    chain.append(exit_node)
    chain.extend(after_exit)
    body: PlanNode = JoinChain(tuple(chain)) if len(chain) > 1 else chain[0]
    if compilation.free_atoms:
        gate = Exists(JoinChain(tuple(
            Rel(a.predicate) for a in compilation.free_atoms)))
        body = JoinChain((gate, body))
    return Steps((Select(Rel(EXIT_NAME)), UnionOverK(body, start=0)))


# ---------------------------------------------------------------------------
# Ordering a conjunctive body the paper's way: selections before joins,
# exit retrieval when stuck, Cartesian products / existence checks for
# disconnected groups, and [...]^k factoring of the per-expansion block.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _OrderedGroup:
    """One variable-connected group of an expansion body, ordered.

    ``down`` holds the atoms reachable from the query constants in
    greedy stage order (these get the σ and are evaluated before the
    exit); ``up`` the atoms reached backward from the exit; atoms
    disconnected from both are appended to ``down`` in body order.
    """

    down: tuple[Atom, ...]
    up: tuple[Atom, ...]
    has_exit: bool
    produces_answer: bool
    seeded: bool  # down[0] touches a query constant (gets the σ)


def _stage_order(atoms: list[Atom], seeds: set[Variable]
                 ) -> tuple[list[Atom], set[Variable]]:
    """Greedy stage ordering: repeatedly take every atom touching a
    determined variable (the paper's selections-first principle)."""
    ordered: list[Atom] = []
    determined = set(seeds)
    remaining = list(atoms)
    while True:
        stage = [a for a in remaining if a.variable_set() & determined]
        if not stage:
            return ordered, determined
        for body_atom in stage:
            ordered.append(body_atom)
            determined.update(body_atom.variable_set())
            remaining.remove(body_atom)


def _structure_body(atoms: tuple[Atom, ...], exit_atom: Atom | None,
                    constants: frozenset[Variable],
                    free_head_vars: frozenset[Variable]
                    ) -> list[_OrderedGroup]:
    """Split a body into connected groups and order each one."""
    everything: list[Atom] = list(atoms)
    if exit_atom is not None:
        everything.append(exit_atom)
    # Union-find over shared non-constant variables: two atoms that
    # only share a query constant are independent selections.
    group_of: dict[int, int] = {i: i for i in range(len(everything))}

    def find(i: int) -> int:
        while group_of[i] != i:
            group_of[i] = group_of[group_of[i]]
            i = group_of[i]
        return i

    var_home: dict[Variable, int] = {}
    for index, body_atom in enumerate(everything):
        for var in body_atom.variable_set() - constants:
            if var in var_home:
                group_of[find(index)] = find(var_home[var])
            else:
                var_home[var] = index

    grouped: dict[int, list[Atom]] = {}
    exit_group: int | None = None
    for index, body_atom in enumerate(everything):
        root = find(index)
        if exit_atom is not None and body_atom is exit_atom:
            exit_group = root
            continue
        grouped.setdefault(root, []).append(body_atom)
    if exit_atom is not None:
        grouped.setdefault(exit_group, [])

    out: list[_OrderedGroup] = []
    for root in sorted(grouped):
        members = grouped[root]
        has_exit = root == exit_group
        down, determined = _stage_order(members, set(constants))
        seeded = bool(down) and bool(down[0].variable_set() & constants)
        up: list[Atom] = []
        if has_exit and exit_atom is not None:
            determined |= exit_atom.variable_set()
            rest = [a for a in members if a not in down]
            up, determined = _stage_order(rest, determined)
        leftover = [a for a in members if a not in down and a not in up]
        down += leftover  # disconnected stragglers keep body order
        group_vars: set[Variable] = set()
        for body_atom in members:
            group_vars |= body_atom.variable_set()
        if has_exit and exit_atom is not None:
            group_vars |= exit_atom.variable_set()
        produces = bool(group_vars & (free_head_vars - constants))
        out.append(_OrderedGroup(down=tuple(down), up=tuple(up),
                                 has_exit=has_exit,
                                 produces_answer=produces,
                                 seeded=seeded))
    return out


def _display_name(predicate: str) -> str:
    """Synthesised generic exits print as the paper's ``E``."""
    if predicate.endswith(RecursionSystem.EXIT_SUFFIX):
        return EXIT_NAME
    return predicate


def _as_nodes(items: tuple[Atom, ...]) -> list[PlanNode]:
    return [Rel(_display_name(a.predicate)) for a in items]


def _collapse_stages(items: tuple[Atom, ...]) -> PlanNode:
    """Group consecutive variable-independent atoms into branches.

    Reproduces the paper's ``{A, B}-C`` notation in the s11 plan: two
    atoms with no shared variable evaluate as parallel branches.
    """
    nodes: list[PlanNode] = []
    index = 0
    while index < len(items):
        bunch = [items[index]]
        used = set(items[index].variable_set())
        probe = index + 1
        while probe < len(items) and not (
                items[probe].variable_set() & used):
            bunch.append(items[probe])
            used |= items[probe].variable_set()
            probe += 1
        if len(bunch) > 1:
            nodes.append(Branches(tuple(
                Rel(_display_name(a.predicate)) for a in bunch)))
        else:
            nodes.append(Rel(_display_name(bunch[0].predicate)))
        index = probe
    return nodes[0] if len(nodes) == 1 else JoinChain(tuple(nodes))


def _factor_side(sequence: tuple[Atom, ...],
                 levels: dict[Atom, int] | None,
                 shallow_max: int, is_down: bool) -> list[PlanNode]:
    """Factor one side (down or up chain) into nodes with a [...]^k block.

    Two heuristics, in order:

    * **level-uniform** — when the per-level atom multisets of the deep
      levels agree, one level's atoms form the iterated block and the
      shallow atoms the concrete prefix (down) or suffix (up); this
      reproduces the paper's s11 plan ``σA-C-B-[{A,B}-C]^k-E``.
    * **sequence alignment** — when atoms migrate between the down and
      up sides across expansions (class C formulas such as s9), find a
      split ``seq = prefix + block + suffix`` such that dropping the
      block leaves a sequence one period shorter with matching
      predicates; this reproduces ``σ(AB)^k-(E⋈B)``.

    Falls back to a shallow-first reordering when neither applies.
    """
    if not sequence:
        return []
    if levels is None:
        return [_collapse_stages(sequence)]
    shallow = tuple(a for a in sequence if levels[a] <= shallow_max)
    deep = tuple(a for a in sequence if levels[a] > shallow_max)
    if not deep:
        return [_collapse_stages(sequence)]

    # The deepest expansion level is a boundary artifact (its partner
    # atoms may sit on the other side of the exit) — exclude it from
    # the uniformity test and from block selection.
    boundary = max(levels[a] for a in deep)
    per_level: dict[int, list[str]] = {}
    for body_atom in deep:
        if levels[body_atom] == boundary:
            continue
        per_level.setdefault(levels[body_atom], []).append(
            body_atom.predicate)
    multisets = [tuple(sorted(preds)) for preds in per_level.values()]
    if per_level and len(set(multisets)) == 1:
        first_deep_level = min(per_level)
        block_atoms = tuple(a for a in deep
                            if levels[a] == first_deep_level)
        block = Power(_collapse_stages(block_atoms))
        if is_down:
            # The binding may enter through the deep atoms (class C
            # chains): keep the σ on whatever the stage order put
            # first.
            if shallow and sequence[0] in shallow:
                return [_collapse_stages(shallow), block]
            if shallow:
                return [block, _collapse_stages(shallow)]
            return [block]
        suffix = [_collapse_stages(shallow)] if shallow else []
        return [block] + suffix

    # Sequence alignment: one period of the deepest level's size.
    block_size = sum(1 for a in deep if levels[a] == boundary)
    predicates = [a.predicate for a in sequence]
    small = [a.predicate for a in sequence if levels[a] < boundary]
    for i in range(len(small) + 1):
        if (predicates[:i] == small[:i]
                and predicates[i + block_size:] == small[i:]):
            block_atoms = tuple(sequence[i:i + block_size])
            nodes: list[PlanNode] = []
            if i:
                nodes.append(_collapse_stages(tuple(sequence[:i])))
            nodes.append(Power(_collapse_stages(block_atoms)))
            if small[i:]:
                nodes.append(_collapse_stages(
                    tuple(sequence[i + block_size:])))
            return nodes

    # Fallback: shallow atoms first, deep atoms as the block.
    nodes = []
    if shallow:
        nodes.append(_collapse_stages(shallow))
    nodes.append(Power(_collapse_stages(deep)))
    return nodes


def _chain_nodes(group: _OrderedGroup,
                 levels: dict[Atom, int] | None = None,
                 shallow_max: int = 0) -> PlanNode:
    """Render one ordered group as a join chain with iteration blocks."""
    nodes: list[PlanNode] = []
    nodes.extend(_factor_side(group.down, levels, shallow_max,
                              is_down=True))
    if group.seeded and nodes:
        nodes[0] = Select(nodes[0])
    if group.has_exit:
        nodes.append(Rel(EXIT_NAME))
    nodes.extend(_factor_side(group.up, levels, shallow_max,
                              is_down=False))
    if not nodes:
        return Rel(EXIT_NAME)
    return nodes[0] if len(nodes) == 1 else JoinChain(tuple(nodes))


def _assemble_groups(groups: list[_OrderedGroup],
                     levels: dict[Atom, int] | None = None,
                     shallow_max: int = 0) -> PlanNode:
    """Combine ordered groups: products for answers, ∃ for the rest."""
    answer_parts: list[PlanNode] = []
    gates: list[PlanNode] = []
    for group in groups:
        chain = _chain_nodes(group, levels, shallow_max)
        if group.produces_answer:
            answer_parts.append(chain)
        else:
            gates.append(Exists(chain))
    if not answer_parts:
        return gates[0] if len(gates) == 1 else JoinChain(tuple(gates))
    body = (answer_parts[0] if len(answer_parts) == 1
            else Product(tuple(answer_parts)))
    if gates:
        body = JoinChain(tuple(gates) + (body,))
    return body


def bounded_plan(system: RecursionSystem,
                 classification: Classification,
                 adornment: Adornment) -> PlanNode:
    """Finite plan for a bounded formula: one chain per exit depth."""
    bound = classification.rank_bound
    assert bound is not None
    rule = system.recursive
    head_vars = rule.head_variables
    constants = frozenset(head_vars[i] for i in adornment)
    free = frozenset(head_vars) - constants
    steps: list[PlanNode] = []
    for depth in range(1, bound + 2):
        flattened = system.exit_expansion(depth)
        groups = _structure_body(tuple(flattened.body), None, constants,
                                 free)
        steps.append(_assemble_groups(groups))
    return Steps(tuple(steps))


def _atom_levels(system: RecursionSystem,
                 depth: int) -> tuple[Rule, dict[Atom, int]]:
    """The *depth*-th expansion with each body atom's creation level."""
    levels: dict[Atom, int] = {}
    previous: frozenset[Atom] = frozenset()
    expansion = system.recursive.rule
    for level in range(1, depth + 1):
        expansion = system.expansion(level)
        body = frozenset(a for a in expansion.body
                         if a.predicate != system.predicate)
        for body_atom in body - previous:
            levels[body_atom] = level
        previous = body
    return expansion, levels


def general_plan(system: RecursionSystem, adornment: Adornment,
                 sequence: BindingSequence) -> PlanNode:
    """Resolution-graph-driven plan for classes C, E and F.

    Following the paper's Example 11: the plan lists σE, a concrete
    step per expansion up to the binding period, then the infinite
    union whose [...]^k blocks come from factoring the deep expansion
    levels (one binding period deeper than the base).
    """
    rule = system.recursive
    head_vars = rule.head_variables
    constants = frozenset(head_vars[i] for i in adornment)
    free = frozenset(head_vars) - constants
    period = sequence.period

    steps: list[PlanNode] = [Select(Rel(EXIT_NAME))]
    for early in range(1, period + 1):
        expansion = system.expansion(early)
        body = tuple(a for a in expansion.body
                     if a.predicate != system.predicate)
        exit_atom = next(a for a in expansion.body
                         if a.predicate == system.predicate)
        groups = _structure_body(body, exit_atom, constants, free)
        steps.append(_assemble_groups(groups))

    depth = 2 + 2 * period
    expansion, levels = _atom_levels(system, depth)
    body = tuple(a for a in expansion.body
                 if a.predicate != system.predicate)
    exit_atom = next(a for a in expansion.body
                     if a.predicate == system.predicate)
    levels[exit_atom] = depth
    groups = _structure_body(body, exit_atom, constants, free)
    iterated = _assemble_groups(groups, levels, shallow_max=period)
    steps.append(UnionOverK(iterated, start=1))
    return Steps(tuple(steps))


@dataclass(frozen=True)
class CompiledFormula:
    """A query compiled against a classified recursion system."""

    system: RecursionSystem
    classification: Classification
    adornment: Adornment
    strategy: Strategy
    plan: PlanNode
    transformation: StableTransformation | None
    stable: StableCompilation | None
    binding: BindingSequence
    notes: tuple[str, ...]

    @property
    def plan_text(self) -> str:
        """The plan in the paper's notation."""
        return render(self.plan)

    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable view (for the CLI's --json output)."""
        arity = self.system.dimension
        return {
            "query_form": adornment_to_string(self.adornment, arity),
            "formula_class": str(self.classification.formula_class),
            "strategy": str(self.strategy),
            "binding_sequence": self.binding.describe(arity),
            "persistent_positions": sorted(
                i + 1 for i in self.binding.persistent_positions),
            "plan": self.plan_text,
            "notes": list(self.notes),
        }

    def describe(self) -> str:
        """Multi-line description: class, strategy, bindings, plan."""
        arity = self.system.dimension
        lines = [
            f"query form: "
            f"{self.system.predicate}"
            f"({adornment_to_string(self.adornment, arity)})",
            f"class:      {self.classification.describe()}",
            f"strategy:   {self.strategy}",
            f"bindings:   {self.binding.describe(arity)}",
            f"plan:       {self.plan_text}",
        ]
        lines.extend(f"note:       {note}" for note in self.notes)
        return "\n".join(lines)


def compile_query(system: RecursionSystem,
                  adornment: Adornment | str,
                  classification: Classification | None = None
                  ) -> CompiledFormula:
    """Compile a query form against *system*.

    *adornment* is either a frozenset of bound positions or the
    paper's ``"dvv"`` string notation.

    >>> from ..datalog.parser import parse_system
    >>> s = parse_system(
    ...     "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).")
    >>> compiled = compile_query(s, "dvv")
    >>> compiled.strategy
    <Strategy.ITERATIVE: 'iterative'>
    """
    if isinstance(adornment, str):
        adornment = adornment_from_string(adornment)
    if classification is None:
        classification = classify(system)
    if max(adornment, default=-1) >= system.dimension:
        raise ValueError(
            f"adornment mentions position {max(adornment) + 1} but the "
            f"predicate has arity {system.dimension}")
    sequence = binding_sequence(system.recursive, adornment)
    notes: list[str] = []

    if classification.boundedness is Boundedness.BOUNDED:
        plan = bounded_plan(system, classification, adornment)
        notes.append(
            f"bounded: rank ≤ {classification.rank_bound}; plan is a "
            f"finite union over exit depths 1.."
            f"{classification.rank_bound + 1}")
        return CompiledFormula(system, classification, adornment,
                               Strategy.BOUNDED, plan, None, None,
                               sequence, tuple(notes))

    if classification.is_strongly_stable:
        stable = compile_stable(system, classification)
        plan = stable_plan(stable, adornment)
        return CompiledFormula(system, classification, adornment,
                               Strategy.STABLE, plan, None, stable,
                               sequence, tuple(notes))

    if classification.is_transformable:
        transformation = to_stable(system, classification)
        stable = compile_stable(transformation.system,
                                transformation.classification)
        plan = stable_plan(stable, adornment)
        notes.append(
            f"unfolded {transformation.unfold_times}× (Theorem 2/4); "
            f"{EXIT_NAME} ranges over the "
            f"{len(transformation.system.exits)} exit expansions")
        return CompiledFormula(system, classification, adornment,
                               Strategy.TRANSFORM, plan, transformation,
                               stable, sequence, tuple(notes))

    plan = general_plan(system, adornment, sequence)
    if sequence.persistent_positions:
        arity = system.dimension
        notes.append(
            "query-dependently stable on positions "
            f"{{{', '.join(str(i + 1) for i in sorted(sequence.persistent_positions))}}}"
            f" (binding sequence {sequence.describe(arity)})")
    return CompiledFormula(system, classification, adornment,
                           Strategy.ITERATIVE, plan, None, None,
                           sequence, tuple(notes))
