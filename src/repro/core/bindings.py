"""Determined variables, adornments, and binding propagation.

The paper (after [Hens 84]) calls a variable *determined* when its
value is given in the query or derivable from a query constant through
selections and joins over non-recursive predicates only: "If x is a
determined variable and L(..x..y..) is a non-recursive predicate, then
y is also a determined variable."  On the I-graph this is a closure
over undirected edges.

An *adornment* records which recursive-predicate argument positions
are bound (the `d`/`v` patterns the paper writes as ``P(d, v, v)``).
Iterating the head→body adornment map produces the eventually-periodic
binding sequence behind the paper's (s12) discussion: the query
``P(d, v, v)`` becomes ``P(d, d, v)`` after one expansion and stays
there — query-dependent stabilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..datalog.rules import RecursiveRule
from ..datalog.terms import Variable
from ..graphs.igraph import IGraph, build_igraph

#: Bound argument positions of the recursive predicate, 0-based.
Adornment = frozenset[int]


def adornment_from_string(pattern: str) -> Adornment:
    """Parse the paper's ``d``/``v`` notation.

    >>> sorted(adornment_from_string("dvv"))
    [0]
    """
    allowed = set("dvbf")
    if not pattern or set(pattern) - allowed:
        raise ValueError(
            f"adornment must be over 'd'/'v' (or 'b'/'f'): {pattern!r}")
    return frozenset(i for i, ch in enumerate(pattern) if ch in "db")


def adornment_to_string(adornment: Adornment, arity: int) -> str:
    """Render an adornment in ``d``/``v`` notation.

    >>> adornment_to_string(frozenset({0}), 3)
    'dvv'
    """
    return "".join("d" if i in adornment else "v" for i in range(arity))


def all_adornments(arity: int) -> tuple[Adornment, ...]:
    """Every adornment over *arity* positions (2**arity of them)."""
    out = []
    for mask in range(1 << arity):
        out.append(frozenset(i for i in range(arity) if mask >> i & 1))
    return tuple(out)


def determined_closure(graph: IGraph,
                       start: Iterable[Variable]) -> frozenset[Variable]:
    """All variables determined once those in *start* are.

    Closure over the undirected edges of *graph*: selections and joins
    over non-recursive predicates propagate constants along them.
    Directed edges do *not* propagate — they stand for the recursive
    call, whose bindings the next expansion receives.
    """
    determined: set[Variable] = set(start)
    frontier = list(determined)
    while frontier:
        vertex = frontier.pop()
        for edge in graph.undirected_at(vertex):
            other = edge.other(vertex)
            if other not in determined:
                determined.add(other)
                frontier.append(other)
    return frozenset(determined)


def body_adornment(rule: RecursiveRule, adornment: Adornment,
                   graph: IGraph | None = None) -> Adornment:
    """The adornment the recursive body atom receives from the head.

    Head variables at the bound positions seed the determined closure;
    the result is the set of body recursive-atom positions whose
    variable lands in the closure.

    >>> from ..datalog.parser import parse_rule
    >>> rule = RecursiveRule(parse_rule(
    ...     "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), "
    ...     "P(u, v, w)."), strict=False)
    >>> sorted(body_adornment(rule, frozenset({0})))
    [0, 1]
    """
    if graph is None:
        graph = build_igraph(rule)
    head_vars = rule.head_variables
    seeds = [head_vars[i] for i in adornment]
    closure = determined_closure(graph, seeds)
    body_vars = rule.body_recursive_variables
    return frozenset(i for i, var in enumerate(body_vars)
                     if var in closure)


@dataclass(frozen=True)
class BindingSequence:
    """The eventually periodic adornment sequence of a query form.

    ``states[0]`` is the query adornment; ``states[k]`` the adornment
    of the recursive call after k expansions.  ``prefix_length`` is the
    number of states before the cycle starts and ``period`` the cycle
    length, so ``states`` has ``prefix_length + period`` entries.
    """

    states: tuple[Adornment, ...]
    prefix_length: int
    period: int

    @property
    def steady_states(self) -> tuple[Adornment, ...]:
        """The adornments inside the cycle."""
        return self.states[self.prefix_length:]

    def state_at(self, k: int) -> Adornment:
        """The adornment after k expansions, for any k ≥ 0."""
        if k < len(self.states):
            return self.states[k]
        offset = (k - self.prefix_length) % self.period
        return self.states[self.prefix_length + offset]

    @property
    def stabilises(self) -> bool:
        """True when the sequence reaches a fixed adornment (period 1)."""
        return self.period == 1

    @property
    def persistent_positions(self) -> Adornment:
        """Positions bound in *every* steady state — the selections the
        compiled evaluation can push through all expansions."""
        steady = self.steady_states
        out = set(steady[0])
        for state in steady[1:]:
            out &= state
        return frozenset(out)

    def describe(self, arity: int) -> str:
        """Render as ``dvv → ddv → (ddv)*`` style text."""
        rendered = [adornment_to_string(s, arity) for s in self.states]
        prefix = rendered[:self.prefix_length]
        cycle = rendered[self.prefix_length:]
        parts = prefix + [f"({' → '.join(cycle)})*"]
        return " → ".join(parts)


def binding_sequence(rule: RecursiveRule,
                     adornment: Adornment) -> BindingSequence:
    """Iterate the head→body adornment map until it cycles.

    There are at most 2**arity adornments, so the sequence always
    becomes periodic; the map is deterministic, so the structure is a
    rho: a prefix followed by a cycle.

    >>> from ..datalog.parser import parse_rule
    >>> rule = RecursiveRule(parse_rule(
    ...     "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), "
    ...     "P(u, v, w)."), strict=False)
    >>> binding_sequence(rule, frozenset({0})).describe(3)
    'dvv → (ddv)*'
    """
    graph = build_igraph(rule)
    states: list[Adornment] = [adornment]
    seen: dict[Adornment, int] = {adornment: 0}
    while True:
        nxt = body_adornment(rule, states[-1], graph)
        if nxt in seen:
            start = seen[nxt]
            return BindingSequence(states=tuple(states),
                                   prefix_length=start,
                                   period=len(states) - start)
        seen[nxt] = len(states)
        states.append(nxt)
