"""Transformations: unfolding to stable systems and bounded flattening.

Two rewrites from the paper:

* **Theorem 2/4** — a formula whose I-graph is a disjoint combination
  of independent one-directional cycles with weights ``c1..ck`` becomes
  stable after ``L = lcm(c1..ck)`` expansions; unfolding L times yields
  an equivalent stable formula with L exits per original exit.
  :func:`to_stable` performs the rewrite and raises for formulas
  Corollary 3 proves non-transformable.

* **Bounded flattening** — a bounded formula of rank bound r is
  equivalent to the finite set of non-recursive formulas obtained by
  replacing the recursive atom with an exit in the expansions of depth
  ``1 .. r+1`` (the paper's (s8a'), (s8b')).  :func:`to_nonrecursive`
  produces that set.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.errors import RuleValidationError
from ..datalog.program import RecursionSystem
from ..datalog.rules import Rule
from .classes import Boundedness
from .classifier import Classification, classify


@dataclass(frozen=True)
class StableTransformation:
    """The result of Theorem 2/4's unfolding rewrite.

    Attributes
    ----------
    original:
        The input system.
    unfold_times:
        ``L``, the LCM of the independent cycle weights.
    system:
        The rewritten system: recursive rule = L-th expansion, exits =
        exit expansions of depth 1..L for every original exit.
    classification:
        Classification of the rewritten recursive rule — strongly
        stable by construction (machine-checked in the test suite).
    """

    original: RecursionSystem
    unfold_times: int
    system: RecursionSystem
    classification: Classification

    @property
    def is_identity(self) -> bool:
        """True when the original formula was already stable (L = 1)."""
        return self.unfold_times == 1


def to_stable(system: RecursionSystem,
              classification: Classification | None = None
              ) -> StableTransformation:
    """Transform *system* into an equivalent stable system (Thm 2/4).

    Raises
    ------
    RuleValidationError
        When the formula is not transformable — by Corollary 3 exactly
        when some component is not an independent one-directional
        cycle.

    >>> from ..datalog.parser import parse_system
    >>> s = parse_system(
    ...     "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), "
    ...     "P(y1, y2, y3).")
    >>> transformed = to_stable(s)
    >>> transformed.unfold_times
    3
    >>> transformed.classification.is_strongly_stable
    True
    >>> len(transformed.system.exits)
    3
    """
    if classification is None:
        classification = classify(system)
    if not classification.is_transformable:
        raise RuleValidationError(
            f"formula of class {classification.formula_class} is not "
            f"transformable to a unit-cycle formula (Corollary 3): "
            f"{system.recursive}")
    times = classification.unfold_times
    assert times is not None
    unfolded = system.unfolded(times)
    return StableTransformation(
        original=system,
        unfold_times=times,
        system=unfolded,
        classification=classify(unfolded.recursive))


def to_nonrecursive(system: RecursionSystem,
                    classification: Classification | None = None
                    ) -> tuple[Rule, ...]:
    """Flatten a bounded formula into equivalent non-recursive rules.

    For a bounded formula of rank bound r, the expansions beyond depth
    r produce nothing new regardless of the database, so the recursion
    is equivalent to the exit expansions of depth ``1 .. r+1`` — the
    paper calls such formulas "pseudo recursion".

    >>> from ..datalog.parser import parse_system
    >>> s = parse_system(
    ...     "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), "
    ...     "P(z, y1, z1, u1).")
    >>> flattened = to_nonrecursive(s)
    >>> len(flattened)   # bound 2 -> depths 1, 2, 3
    3
    """
    if classification is None:
        classification = classify(system)
    if classification.boundedness is not Boundedness.BOUNDED:
        raise RuleValidationError(
            f"formula is not bounded "
            f"({classification.boundedness}): {system.recursive}")
    bound = classification.rank_bound
    assert bound is not None
    rules: list[Rule] = []
    for exit_index in range(len(system.exits)):
        for depth in range(1, bound + 2):
            rules.append(system.exit_expansion(depth, exit_index))
    return tuple(rules)
