"""Query-form advice: what each adornment buys you.

The paper stresses that for stable formulas "query evaluation plans
for all possible queries are easily found", while other classes help
only some query forms (s12 stabilises for ``P(d,v,v)`` but is stable
from the start for ``P(v,v,d)``).  This module makes that concrete:
for every adornment of a formula it reports the compiled strategy,
the binding sequence, which bound positions actually persist through
the recursion, and a one-word pushdown verdict:

* ``full``    — every bound position stays determined at every depth
  (stable behaviour for this query form);
* ``partial`` — some bound positions persist (selections push part
  way);
* ``none``    — the bindings die out; the fixpoint cannot be
  restricted (only the final selection applies);
* ``finite``  — the formula is bounded: no fixpoint at all, any
  adornment evaluates in constant depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.program import RecursionSystem
from .bindings import (Adornment, BindingSequence, adornment_to_string,
                       all_adornments)
from .classes import Boundedness
from .classifier import Classification, classify
from .compile import Strategy, compile_query
from .report import text_table


@dataclass(frozen=True)
class QueryCapability:
    """What the compiler can do for one query form."""

    adornment: Adornment
    strategy: Strategy
    binding: BindingSequence
    persistent: Adornment
    pushdown: str

    def row(self, arity: int) -> list[str]:
        """A table row for :func:`capability_table`."""
        return [adornment_to_string(self.adornment, arity),
                str(self.strategy),
                self.binding.describe(arity),
                adornment_to_string(self.persistent, arity)
                if self.persistent else "-",
                self.pushdown]


def _verdict(classification: Classification, adornment: Adornment,
             sequence: BindingSequence) -> str:
    if classification.boundedness is Boundedness.BOUNDED:
        return "finite"
    if not adornment:
        return "none"
    persistent = sequence.persistent_positions
    if persistent >= adornment and sequence.stabilises:
        return "full"
    if persistent:
        return "partial"
    return "none"


def advise(system: RecursionSystem,
           classification: Classification | None = None
           ) -> tuple[QueryCapability, ...]:
    """Capabilities for every adornment of *system*, 2**arity rows.

    >>> from ..datalog.parser import parse_system
    >>> caps = advise(parse_system("P(x, y) :- A(x, z), P(z, y)."))
    >>> sorted({c.pushdown for c in caps})
    ['full', 'none']
    """
    if classification is None:
        classification = classify(system)
    out: list[QueryCapability] = []
    for adornment in sorted(all_adornments(system.dimension),
                            key=lambda a: (len(a), sorted(a))):
        compiled = compile_query(system, adornment, classification)
        sequence = compiled.binding
        out.append(QueryCapability(
            adornment=adornment,
            strategy=compiled.strategy,
            binding=sequence,
            persistent=sequence.persistent_positions & adornment
            if adornment else frozenset(),
            pushdown=_verdict(classification, adornment, sequence)))
    return tuple(out)


def capability_table(system: RecursionSystem,
                     classification: Classification | None = None) -> str:
    """The capability matrix as a plain-text table."""
    arity = system.dimension
    capabilities = advise(system, classification)
    return text_table(
        ["query form", "strategy", "binding sequence",
         "persistent", "pushdown"],
        [cap.row(arity) for cap in capabilities])
