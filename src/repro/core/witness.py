"""Witness databases: constructive instances for derivation depths.

The boundedness results are about *worst cases over all databases*:
Ioannidis's bound and Theorem 10's LCM−1 are claimed tight.  A seed
sweep can miss the witnesses; this module builds them directly.

:func:`witness_database` freezes the body of the depth-d exit
expansion into ground facts (each variable becomes a fresh constant —
the canonical instance of the conjunctive query).  On that database
the recursion derives the frozen head tuple at depth ``d-1``, so when
the classifier's rank bound is tight there exists a witness whose
measured rank equals the bound.
"""

from __future__ import annotations

from ..datalog.atoms import Atom
from ..datalog.program import RecursionSystem
from ..datalog.terms import Constant, Variable
from ..ra.database import Database


def freeze_body(body: tuple[Atom, ...], prefix: str = "w"
                ) -> tuple[Database, dict[Variable, str]]:
    """The canonical instance of a conjunction: variables → constants.

    Returns the database of frozen facts and the freezing assignment.
    """
    assignment: dict[Variable, str] = {}
    db = Database()

    def value_of(term) -> object:
        if isinstance(term, Constant):
            return term.value
        if term not in assignment:
            assignment[term] = f"{prefix}{len(assignment)}"
        return assignment[term]

    for body_atom in body:
        db.add(body_atom.predicate,
               tuple(value_of(t) for t in body_atom.args))
    return db, assignment


def witness_database(system: RecursionSystem, depth: int,
                     exit_index: int = 0) -> Database:
    """A database on which the recursion reaches depth ``depth - 1``.

    Freezes the depth-``depth`` exit expansion; the frozen body
    supports the derivation of the frozen head at recursion depth
    ``depth - 1`` (depth 1 = the exit rule alone = recursion depth 0).

    >>> from ..datalog.parser import parse_system
    >>> s = parse_system(
    ...     "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), "
    ...     "P(z, y1, z1, u1).")
    >>> db = witness_database(s, 3)   # the Ioannidis bound of (s8) is 2
    >>> sorted(db.relation_names)
    ['A', 'B', 'C', 'P__exit']
    """
    flattened = system.exit_expansion(depth, exit_index)
    db, _ = freeze_body(tuple(flattened.body))
    return db


def witness_rank(system: RecursionSystem, depth: int,
                 exit_index: int = 0) -> int:
    """The measured rank of the depth-``depth`` witness database.

    For formulas whose bound is tight, ``witness_rank(system,
    bound + 1) == bound``.
    """
    from ..engine.seminaive import SemiNaiveEngine
    db = witness_database(system, depth, exit_index)
    return SemiNaiveEngine().measured_rank(system, db)
