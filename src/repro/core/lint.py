"""Rule diagnostics: explain what is wrong (or improvable) and why.

Validation errors tell you a rule is outside the paper's setting;
:func:`lint_text` goes further, reporting *all* problems at once plus
advisory findings: redundant subgoals (CQ minimisation would drop
them), hopeless query forms (class C), available transformations, and
boundedness ("this is pseudo recursion — flatten it").

Diagnostics carry stable codes so tooling can filter them:

=====  ======================================================
code   meaning
=====  ======================================================
E001   no recursive rule found
E002   more than one recursive rule (mutual/multiple recursion)
E003   recursive predicate occurs more than once in a body
E004   constants inside a recursive rule
E005   repeated variable under the recursive predicate
E006   rule is not range restricted
W001   recursive rule without an explicit exit rule
W101   redundant body atoms (minimisation would drop them)
I201   formula is bounded — flatten instead of iterating
I202   formula is transformable — unfolding available
I203   class C/E/F — bindings die for every query form
=====  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.errors import ReproError
from ..datalog.parser import parse_program
from ..datalog.program import RecursionSystem
from ..datalog.rules import RecursiveRule
from ..datalog.terms import Constant
from .advisor import advise
from .classes import Boundedness
from .classifier import classify
from .minimize import minimize_rule


@dataclass(frozen=True)
class Diagnostic:
    """One finding: ``level`` is 'error', 'warning' or 'info'."""

    level: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.code} [{self.level}] {self.message}"


def _structural_errors(program) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    recursive_rules = program.recursive_rules()
    if not recursive_rules:
        out.append(Diagnostic(
            "error", "E001", "no recursive rule found"))
        return out
    if len(recursive_rules) > 1:
        out.append(Diagnostic(
            "error", "E002",
            f"{len(recursive_rules)} recursive rules; the paper's "
            f"setting is single recursion"))
        return out
    rule = recursive_rules[0]
    if not rule.is_linear_recursive():
        out.append(Diagnostic(
            "error", "E003",
            f"the recursive predicate {rule.head.predicate!r} occurs "
            f"more than once in the body (non-linear recursion)"))
    for term in rule.head.args + tuple(
            t for a in rule.body for t in a.args):
        if isinstance(term, Constant):
            out.append(Diagnostic(
                "error", "E004",
                f"constant {term} inside a recursive rule"))
            break
    recursive_atoms = rule.body_atoms_of(rule.head.predicate)
    if rule.head.has_repeated_variables() or (
            recursive_atoms and
            recursive_atoms[0].has_repeated_variables()):
        out.append(Diagnostic(
            "error", "E005",
            "a variable appears more than once under the recursive "
            "predicate"))
    if not rule.is_range_restricted():
        missing = sorted(
            v.name for v in rule.head.variables
            if all(v not in a.variables for a in rule.body))
        out.append(Diagnostic(
            "error", "E006",
            f"not range restricted: head variable(s) "
            f"{', '.join(missing)} never occur in the body"))
    exits = [r for r in program.rules_for(rule.head.predicate)
             if not r.is_recursive()]
    if not exits:
        out.append(Diagnostic(
            "warning", "W001",
            f"recursive predicate {rule.head.predicate!r} has no "
            f"explicit exit rule (the generic exit "
            f"{rule.head.predicate}__exit will be synthesised)"))
    return out


def _advisories(system: RecursionSystem) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    rule = system.recursive.rule
    minimised = minimize_rule(rule)
    if len(minimised.body) < len(rule.body):
        dropped = len(rule.body) - len(minimised.body)
        out.append(Diagnostic(
            "warning", "W101",
            f"{dropped} redundant body atom(s); minimised form: "
            f"{minimised}"))
    classification = classify(system)
    if classification.boundedness is Boundedness.BOUNDED:
        out.append(Diagnostic(
            "info", "I201",
            f"bounded (rank ≤ {classification.rank_bound}): pseudo "
            f"recursion — equivalent to "
            f"{classification.rank_bound + 1} non-recursive rules"))
    elif classification.is_transformable \
            and not classification.is_strongly_stable:
        out.append(Diagnostic(
            "info", "I202",
            f"class {classification.formula_class}: unfolding "
            f"{classification.unfold_times}× yields an equivalent "
            f"stable formula (Theorem 2/4)"))
    elif not classification.is_strongly_stable:
        capabilities = advise(system, classification)
        if all(cap.pushdown == "none" for cap in capabilities):
            out.append(Diagnostic(
                "info", "I203",
                f"class {classification.formula_class}: query "
                f"bindings die for every query form — selections "
                f"cannot be pushed into the recursion"))
    return out


def lint_text(text: str) -> tuple[Diagnostic, ...]:
    """All diagnostics for a program fragment.

    >>> findings = lint_text("P(x, y) :- A(x, z), A(x, w), P(z, y).")
    >>> [d.code for d in findings]
    ['W001', 'W101']
    """
    program = parse_program(text)
    findings = _structural_errors(program)
    if any(d.level == "error" for d in findings):
        return tuple(findings)
    rule = program.recursive_rules()[0]
    exits = tuple(r for r in program.rules_for(rule.head.predicate)
                  if not r.is_recursive())
    try:
        system = RecursionSystem(RecursiveRule(rule, strict=False),
                                 exits)
    except ReproError as error:  # pragma: no cover - guarded above
        return tuple(findings) + (
            Diagnostic("error", "E000", str(error)),)
    findings.extend(_advisories(system))
    return tuple(findings)


def lint_report(text: str) -> str:
    """Human-readable rendering of :func:`lint_text`'s findings."""
    findings = lint_text(text)
    if not findings:
        return "clean: no findings"
    return "\n".join(str(d) for d in findings)
