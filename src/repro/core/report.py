"""Human-readable reports: the classification table and per-formula dossiers.

These renderers back the figure/table benches and the examples; they
keep all presentation concerns out of the analysis modules.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..datalog.program import RecursionSystem
from ..datalog.pretty import format_rule
from ..graphs.render import ascii_figure, ascii_reduced
from .bindings import adornment_from_string
from .classifier import classify
from .compile import compile_query
from .stability import stability_report


def text_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a plain-text table with column alignment."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def classification_table(systems: Mapping[str, RecursionSystem]) -> str:
    """The section-3 taxonomy applied to a catalogue of formulas.

    One row per formula: name, component classes, formula class,
    stability, transformability (with unfold count), boundedness
    (with rank bound).
    """
    headers = ["formula", "components", "class", "stable", "transformable",
               "unfold", "bounded", "rank bound"]
    rows: list[list[object]] = []
    for name, system in systems.items():
        result = classify(system)
        row = result.summary_row()
        rows.append([name, row["components"], row["class"],
                     "yes" if row["stable"] else "no",
                     "yes" if row["transformable"] else "no",
                     row["unfold"] if row["unfold"] is not None else "-",
                     row["bounded"],
                     row["rank_bound"]
                     if row["rank_bound"] is not None else "-"])
    return text_table(headers, rows)


def formula_dossier(name: str, system: RecursionSystem,
                    query_forms: Iterable[str] = ()) -> str:
    """Everything the paper derives for one formula, as text.

    Sections: the rule, the I-graph listing, the classification, the
    Theorem 1 stability report, and a compiled plan per query form.
    """
    classification = classify(system)
    stability = stability_report(system.recursive)
    lines = [
        f"=== {name} ===",
        format_rule(system.recursive.rule),
        "",
        ascii_figure(classification.graph, "I-graph:"),
        "",
        ascii_reduced(classification.reduced, "reduced graph:"),
        "",
        f"classification: {classification.describe()}",
        f"strongly stable: syntactic={stability.syntactic} "
        f"semantic={stability.semantic}"
        + (f" (counterexample {stability.counterexample})"
           if stability.counterexample else ""),
        f"boundedness: {classification.boundedness}"
        + (f" (rank ≤ {classification.rank_bound})"
           if classification.rank_bound is not None else ""),
    ]
    for query_form in query_forms:
        compiled = compile_query(system, adornment_from_string(query_form),
                                 classification)
        lines.append("")
        lines.append(f"query {system.predicate}({query_form}) "
                     f"[{compiled.strategy}]:")
        lines.append(f"  {compiled.plan_text}")
        for note in compiled.notes:
            lines.append(f"  note: {note}")
    return "\n".join(lines)
