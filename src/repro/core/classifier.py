"""The classifier: sections 3–10 of the paper, as one analysis pass.

:func:`classify` takes a recursion system (or a bare recursive rule)
and produces a :class:`Classification`: the class of every non-trivial
I-graph component, the formula class of their disjoint combination,
strong stability (Theorem 1), transformability to a unit-cycle formula
(Corollaries 1/3) with the unfold count of Theorems 2/4, and the
boundedness verdict with its rank bound (Ioannidis's theorem,
Theorems 6, 10, 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..datalog.program import RecursionSystem
from ..datalog.rules import RecursiveRule, Rule
from ..datalog.terms import Variable
from ..graphs.components import components, component_subgraph
from ..graphs.compress import ReducedGraph, reduce_graph
from ..graphs.cycles import (Cycle, independent_cycle_of_component,
                             permutational_cycles)
from ..graphs.igraph import IGraph, build_igraph
from ..graphs.potential import assign_potentials
from .classes import (Boundedness, ComponentClass, FormulaClass,
                      combine_component_classes)


@dataclass(frozen=True)
class ComponentAnalysis:
    """Everything the classifier derives for one non-trivial component.

    Attributes
    ----------
    subgraph:
        The full component sub-graph (decorations included).
    anchors:
        The component's vertices incident to directed edges.
    kind:
        The paper class of the component.
    cycle:
        The independent cycle, for classes A1–A4, B, C; None for D, E.
    cycle_weight:
        Absolute weight of the independent cycle, when there is one.
    permutational_weights:
        Weights of the pure-directed cycles inside the component (for
        A2/A4 this is the cycle itself; dependent components may also
        contain permutational patterns, which block Ioannidis's
        theorem).
    potential_spread:
        ``max φ − min φ`` when every cycle of the component weighs 0
        (the component's Ioannidis path-weight bound), else None.
    boundedness:
        BOUNDED / UNBOUNDED / UNKNOWN for this component alone.
    rank_bound:
        The component's contribution to the formula rank bound:
        the potential spread for weight-0 components, ``weight − 1``
        for permutational cycles, None when not bounded.
    """

    subgraph: IGraph
    anchors: frozenset[Variable]
    kind: ComponentClass
    cycle: Cycle | None
    cycle_weight: int | None
    permutational_weights: tuple[int, ...]
    potential_spread: int | None
    boundedness: Boundedness
    rank_bound: int | None

    def describe(self) -> str:
        """One-line human-readable summary."""
        names = ", ".join(sorted(v.name for v in self.anchors))
        extra = ""
        if self.cycle_weight is not None:
            extra = f", weight {self.cycle_weight}"
        return f"{self.kind}({names}{extra})"


@dataclass(frozen=True)
class Classification:
    """The complete classification of one linear recursive formula."""

    rule: RecursiveRule
    graph: IGraph
    reduced: ReducedGraph
    components: tuple[ComponentAnalysis, ...]
    trivial_component_count: int
    formula_class: FormulaClass
    is_strongly_stable: bool
    is_transformable: bool
    unfold_times: int | None
    boundedness: Boundedness
    rank_bound: int | None
    has_permutational_pattern: bool

    @property
    def component_kinds(self) -> tuple[ComponentClass, ...]:
        """The per-component classes, in deterministic order."""
        return tuple(c.kind for c in self.components)

    def describe(self) -> str:
        """Summary such as ``'E ⊕ A1 → F'`` for the paper's (s12)."""
        parts = " ⊕ ".join(c.describe() for c in self.components)
        return f"{parts} → {self.formula_class}"

    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable view (for the CLI's --json output)."""
        return {
            "rule": str(self.rule),
            "formula_class": str(self.formula_class),
            "components": [
                {"class": str(c.kind),
                 "anchors": sorted(v.name for v in c.anchors),
                 "cycle_weight": c.cycle_weight,
                 "boundedness": str(c.boundedness),
                 "rank_bound": c.rank_bound}
                for c in self.components],
            "strongly_stable": self.is_strongly_stable,
            "transformable": self.is_transformable,
            "unfold_times": self.unfold_times,
            "boundedness": str(self.boundedness),
            "rank_bound": self.rank_bound,
            "has_permutational_pattern": self.has_permutational_pattern,
        }

    def summary_row(self) -> dict[str, object]:
        """A flat dict for table rendering in the benches."""
        return {
            "class": str(self.formula_class),
            "components": "+".join(str(k) for k in self.component_kinds),
            "stable": self.is_strongly_stable,
            "transformable": self.is_transformable,
            "unfold": self.unfold_times,
            "bounded": str(self.boundedness),
            "rank_bound": self.rank_bound,
        }


def _has_nontrivial_cycle(subgraph: IGraph) -> bool:
    """True iff some cycle of *subgraph* uses a directed edge.

    A directed self-loop is a cycle; any other directed edge lies on a
    cycle iff it is not a bridge of the underlying multigraph.
    """
    for edge in subgraph.directed:
        if edge.is_self_loop:
            return True
        if not _is_bridge(subgraph, edge):
            return True
    return False


def _is_bridge(subgraph: IGraph, target) -> bool:
    """Whether removing *target* disconnects its endpoints."""
    adjacency: dict[Variable, list[Variable]] = {
        v: [] for v in subgraph.vertices}
    for edge in subgraph.directed:
        if edge is target:
            continue
        adjacency[edge.tail].append(edge.head)
        adjacency[edge.head].append(edge.tail)
    for edge in subgraph.undirected:
        adjacency[edge.left].append(edge.right)
        adjacency[edge.right].append(edge.left)
    stack = [target.tail]
    seen = {target.tail}
    while stack:
        vertex = stack.pop()
        if vertex == target.head:
            return False
        for neighbour in adjacency[vertex]:
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return True


def _analyse_component(graph: IGraph, reduced: ReducedGraph,
                       anchor_set: frozenset[Variable],
                       full_component: frozenset[Variable]
                       ) -> ComponentAnalysis:
    subgraph = component_subgraph(graph, full_component)
    cycle = independent_cycle_of_component(reduced, anchor_set)
    perm_weights = tuple(sorted(
        c.weight for c in permutational_cycles(subgraph)))
    potentials = assign_potentials(subgraph)
    spread = (max(potentials.component_spreads.values())
              if potentials.consistent and potentials.component_spreads
              else (0 if potentials.consistent else None))

    if cycle is not None:
        cycle = cycle.canonical()
        weight = cycle.weight
        if cycle.is_one_directional:
            if cycle.is_permutational:
                kind = (ComponentClass.A2 if cycle.is_unit
                        else ComponentClass.A4)
            else:
                kind = (ComponentClass.A1 if cycle.is_unit
                        else ComponentClass.A3)
        else:
            kind = ComponentClass.B if weight == 0 else ComponentClass.C
    else:
        weight = None
        if _has_nontrivial_cycle(subgraph):
            kind = ComponentClass.E
        else:
            kind = ComponentClass.D

    boundedness, rank_bound = _component_boundedness(
        kind, weight, perm_weights, potentials.consistent, spread)
    return ComponentAnalysis(subgraph=subgraph,
                             anchors=anchor_set,
                             kind=kind,
                             cycle=cycle,
                             cycle_weight=weight,
                             permutational_weights=perm_weights,
                             potential_spread=spread,
                             boundedness=boundedness,
                             rank_bound=rank_bound)


def _component_boundedness(kind: ComponentClass, weight: int | None,
                           perm_weights: tuple[int, ...],
                           consistent: bool, spread: int | None
                           ) -> tuple[Boundedness, int | None]:
    """Boundedness verdict and rank contribution of one component."""
    if kind in (ComponentClass.A1, ComponentClass.A3):
        # Rotational one-directional cycles generate fresh variables on
        # every expansion: proper recursion, rank grows with the data.
        return Boundedness.UNBOUNDED, None
    if kind in (ComponentClass.A2, ComponentClass.A4):
        # Permutational: the formula returns to itself after `weight`
        # expansions (Theorems 3 and 10).
        assert weight is not None
        return Boundedness.BOUNDED, weight - 1
    if kind is ComponentClass.B:
        return Boundedness.BOUNDED, spread
    if kind is ComponentClass.C:
        return Boundedness.UNBOUNDED, None
    if kind is ComponentClass.D:
        # No non-trivial cycle at all: Corollary 2 via Ioannidis.
        return Boundedness.BOUNDED, spread
    # Dependent components: Ioannidis's theorem applies when there is
    # no permutational pattern.
    if not perm_weights:
        if consistent:
            return Boundedness.BOUNDED, spread
        return Boundedness.UNBOUNDED, None
    return Boundedness.UNKNOWN, None


def classify(target: RecursionSystem | RecursiveRule | Rule,
             strict: bool = False) -> Classification:
    """Classify a linear recursive formula.

    Accepts a full :class:`RecursionSystem`, a validated
    :class:`RecursiveRule`, or a bare :class:`Rule`.

    >>> from ..datalog.parser import parse_rule
    >>> c = classify(parse_rule(
    ...     "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), "
    ...     "P(u, v, w)."))
    >>> str(c.formula_class), [str(k) for k in c.component_kinds]
    ('F', ['E', 'A1'])
    """
    if isinstance(target, RecursionSystem):
        rule = target.recursive
    elif isinstance(target, Rule):
        rule = RecursiveRule(target, strict=strict)
    else:
        rule = target

    graph = build_igraph(rule)
    reduced = reduce_graph(graph)

    full_components = components(graph)
    trivial_count = sum(
        1 for comp in full_components
        if not component_subgraph(graph, comp).is_nontrivial)

    analyses: list[ComponentAnalysis] = []
    for anchor_set in reduced.component_partition():
        probe = next(iter(anchor_set))
        full_component = next(
            comp for comp in full_components if probe in comp)
        analyses.append(_analyse_component(
            graph, reduced, anchor_set, full_component))

    kinds = tuple(a.kind for a in analyses)
    formula_class = combine_component_classes(kinds)
    stable = all(k.is_unit for k in kinds)
    transformable = all(k.is_one_directional for k in kinds)
    unfold_times = None
    if transformable:
        unfold_times = math.lcm(
            *(a.cycle_weight for a in analyses))  # 1 when already stable

    verdicts = {a.boundedness for a in analyses}
    if Boundedness.UNBOUNDED in verdicts:
        boundedness = Boundedness.UNBOUNDED
    elif Boundedness.UNKNOWN in verdicts:
        boundedness = Boundedness.UNKNOWN
    else:
        boundedness = Boundedness.BOUNDED

    rank_bound = None
    if boundedness is Boundedness.BOUNDED:
        rank_bound = _formula_rank_bound(analyses)

    has_perm = any(a.permutational_weights for a in analyses)
    return Classification(rule=rule,
                          graph=graph,
                          reduced=reduced,
                          components=tuple(analyses),
                          trivial_component_count=trivial_count,
                          formula_class=formula_class,
                          is_strongly_stable=stable,
                          is_transformable=transformable,
                          unfold_times=unfold_times,
                          boundedness=boundedness,
                          rank_bound=rank_bound,
                          has_permutational_pattern=has_perm)


def _formula_rank_bound(analyses: list[ComponentAnalysis]) -> int:
    """Safe formula-level rank bound for a bounded formula.

    ``b + L − 1`` where ``b`` is the largest path-weight bound over the
    weight-0 components and ``L`` the LCM of the permutational cycle
    weights.  Pure cases collapse to the paper's tight bounds: no
    permutational components gives ``b`` (Ioannidis); no weight-0
    components gives ``L − 1`` (Theorem 10).
    """
    spreads = [a.rank_bound for a in analyses
               if not a.kind.is_permutational and a.rank_bound is not None]
    path_bound = max(spreads, default=0)
    perm_periods = [a.cycle_weight for a in analyses
                    if a.kind.is_permutational]
    period_lcm = math.lcm(*perm_periods) if perm_periods else 1
    return path_bound + period_lcm - 1
