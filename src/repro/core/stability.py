"""Strong stability: Theorem 1's two equivalent characterisations.

The paper defines a formula as *strongly stable* when, for any query,
the determined variables of the recursive predicate occur in the same
positions in the consequent and the antecedent, and proves (Theorem 1)
that this holds iff the I-graph consists of disjoint unit cycles.

We implement both sides independently:

* :func:`is_syntactically_stable` — the graph condition, via the
  classifier (every component class is A1 or A2);
* :func:`is_semantically_stable` — the query condition, by checking
  ``body_adornment(S) == S`` for *every* adornment S (2**arity of
  them; the paper's dimensions are small).

Their equivalence is the property test the benches and the hypothesis
suite machine-check.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.rules import RecursiveRule, Rule
from ..graphs.igraph import build_igraph
from .bindings import (adornment_to_string, all_adornments,
                       body_adornment)
from .classifier import Classification, classify


def _as_recursive(rule: RecursiveRule | Rule) -> RecursiveRule:
    if isinstance(rule, Rule):
        return RecursiveRule(rule, strict=False)
    return rule


def is_syntactically_stable(rule: RecursiveRule | Rule) -> bool:
    """Theorem 1, graph side: only disjoint unit cycles in the I-graph."""
    return classify(_as_recursive(rule)).is_strongly_stable


def is_semantically_stable(rule: RecursiveRule | Rule) -> bool:
    """Theorem 1, query side: every adornment reproduces itself.

    >>> from ..datalog.parser import parse_rule
    >>> is_semantically_stable(parse_rule(
    ...     "P(x, y) :- A(x, z), P(z, y)."))
    True
    >>> is_semantically_stable(parse_rule(
    ...     "P(x, y) :- A(x, z), P(y, z)."))
    False
    """
    recursive = _as_recursive(rule)
    graph = build_igraph(recursive)
    for adornment in all_adornments(recursive.dimension):
        if body_adornment(recursive, adornment, graph) != adornment:
            return False
    return True


@dataclass(frozen=True)
class StabilityReport:
    """Both characterisations side by side, with any counterexample."""

    classification: Classification
    syntactic: bool
    semantic: bool
    counterexample: str | None

    @property
    def agree(self) -> bool:
        """Theorem 1 demands these always agree."""
        return self.syntactic == self.semantic


def stability_report(rule: RecursiveRule | Rule) -> StabilityReport:
    """Evaluate both sides of Theorem 1 on *rule*.

    The counterexample, when the formula is not semantically stable, is
    the first adornment whose body adornment differs, rendered as
    ``dvv -> ddv``.
    """
    recursive = _as_recursive(rule)
    classification = classify(recursive)
    graph = build_igraph(recursive)
    counterexample = None
    semantic = True
    arity = recursive.dimension
    for adornment in all_adornments(arity):
        produced = body_adornment(recursive, adornment, graph)
        if produced != adornment:
            semantic = False
            counterexample = (
                f"{adornment_to_string(adornment, arity)} -> "
                f"{adornment_to_string(produced, arity)}")
            break
    return StabilityReport(classification=classification,
                           syntactic=classification.is_strongly_stable,
                           semantic=semantic,
                           counterexample=counterexample)
