"""Plan AST: the paper's compiled formulas and evaluation plans.

The paper writes compiled formulas in a compact algebraic notation::

    σE,  (σA) X (∪_{k=0}^{∞} [(E ⋈ B)(BA)^k])          -- s9, P(d,v,v)
    σE,  (∃ ∪_{k=0}^{∞} [(AB)^k (E ⋈ B)]) A            -- s9, P(v,v,d)
    σE,  σA-C-B-E,  ∪_{k=1}^{∞} σA-C-B-[{A,B}-C]^k-E   -- s11, P(d,v)

with ``-`` for joins ("because of the difficulty to use the symbol
⋈"), ``X`` for Cartesian product, ``∃`` for existence checking,
``{…}`` for branches evaluated independently, and ``[…]^k`` for the
per-iteration block.  This module models those constructs as a small
immutable AST whose :func:`render` reproduces the notation, so the
figure benches can compare generated plans against the paper's.

The AST is *symbolic*: it names relations and operations.  The
executable counterparts live in :mod:`repro.engine`, which implements
the corresponding strategies directly against the EDB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

PlanNode = Union["Rel", "Select", "JoinChain", "Branches", "Power",
                 "Product", "Exists", "UnionOverK", "Steps"]


@dataclass(frozen=True)
class Rel:
    """A relation reference: an EDB predicate or the exit ``E``."""

    name: str

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class Select:
    """A selection ``σR`` — constants pushed into relation *rel*.

    ``binding`` optionally names the constant(s), e.g. ``σ_a A``.
    """

    rel: PlanNode
    binding: str | None = None

    def render(self) -> str:
        inner = _render(self.rel)
        if self.binding:
            return f"σ{self.binding}·{inner}"
        return f"σ{inner}"


@dataclass(frozen=True)
class JoinChain:
    """A left-deep join sequence rendered with the paper's dashes."""

    items: tuple[PlanNode, ...]

    def render(self) -> str:
        return "-".join(_render(item) for item in self.items)


@dataclass(frozen=True)
class Branches:
    """Independently evaluated branches, the paper's ``{A, B}``."""

    branches: tuple[PlanNode, ...]

    def render(self) -> str:
        inner = ", ".join(_render(b) for b in self.branches)
        return "{" + inner + "}"


@dataclass(frozen=True)
class Power:
    """A block iterated per expansion: ``[…]^k`` (or ``R^k``)."""

    base: PlanNode
    exponent: str = "k"

    def render(self) -> str:
        inner = _render(self.base)
        if isinstance(self.base, (JoinChain, Branches, Product)):
            inner = f"[{inner}]"
        elif len(inner) > 1 and not inner.isalnum():
            inner = f"({inner})"
        return f"{inner}^{self.exponent}"


@dataclass(frozen=True)
class Product:
    """A Cartesian product of independent parts, the paper's ``X``."""

    parts: tuple[PlanNode, ...]

    def render(self) -> str:
        return " X ".join(f"({_render(p)})" for p in self.parts)


@dataclass(frozen=True)
class Exists:
    """Existence check ``∃(…)``: non-emptiness gates the rest."""

    inner: PlanNode

    def render(self) -> str:
        return f"∃({_render(self.inner)})"


@dataclass(frozen=True)
class UnionOverK:
    """The infinite union ``∪_{k=start}^{∞} body``.

    At evaluation time the union is cut off at the data's fixpoint;
    symbolically it is the compiled formula's iteration.
    """

    body: PlanNode
    start: int = 0

    def render(self) -> str:
        inner = _render(self.body)
        if not isinstance(self.body, (Rel, Select, Power)):
            inner = f"[{inner}]"
        return f"∪k≥{self.start} {inner}"


@dataclass(frozen=True)
class Steps:
    """Top-level comma-separated steps, e.g. ``σE, (σA) X (…)``."""

    steps: tuple[PlanNode, ...]

    def render(self) -> str:
        return ",  ".join(_render(s) for s in self.steps)


def _render(node: PlanNode) -> str:
    return node.render()


def render(node: PlanNode) -> str:
    """Render a plan tree in the paper's notation.

    >>> plan = Steps((Select(Rel("E")), Product((Select(Rel("A")),
    ...     UnionOverK(JoinChain((JoinChain((Rel("E"), Rel("B"))),
    ...     Power(JoinChain((Rel("B"), Rel("A")))))))))))
    >>> render(plan)
    'σE,  (σA) X (∪k≥0 [E-B-[B-A]^k])'
    """
    return node.render()


def relation_names(node: PlanNode) -> tuple[str, ...]:
    """All relation names mentioned by the plan, left to right."""
    if isinstance(node, Rel):
        return (node.name,)
    if isinstance(node, Select):
        return relation_names(node.rel)
    if isinstance(node, (JoinChain, Branches)):
        children = node.items if isinstance(node, JoinChain) else node.branches
        out: list[str] = []
        for child in children:
            out.extend(relation_names(child))
        return tuple(out)
    if isinstance(node, Power):
        return relation_names(node.base)
    if isinstance(node, Product):
        out = []
        for part in node.parts:
            out.extend(relation_names(part))
        return tuple(out)
    if isinstance(node, Exists):
        return relation_names(node.inner)
    if isinstance(node, UnionOverK):
        return relation_names(node.body)
    if isinstance(node, Steps):
        out = []
        for step in node.steps:
            out.extend(relation_names(step))
        return tuple(out)
    raise TypeError(f"not a plan node: {node!r}")
